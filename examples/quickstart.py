"""Quickstart: build a tiny warehouse, run OLAP range queries.

Run with:  python examples/quickstart.py
"""

from repro import CubeSchema, Dimension, Measure, Warehouse

# 1. Define a data cube: dimensions with concept hierarchies + measures.
#    Level names are ordered from the leaf attribute upwards; ALL sits
#    implicitly on top of each hierarchy.
schema = CubeSchema(
    dimensions=[
        Dimension("Store", ("City", "Country", "Region")),
        Dimension("Product", ("Item", "Category")),
    ],
    measures=[Measure("Revenue")],
)

# 2. Open a warehouse over the schema.  The default backend is the
#    DC-tree - the paper's fully dynamic index with materialized measures.
warehouse = Warehouse(schema)

# 3. Insert cells.  Dimension values are label paths ordered from the
#    highest functional attribute down to the leaf; new labels extend the
#    concept hierarchies on the fly - no rebuild, no bulk-update window.
SALES = [
    (("EMEA", "Germany", "Munich"), ("Electronics", "TV"), 1200.0),
    (("EMEA", "Germany", "Berlin"), ("Electronics", "Radio"), 300.0),
    (("EMEA", "France", "Paris"), ("Furniture", "Chair"), 150.0),
    (("AMER", "USA", "NYC"), ("Electronics", "TV"), 2400.0),
    (("AMER", "USA", "Boston"), ("Furniture", "Desk"), 800.0),
    (("AMER", "Canada", "Toronto"), ("Electronics", "Radio"), 250.0),
]
for store, product, revenue in SALES:
    warehouse.insert((store, product), (revenue,))

print("inserted %d cells\n" % len(warehouse))

# 4. Ask label-based range queries at any level of any hierarchy.
examples = [
    ("total revenue", {}),
    ("revenue in EMEA", {"Store": ("Region", ["EMEA"])}),
    ("revenue in Germany", {"Store": ("Country", ["Germany"])}),
    ("electronics revenue", {"Product": ("Category", ["Electronics"])}),
    (
        "electronics revenue in the USA",
        {
            "Store": ("Country", ["USA"]),
            "Product": ("Category", ["Electronics"]),
        },
    ),
]
for label, where in examples:
    print("%-35s %10.2f" % (label, warehouse.query("sum", where=where)))

# 5. Other aggregates work on the same materialized summaries.
where = {"Product": ("Category", ["Electronics"])}
print(
    "\nelectronics: count=%d avg=%.2f min=%.2f max=%.2f"
    % (
        warehouse.count(where=where),
        warehouse.query("avg", where=where),
        warehouse.query("min", where=where),
        warehouse.query("max", where=where),
    )
)

# 6. Fully dynamic: inserts are visible immediately ...
late_sale = warehouse.insert(
    (("EMEA", "Germany", "Munich"), ("Electronics", "TV")), (999.0,)
)
print(
    "\nafter a late-arriving sale, Germany = %.2f"
    % warehouse.query("sum", where={"Store": ("Country", ["Germany"])})
)

# ... and so are deletions.
warehouse.delete(late_sale)
print(
    "after deleting it again,    Germany = %.2f"
    % warehouse.query("sum", where={"Store": ("Country", ["Germany"])})
)
