"""Index comparison: DC-tree vs X-tree vs sequential scan, side by side.

A miniature of the paper's §5 evaluation: one TPC-D record stream feeds
all three backends, then identical random range-query batches run against
each and the per-query I/O (buffer misses behind equal-sized LRU pools)
and simulated times are tabulated.

Run with:  python examples/index_comparison.py [n_records]
"""

import sys
import time

from repro import (
    CostModel,
    DCTree,
    FlatTable,
    TPCDGenerator,
    XTree,
    make_tpcd_schema,
)
from repro.bench.harness import execute_query
from repro.storage.buffer import BufferPool
from repro.workload.queries import QueryGenerator


def main(n_records=4000, n_queries=25):
    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=1, scale_records=n_records)
    backends = {
        "dc-tree": DCTree(schema),
        "x-tree": XTree(schema),
        "scan": FlatTable(schema),
    }

    print("building all three backends over %d records ..." % n_records)
    build_seconds = {}
    for name, index in backends.items():
        records = TPCDGenerator(
            schema, seed=1, scale_records=n_records
        ).records(n_records)
        start = time.perf_counter()
        for record in records:
            index.insert(record)
        build_seconds[name] = time.perf_counter() - start

    # The paper's control: every backend gets the memory the DC-tree uses.
    buffer_pages = max(16, backends["dc-tree"].page_count() // 4)
    model = CostModel()

    print("\nbuffer budget: %d pages (25%% of the DC-tree)\n" % buffer_pages)
    header = "%-10s %10s %12s %12s %12s %14s" % (
        "backend", "build [s]", "pages", "misses/q", "sim [s]/q", "wall [ms]/q"
    )
    for selectivity in (0.01, 0.05, 0.25):
        queries = list(
            QueryGenerator(schema, selectivity, seed=42).queries(n_queries)
        )
        print("selectivity %.0f%%" % (selectivity * 100))
        print(header)
        for name, index in backends.items():
            index.tracker.buffer = BufferPool(buffer_pages)
            index.tracker.reset()
            start = time.perf_counter()
            for query in queries:
                execute_query(name, index, query)
            wall = (time.perf_counter() - start) / n_queries
            stats = index.tracker.snapshot()
            print(
                "%-10s %10.2f %12d %12.1f %12.4f %14.2f"
                % (
                    name,
                    build_seconds[name],
                    index.page_count(),
                    stats.buffer_misses / n_queries,
                    stats.simulated_seconds(model) / n_queries,
                    wall * 1e3,
                )
            )
        print()

    print(
        "the DC-tree answers every batch with the fewest page misses; the\n"
        "gap narrows as selectivity grows (25%% is its worst case, §5.3)."
    )
    return 0


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    sys.exit(main(n))
