"""Warehouse lifecycle: export, bulk load, OLAP, persist, resume.

The full operational story in one script:

1. generate TPC-D line items and export them to a flat insert file
   (§5.1's setup),
2. bulk-load a DC-tree from the file (bottom-up initial build),
3. run roll-up (group-by) reports on the live cube,
4. save the warehouse — exact tree structure included — to disk,
5. load it back and keep updating it dynamically.

Run with:  python examples/warehouse_lifecycle.py [n_records]
"""

import os
import sys
import tempfile
import time

from repro import TPCDGenerator, Warehouse, make_tpcd_schema
from repro.core.bulkload import bulk_load
from repro.persist import load_warehouse, save_warehouse
from repro.tpcd.flatfile import read_flatfile, write_flatfile


def main(n_records=3000):
    workdir = tempfile.mkdtemp(prefix="dctree-lifecycle-")
    flat_path = os.path.join(workdir, "lineitems.tbl")
    warehouse_path = os.path.join(workdir, "warehouse.json")

    # 1. Export the operational data to a flat insert file.
    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=7, scale_records=n_records)
    n_written = write_flatfile(
        flat_path, schema, generator.records(n_records)
    )
    print("wrote %d line items to %s (%.1f KiB)"
          % (n_written, flat_path, os.path.getsize(flat_path) / 1024))

    # 2. Bulk-load a fresh warehouse from the file.
    start = time.perf_counter()
    loaded_schema, records = read_flatfile(flat_path)
    tree = bulk_load(loaded_schema, records)
    print("bulk-loaded %d records in %.3f s (tree height %d)"
          % (len(tree), time.perf_counter() - start, tree.height()))

    warehouse = Warehouse.wrap(tree)

    # 3. Roll-up reports straight off the index.
    print("\nrevenue by customer region:")
    for label, value in sorted(
        warehouse.group_by("Customer", "Region").items()
    ):
        print("  %-12s %16.2f" % (label, value))

    print("\norder count by year:")
    for label, value in sorted(
        warehouse.group_by("Time", "Year", op="count").items()
    ):
        print("  %-6s %8d" % (label, value))

    # 4. Persist the warehouse - structure, hierarchies, aggregates.
    save_warehouse(warehouse, warehouse_path)
    print("\nsaved warehouse to %s (%.1f KiB)"
          % (warehouse_path, os.path.getsize(warehouse_path) / 1024))

    # 5. Load it back and keep it fully dynamic.
    resumed = load_warehouse(warehouse_path)
    before = resumed.query("sum")
    late = resumed.insert(
        (("EUROPE", "GERMANY", "BUILDING", "Customer#late"),
         ("ASIA", "CHINA", "Supplier#late"),
         ("Brand#11", "STANDARD ANODIZED TIN", "Part#late"),
         ("1998", "1998-12", "1998-12-31")),
        (12345.67,),
    )
    after = resumed.query("sum")
    print("resumed warehouse: %d records; total %.2f -> %.2f after one "
          "late insert" % (len(resumed), before, after))
    resumed.delete(late)
    assert abs(resumed.query("sum") - before) < 1e-4
    print("deleted it again - totals match; the loaded tree is live.")
    return 0


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    sys.exit(main(n))
