"""View advisor: pick materialized views for a workload, route through them.

The classic OLAP stack the paper positions itself against — materialized
aggregate views ([7]) — composed *with* the DC-tree instead of against
it: a workload sample drives the greedy view advisor; the selected views
answer the queries they cover, the fully dynamic DC-tree answers
everything else and keeps the views rebuildable after updates.

Run with:  python examples/view_advisor.py [n_records]
"""

import sys
import time

from repro import TPCDGenerator, Warehouse, make_tpcd_schema
from repro.aggview import HybridWarehouse, recommend_views
from repro.core.bulkload import bulk_load
from repro.workload.queries import QueryGenerator


def main(n_records=5000):
    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=3, scale_records=n_records)
    records = generator.generate(n_records)
    warehouse = Warehouse.wrap(bulk_load(schema, records))
    print("warehouse: %d records (bulk-loaded DC-tree)" % len(warehouse))

    # 1. Sample the workload and ask the advisor for up to 3 views.
    workload = list(QueryGenerator(schema, 0.2, seed=11).queries(80))
    picks = recommend_views(
        schema, workload, cell_budget=4000, k=3, records=records
    )
    print("\nadvisor picks (cell budget 4000):")
    level_names = []
    for pick in picks:
        names = []
        for dim, level in zip(schema.dimensions, pick.levels):
            names.append(
                "%s:%s" % (dim.name, dim.hierarchy.level_name(level))
            )
        level_names.append(names)
        print(
            "  %-60s covers %4.0f%%  ~%d cells"
            % (" x ".join(names), pick.coverage * 100, pick.estimated_cells)
        )

    # 2. Build the hybrid and replay the workload through it.
    hybrid = HybridWarehouse(warehouse, [p.levels for p in picks])
    start = time.perf_counter()
    for query in workload:
        hybrid.execute(query)
    hybrid_wall = time.perf_counter() - start

    start = time.perf_counter()
    for query in workload:
        warehouse.execute(query)
    tree_wall = time.perf_counter() - start

    print(
        "\nreplay of %d queries: hybrid %.3fs (%.0f%% via views) "
        "vs tree-only %.3fs"
        % (len(workload), hybrid_wall,
           hybrid.stats.view_fraction * 100, tree_wall)
    )

    # 3. Updates invalidate the views; the first covered query after an
    #    update triggers a lazy rebuild, and answers stay exact.
    record = generator.record()
    hybrid.insert_record(record)
    stale = sum(1 for view in hybrid.views if view.is_stale)
    print("\nafter one insert: %d/%d views stale" % (stale, len(hybrid.views)))
    sample = workload[0]
    exact = warehouse.execute(sample)
    routed = hybrid.execute(sample)
    assert abs(exact - routed) < 1e-6
    print(
        "first query after the update: answer %.2f (exact), "
        "%d lazy rebuild(s) so far" % (routed, hybrid.stats.refreshes)
    )
    return 0


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    sys.exit(main(n))
