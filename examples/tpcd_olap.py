"""TPC-D OLAP session: the paper's evaluation cube used as an analyst would.

Builds the four-dimensional TPC-D cube of Fig. 8/9 (Customer, Supplier,
Part, Time; measure Extended Price), loads generated line items into a
DC-tree warehouse and runs typical drill-down queries, cross-checking
every answer against a sequential scan.

Run with:  python examples/tpcd_olap.py [n_records]
"""

import sys

from repro import TPCDGenerator, Warehouse, make_tpcd_schema


def main(n_records=3000):
    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=2024, scale_records=n_records)

    dc = Warehouse(schema, "dc-tree")
    scan = Warehouse(schema, "scan")
    print("loading %d TPC-D line items ..." % n_records)
    for record in generator.records(n_records):
        dc.insert_record(record)
        scan.insert_record(record)

    # Pick drill-down targets that actually occur in the generated data
    # (small scales need not contain every TPC-D nation or brand).
    def labels_at(dim_name, level_name, count=1):
        dim = schema.dimensions[schema.dimension_index(dim_name)]
        level = dim.level_names.index(level_name)
        values = dim.hierarchy.values_at_level(level)
        labels = sorted({dim.hierarchy.label(v) for v in values})
        return labels[:count]

    region = labels_at("Customer", "Region")[0]
    nation = labels_at("Customer", "Nation")[0]
    years = labels_at("Time", "Year", count=2)
    brands = labels_at("Part", "Brand", count=2)
    segment = labels_at("Customer", "MktSegment")[0]
    supplier_region = labels_at("Supplier", "Region")[0]

    sessions = [
        ("revenue, all time, worldwide", {}),
        ("revenue from %s customers" % region,
         {"Customer": ("Region", [region])}),
        ("... drill-down: %s" % nation,
         {"Customer": ("Nation", [nation])}),
        ("... %s only" % years[0],
         {"Customer": ("Nation", [nation]), "Time": ("Year", [years[0]])}),
        ("revenue via %s suppliers in %s" % (supplier_region,
                                             "/".join(years)),
         {"Supplier": ("Region", [supplier_region]),
          "Time": ("Year", years)}),
        ("%s revenue" % " + ".join(brands),
         {"Part": ("Brand", brands)}),
        ("%s segment revenue" % segment,
         {"Customer": ("MktSegment", [segment])}),
    ]

    print("\n%-45s %16s %8s" % ("query", "revenue", "rows"))
    print("-" * 72)
    for label, where in sessions:
        revenue = dc.query("sum", where=where)
        rows = dc.count(where=where)
        cross_check = scan.query("sum", where=where)
        assert abs(revenue - cross_check) < 1e-4, "backends disagree!"
        print("%-45s %16.2f %8d" % (label, revenue, rows))

    # Per-nation report at one level of the Customer hierarchy.
    print("\nrevenue by customer region:")
    for region in ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"):
        revenue = dc.query(
            "sum", where={"Customer": ("Region", [region])}
        )
        print("  %-12s %16.2f" % (region, revenue))

    stats = dc.tracker.snapshot()
    print(
        "\nDC-tree I/O so far: %d node accesses, %d page writes"
        % (stats.node_accesses, stats.page_writes)
    )
    print("all answers cross-checked against the sequential scan - OK")
    return 0


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    sys.exit(main(n))
