"""Streaming updates: the scenario that motivates the DC-tree.

The paper's introduction: bulk-updated warehouses are stale between
nightly loads and unavailable during them, which is unacceptable for
"very dynamic applications such as stock markets or the WWW".  This
example plays a trading day against the warehouse: ticks stream in as
single-record inserts and an analyst's standing query is re-evaluated
continuously - the answer is up to date after *every* tick, and insert
latency stays flat (Fig. 11b's claim).

Run with:  python examples/streaming_updates.py [n_ticks]
"""

import sys
import time

from repro import CubeSchema, Dimension, Measure, TPCDGenerator, Warehouse


def make_market_schema():
    """A stock-market cube: Instrument x Venue x Time, measure = volume."""
    return CubeSchema(
        dimensions=[
            Dimension("Instrument", ("Symbol", "Industry", "Sector")),
            Dimension("Venue", ("Exchange", "Country")),
            Dimension("Time", ("Minute", "Hour")),
        ],
        measures=[Measure("Volume")],
    )


INSTRUMENTS = [
    ("Tech", "Software", "SFTW%d" % i) for i in range(8)
] + [
    ("Tech", "Hardware", "HRDW%d" % i) for i in range(6)
] + [
    ("Finance", "Banks", "BANK%d" % i) for i in range(8)
] + [
    ("Energy", "Oil", "OIL%d" % i) for i in range(6)
]

VENUES = [
    ("US", "NYSE"), ("US", "NASDAQ"), ("DE", "XETRA"), ("JP", "TSE"),
]


def main(n_ticks=5000):
    import random

    rng = random.Random(7)
    warehouse = Warehouse(make_market_schema())

    standing_query = {"Instrument": ("Sector", ["Tech"])}
    latencies = []
    checkpoints = []

    print("streaming %d ticks ..." % n_ticks)
    for tick in range(n_ticks):
        sector, industry, symbol = rng.choice(INSTRUMENTS)
        country, exchange = rng.choice(VENUES)
        hour = "%02d" % rng.randint(9, 17)
        minute = "%s:%02d" % (hour, rng.randint(0, 59))
        volume = float(rng.randint(100, 10000))

        start = time.perf_counter()
        warehouse.insert(
            ((sector, industry, symbol), (country, exchange),
             (hour, minute)),
            (volume,),
        )
        latencies.append(time.perf_counter() - start)

        if (tick + 1) % (n_ticks // 5) == 0:
            # The standing query sees every tick immediately.
            tech_volume = warehouse.query("sum", where=standing_query)
            checkpoints.append((tick + 1, tech_volume))

    print("\n%10s %18s" % ("ticks", "tech volume (live)"))
    for count, volume in checkpoints:
        print("%10d %18.0f" % (count, volume))

    latencies.sort()
    n = len(latencies)
    print(
        "\ninsert latency: p50=%.3f ms  p95=%.3f ms  p99=%.3f ms  max=%.3f ms"
        % (
            latencies[n // 2] * 1e3,
            latencies[int(n * 0.95)] * 1e3,
            latencies[int(n * 0.99)] * 1e3,
            latencies[-1] * 1e3,
        )
    )
    first_half = sum(latencies[: n // 2]) / (n // 2)
    print(
        "mean latency stays flat as the index grows "
        "(the warehouse never needs a bulk-update window)"
    )

    # Slice the live cube a few ways.
    print("\nlive OLAP on the streaming cube:")
    for label, where in [
        ("volume on US venues", {"Venue": ("Country", ["US"])}),
        ("banking volume", {"Instrument": ("Industry", ["Banks"])}),
        ("tech volume on NASDAQ",
         {"Instrument": ("Sector", ["Tech"]),
          "Venue": ("Exchange", ["NASDAQ"])}),
    ]:
        print("  %-28s %14.0f" % (label, warehouse.query("sum", where=where)))
    return 0


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    sys.exit(main(n))
