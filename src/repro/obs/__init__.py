"""Unified telemetry for the DC-tree reproduction.

Three coordinated pieces, all zero-dependency and off by default:

* :mod:`repro.obs.trace` — structured spans: nested, timestamped trace
  trees of index operations (``insert``, ``choose_subtree``,
  ``hierarchy_split``, ``range_query``, ``wal.append``, ``checkpoint``,
  ``recovery.replay``, ...) with attributes, exportable as JSON lines or
  a flame-style text tree.
* :mod:`repro.obs.metrics` — a metrics registry of named
  counters/gauges/histograms unifying the package's scattered stats
  surfaces, snapshotable as JSON and Prometheus text exposition.
* :mod:`repro.obs.explain` — per-query EXPLAIN profiles attributing
  page/CPU cost, entry classifications and aggregate pruning to each
  tree level, reconciling exactly with the ``StorageTracker`` delta.

Enable with ``DCTreeConfig(observability=True)`` (or the
``REPRO_OBSERVABILITY=1`` environment variable, which CI uses to force
the whole suite through the instrumented paths).  The contract
throughout: telemetry *observes* the simulated cost model and never
feeds it — deterministic counters, query answers and ``tree_version``
are bit-identical with observability on or off.
"""

from __future__ import annotations

from .explain import ExplainResult, LevelProfile, ProfileSession, QueryProfile
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    describe_result_cache,
    observe_dctree,
    observe_result_cache,
    observe_tracker,
    observe_tree_structure,
    warehouse_registry,
)
from .trace import Span, Tracer

__all__ = [
    "Observability",
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "ExplainResult",
    "LevelProfile",
    "ProfileSession",
    "QueryProfile",
    "describe_result_cache",
    "observe_dctree",
    "observe_result_cache",
    "observe_tracker",
    "observe_tree_structure",
    "warehouse_registry",
]


class Observability:
    """One tree's telemetry bundle: a tracer wired into a registry.

    Every finished span increments ``repro_spans_total{name=...}`` and
    feeds ``repro_span_seconds{name=...}``, so the registry snapshot
    carries span counts and duration quantiles without a separate
    aggregation pass.  Created by :class:`~repro.core.tree.DCTree` when
    ``DCTreeConfig.observability`` is on; shared with the WAL and the
    durable session so persistence spans land in the same trace trees.
    """

    __slots__ = ("registry", "tracer")

    def __init__(self, max_roots=256, clock=None):
        self.registry = MetricsRegistry()
        self.tracer = Tracer(
            max_roots=max_roots, on_finish=self._span_finished, clock=clock
        )

    def _span_finished(self, span):
        self.registry.counter(
            "repro_spans_total", "Finished spans by name.", name=span.name
        ).inc()
        self.registry.histogram(
            "repro_span_seconds", "Span wall durations by name.",
            name=span.name,
        ).observe(span.duration)

    def span(self, name, **attributes):
        """Open a span (context manager); shorthand for ``tracer.span``."""
        return self.tracer.span(name, **attributes)

    def counter(self, name, help_text="", /, **labels):
        return self.registry.counter(name, help_text, **labels)

    def clear(self):
        """Drop retained traces and metrics (for test isolation)."""
        self.tracer.clear()
        self.registry.clear()

    def __repr__(self):
        return "Observability(%r, %r)" % (self.tracer, self.registry)
