"""Structured spans: nested, timestamped traces of index operations.

A :class:`Tracer` produces a tree of :class:`Span` objects per top-level
operation (``insert``, ``range_query``, ``checkpoint``, ...), each
carrying free-form attributes (node ids, depths, MDS digests, pages
touched, cache outcomes).  Spans are purely observational: they read the
clock and the attributes handed to them, never the
:class:`~repro.storage.tracker.StorageTracker`, so enabling tracing
cannot perturb the simulated cost model — the deterministic counters
stay bit-identical with tracing on or off (enforced by the observability
invariance tests and the ``--emit-metrics`` bench gate).

Finished root spans are retained in a bounded ring (``max_roots``,
drop-oldest) so long workloads cannot grow memory without bound; every
span start/finish is still counted (``span_counts``) and reported to the
``on_finish`` hook, which :class:`~repro.obs.Observability` uses to feed
the metrics registry (span totals and duration histograms).

Two export forms:

* :meth:`Tracer.export_jsonl` — one JSON object per span (flat, with
  ``id``/``parent`` references), machine-friendly;
* :meth:`Tracer.render` — an indented flame-style text tree with
  durations and attributes, human-friendly.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager


class Span:
    """One timed operation in a trace tree."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end",
                 "attributes", "children")

    def __init__(self, name, span_id, parent_id, start, attributes):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = None
        self.attributes = attributes
        self.children = []

    def set(self, **attributes):
        """Attach/overwrite attributes on the live span."""
        self.attributes.update(attributes)

    @property
    def duration(self):
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def walk(self, depth=0):
        """Yield ``(span, depth)`` over this subtree, pre-order."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self):
        """The span as one JSON-ready dict (children by reference)."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }

    def __repr__(self):
        return "Span(%r, %.6fs, %d children)" % (
            self.name, self.duration, len(self.children)
        )


class Tracer:
    """Produces nested spans; retains a bounded window of root traces.

    Parameters
    ----------
    max_roots:
        How many finished top-level span trees to retain (drop-oldest).
        Child spans live inside their root and are not counted here.
    on_finish:
        Optional callable invoked with every finished span (roots and
        children alike) — the metrics bridge.
    clock:
        The timestamp source (``time.perf_counter`` by default; tests
        inject a fake for deterministic durations).
    """

    def __init__(self, max_roots=256, on_finish=None, clock=None):
        self.max_roots = max_roots
        self.on_finish = on_finish
        self._clock = clock if clock is not None else time.perf_counter
        self._stack = []
        self.roots = deque(maxlen=max_roots)
        self.dropped_roots = 0
        self.span_counts = {}
        self._next_id = 1

    @property
    def current(self):
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name, **attributes):
        """Open a span for the body; yields the live :class:`Span`."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name,
            self._next_id,
            parent.span_id if parent is not None else None,
            self._clock(),
            attributes,
        )
        self._next_id += 1
        if parent is not None:
            parent.children.append(span)
        else:
            if len(self.roots) == self.roots.maxlen:
                self.dropped_roots += 1
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end = self._clock()
            self._stack.pop()
            self.span_counts[name] = self.span_counts.get(name, 0) + 1
            if self.on_finish is not None:
                self.on_finish(span)

    def clear(self):
        """Drop retained traces and counts (open spans are unaffected)."""
        self.roots.clear()
        self.dropped_roots = 0
        self.span_counts = {}

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def export_jsonl(self, stream=None):
        """Every retained span as JSON lines; returns the string."""
        lines = []
        for root in self.roots:
            for span, _depth in root.walk():
                lines.append(json.dumps(span.to_dict(), sort_keys=True,
                                        default=str))
        text = "\n".join(lines)
        if stream is not None and text:
            stream.write(text + "\n")
        return text

    def render(self, max_roots=None, stream=None):
        """Flame-style indented text tree of the retained traces."""
        roots = list(self.roots)
        if max_roots is not None:
            roots = roots[-max_roots:]
        lines = []
        if self.dropped_roots:
            lines.append("... %d earlier trace(s) dropped" %
                         self.dropped_roots)
        for root in roots:
            for span, depth in root.walk():
                attrs = ""
                if span.attributes:
                    attrs = " {%s}" % ", ".join(
                        "%s=%s" % (key, span.attributes[key])
                        for key in sorted(span.attributes)
                    )
                lines.append(
                    "%s%s %.3fms%s"
                    % ("  " * depth, span.name, span.duration * 1e3, attrs)
                )
        text = "\n".join(lines)
        if stream is not None and text:
            stream.write(text + "\n")
        return text

    def __repr__(self):
        return "Tracer(roots=%d, dropped=%d, spans=%d)" % (
            len(self.roots), self.dropped_roots,
            sum(self.span_counts.values()),
        )
