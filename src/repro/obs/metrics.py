"""A zero-dependency metrics registry: counters, gauges, histograms.

The registry unifies the package's previously scattered statistics
surfaces — :class:`~repro.storage.tracker.StorageTracker` counters,
result-cache hit/miss/eviction stats, WAL append/fsync batching, split
and supernode events, per-depth entry counts from
:mod:`repro.core.stats` — under stable metric names, snapshotable as
plain JSON (:meth:`MetricsRegistry.snapshot`) and as Prometheus text
exposition (:meth:`MetricsRegistry.render_prometheus`, with the escaping
rules of the format).

Like the tracer, metrics are observational only: they are fed *from*
the deterministic counters and never feed back into them, so the
simulated cost model is bit-identical with the registry attached or not.
"""

from __future__ import annotations

import json
import math


#: Default histogram bucket bounds (seconds; spans are sub-second).
DEFAULT_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)

#: Quantiles reported in snapshots (bench reports embed these).
SNAPSHOT_QUANTILES = (0.5, 0.9, 0.99)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters only go up (got %r)" % (amount,))
        self.value += amount

    def snapshot_value(self):
        return self.value


class Gauge:
    """Point-in-time value (set, not accumulated)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        self.value += amount

    def snapshot_value(self):
        return self.value


class Histogram:
    """Fixed-bucket distribution with count/sum/min/max and quantiles.

    Buckets hold cumulative-style counts at exposition time; quantiles
    are estimated by linear interpolation inside the covering bucket —
    coarse but dependency-free, and plenty for "where did span time go".
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, bounds=DEFAULT_BUCKETS):
        self.bounds = tuple(bounds)
        if any(b <= a for a, b in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def quantile(self, q):
        """Estimated q-quantile (0 < q <= 1); None when empty."""
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        lower = self.min if self.min is not None else 0.0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            upper = (
                self.bounds[index] if index < len(self.bounds)
                else (self.max if self.max is not None else lower)
            )
            if cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                low = max(lower, self.min) if index == 0 else lower
                return low + fraction * max(0.0, upper - low)
            cumulative += bucket_count
            lower = upper
        return self.max

    def snapshot_value(self):
        cumulative = 0
        buckets = {}
        for index, bound in enumerate(self.bounds):
            cumulative += self.bucket_counts[index]
            buckets["%g" % bound] = cumulative
        buckets["+Inf"] = self.count
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
            "quantiles": {
                "p%g" % (100 * q): self.quantile(q)
                for q in SNAPSHOT_QUANTILES
            },
        }


class _Family:
    """One named metric: a kind, a help string, children per label set."""

    __slots__ = ("name", "kind", "help", "children")

    def __init__(self, name, kind, help_text):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.children = {}  # sorted label tuple -> metric instance


def _escape_help(text):
    """Prometheus HELP escaping: backslash and newline."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text):
    """Prometheus label-value escaping: backslash, quote, newline."""
    return (
        str(text)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_number(value):
    if value is None:
        return "NaN"
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


class MetricsRegistry:
    """Named metric families, each fanned out by label sets.

    ``registry.counter("wal_appends_total", "...", op="insert")`` returns
    the live child counter for that label combination, creating family
    and child on first use.  Metric kinds are sticky: re-registering a
    name with a different kind raises.
    """

    def __init__(self):
        self._families = {}

    def _child(self, name, kind, help_text, labels, factory):
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                "metric %r already registered as a %s" % (name, family.kind)
            )
        if help_text and not family.help:
            family.help = help_text
        key = tuple(sorted(labels.items()))
        child = family.children.get(key)
        if child is None:
            child = factory()
            family.children[key] = child
        return child

    # ``name``/``help_text`` are positional-only so that ``name=...`` (a
    # very natural label, e.g. span names) lands in ``**labels``.

    def counter(self, name, help_text="", /, **labels):
        return self._child(name, "counter", help_text, labels, Counter)

    def gauge(self, name, help_text="", /, **labels):
        return self._child(name, "gauge", help_text, labels, Gauge)

    def histogram(self, name, help_text="", /, *, buckets=None, **labels):
        bounds = DEFAULT_BUCKETS if buckets is None else tuple(buckets)
        return self._child(
            name, "histogram", help_text, labels,
            lambda: Histogram(bounds),
        )

    def get(self, name, /, **labels):
        """The existing child metric, or None (no registration side effect)."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.children.get(tuple(sorted(labels.items())))

    def clear(self):
        self._families = {}

    def __len__(self):
        return len(self._families)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def snapshot(self):
        """Every metric as one JSON-ready dict (sorted, stable)."""
        out = {}
        for name in sorted(self._families):
            family = self._families[name]
            samples = []
            for key in sorted(family.children):
                samples.append({
                    "labels": dict(key),
                    "value": family.children[key].snapshot_value(),
                })
            out[name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return out

    def snapshot_json(self, indent=2):
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render_prometheus(self, stream=None):
        """Prometheus text exposition format (v0.0.4); returns the string."""
        lines = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append("# HELP %s %s" % (name, _escape_help(family.help)))
            lines.append("# TYPE %s %s" % (name, family.kind))
            for key in sorted(family.children):
                metric = family.children[key]
                label_text = ",".join(
                    '%s="%s"' % (label, _escape_label_value(value))
                    for label, value in key
                )
                if family.kind == "histogram":
                    cumulative = 0
                    for index, bound in enumerate(metric.bounds):
                        cumulative += metric.bucket_counts[index]
                        bucket_labels = key + (("le", "%g" % bound),)
                        lines.append('%s_bucket{%s} %d' % (
                            name,
                            ",".join('%s="%s"'
                                     % (label, _escape_label_value(value))
                                     for label, value in bucket_labels),
                            cumulative,
                        ))
                    inf_labels = key + (("le", "+Inf"),)
                    lines.append('%s_bucket{%s} %d' % (
                        name,
                        ",".join('%s="%s"'
                                 % (label, _escape_label_value(value))
                                 for label, value in inf_labels),
                        metric.count,
                    ))
                    suffix = "{%s}" % label_text if label_text else ""
                    lines.append("%s_sum%s %s" % (
                        name, suffix, _format_number(metric.sum)
                    ))
                    lines.append("%s_count%s %d" % (
                        name, suffix, metric.count
                    ))
                else:
                    suffix = "{%s}" % label_text if label_text else ""
                    lines.append("%s%s %s" % (
                        name, suffix,
                        _format_number(metric.snapshot_value()),
                    ))
        text = "\n".join(lines)
        if stream is not None and text:
            stream.write(text + "\n")
        return text

    def __repr__(self):
        return "MetricsRegistry(%d families)" % len(self._families)


# ----------------------------------------------------------------------
# bridges from the package's existing stat surfaces
# ----------------------------------------------------------------------


def observe_tracker(registry, tracker, prefix="storage"):
    """Export a tracker's counters as gauges (delegates to the tracker)."""
    tracker.publish_metrics(registry, prefix=prefix)


def observe_result_cache(registry, cache, prefix="result_cache"):
    """Export a result cache's counters as gauges (or no-op on None)."""
    if cache is not None:
        cache.publish_metrics(registry, prefix=prefix)


def observe_tree_structure(registry, tree, prefix="dctree"):
    """Per-depth node/entry/supernode gauges from the structural stats."""
    # Imported lazily: repro.core's package __init__ imports the tree,
    # which imports this package — a module-level import would cycle.
    from ..core.stats import collect_stats

    stats = collect_stats(tree)
    registry.gauge(prefix + "_records",
                   "Records indexed by the tree.").set(stats.n_records)
    registry.gauge(prefix + "_height",
                   "Tree height (root counts as 1).").set(stats.height)
    registry.gauge(prefix + "_nodes_total",
                   "Total nodes in the tree.").set(stats.n_nodes)
    registry.gauge(prefix + "_supernodes_total",
                   "Total supernodes in the tree.").set(stats.n_supernodes)
    for level in stats.levels:
        depth = str(level.depth)
        registry.gauge(prefix + "_level_nodes",
                       "Nodes at one depth (root=0).",
                       depth=depth).set(level.n_nodes)
        registry.gauge(prefix + "_level_supernodes",
                       "Supernodes at one depth.",
                       depth=depth).set(level.n_supernodes)
        registry.gauge(prefix + "_level_entries_avg",
                       "Average entries per node at one depth (Fig. 13).",
                       depth=depth).set(level.avg_entries)
        registry.gauge(prefix + "_level_blocks_avg",
                       "Average blocks per node at one depth.",
                       depth=depth).set(level.avg_blocks)


def observe_dctree(registry, tree):
    """Refresh every tree-derived gauge family: tracker, cache, structure."""
    observe_tracker(registry, tree.tracker)
    observe_result_cache(registry, getattr(tree, "result_cache", None))
    observe_tree_structure(registry, tree)
    registry.gauge("dctree_tree_version",
                   "Monotone mutation counter.").set(tree.tree_version)


def warehouse_registry(warehouse):
    """The registry describing a warehouse right now.

    Reuses the index's live :class:`~repro.obs.Observability` registry
    when one is attached (so span counters appear alongside), otherwise
    builds a fresh one; either way the tracker/cache/structure gauges
    are refreshed before returning.
    """
    obs = getattr(warehouse, "observability", None)
    registry = obs.registry if obs is not None else MetricsRegistry()
    index = warehouse.index
    if warehouse.backend == "dc-tree":
        observe_dctree(registry, index)
    else:
        observe_tracker(registry, index.tracker)
        if warehouse.backend == "x-tree":
            observe_tree_structure(registry, index, prefix="xtree")
    return registry


def describe_result_cache(tree):
    """One-line result-cache summary of a DC-tree (debug/CLI aid).

    Returns e.g. ``"result-cache: 3 hits / 5 misses (37.5% hit rate), 5
    entries of 128, 1 eviction(s), 2 invalidation(s)"`` — or a disabled
    notice for trees without a cache.
    """
    cache = getattr(tree, "result_cache", None)
    if cache is None:
        return "result-cache: disabled"
    stats = cache.stats()
    return (
        "result-cache: %d hits / %d misses (%.1f%% hit rate), "
        "%d entries of %d, %d eviction(s), %d invalidation(s)"
        % (stats.hits, stats.misses, 100.0 * stats.hit_rate,
           stats.size, stats.capacity, stats.evictions,
           stats.invalidations)
    )
