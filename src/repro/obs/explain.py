"""Query EXPLAIN/profiling: where one query's cost actually went.

A profiled query records, per tree level (root = depth 0):

* node accesses, pages touched and page I/Os (buffer misses) charged at
  that depth,
* CPU units charged at that depth,
* DISJOINT / PARTIAL / CONTAINED classifications of directory entries,
* how many entries were answered from their materialized aggregate
  vector (*pruned*) versus descended into, and
* data records scanned at the leaves,

plus the result-cache outcome and the query's simulated vs. wall time.
The per-level page/CPU totals reconcile *exactly* with the
:class:`~repro.storage.tracker.StorageTracker` delta of the query: the
:class:`ProfileSession` attributes every tracker charge made during the
traversal to the depth that caused it, marking the counters as it goes,
so nothing can be double-counted or lost (``QueryProfile.reconciles``
asserts this and the test suite verifies it).

Profiling is opt-in per call (``DCTree.range_query(..., explain=True)``,
``python -m repro explain``) and observational only: on a result-cache
hit the EXPLAIN path *recomputes* the traversal instead of replaying the
stored trace — by the cache's own invariant the charges are identical
(same tree version ⇒ same traversal), so deterministic counters stay
bit-identical with or without ``explain``.
"""

from __future__ import annotations

_OUTCOME_NAMES = None


def _outcome_names():
    """{mds outcome constant: name}; imported lazily (cycle avoidance)."""
    global _OUTCOME_NAMES
    if _OUTCOME_NAMES is None:
        from ..core import mds as mds_mod

        _OUTCOME_NAMES = {
            mds_mod.DISJOINT: "disjoint",
            mds_mod.PARTIAL: "partial",
            mds_mod.CONTAINED: "contained",
        }
    return _OUTCOME_NAMES


class LevelProfile:
    """Cost and classification tallies of one tree depth."""

    __slots__ = ("depth", "node_accesses", "pages_touched", "page_ios",
                 "cpu_units", "disjoint", "partial", "contained",
                 "aggregate_hits", "records_scanned")

    def __init__(self, depth):
        self.depth = depth
        self.node_accesses = 0
        self.pages_touched = 0
        self.page_ios = 0
        self.cpu_units = 0
        self.disjoint = 0
        self.partial = 0
        self.contained = 0
        self.aggregate_hits = 0
        self.records_scanned = 0

    def to_dict(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}


class QueryProfile:
    """Everything EXPLAIN knows about one executed query."""

    def __init__(self, kind, op, measure_index, tree_version,
                 description=None):
        self.kind = kind
        self.op = op
        self.measure_index = measure_index
        self.tree_version = tree_version
        self.description = description
        self.cache_outcome = "disabled"
        self.levels = []
        self.before = None
        self.after = None
        self.wall_seconds = 0.0

    # -- totals ----------------------------------------------------------

    @property
    def delta(self):
        """The tracker delta of the whole query (an ``AccessStats``)."""
        return self.after - self.before

    def _level_total(self, attribute):
        return sum(getattr(level, attribute) for level in self.levels)

    @property
    def total_node_accesses(self):
        return self._level_total("node_accesses")

    @property
    def total_page_ios(self):
        return self._level_total("page_ios")

    @property
    def total_cpu_units(self):
        return self._level_total("cpu_units")

    def simulated_seconds(self, cost_model=None):
        """Simulated elapsed time of the query's charges."""
        return self.delta.simulated_seconds(cost_model)

    def reconciles(self):
        """Do the per-level totals equal the tracker delta exactly?"""
        delta = self.delta
        return (
            self.total_node_accesses == delta.node_accesses
            and self.total_page_ios == delta.page_ios + 0
            and self.total_cpu_units == delta.cpu_units
        )

    # -- export ----------------------------------------------------------

    def to_dict(self):
        delta = self.delta
        return {
            "kind": self.kind,
            "op": self.op,
            "measure": self.measure_index,
            "description": self.description,
            "tree_version": self.tree_version,
            "cache": self.cache_outcome,
            "levels": [level.to_dict() for level in self.levels],
            "totals": {
                "node_accesses": delta.node_accesses,
                "buffer_hits": delta.buffer_hits,
                "buffer_misses": delta.buffer_misses,
                "page_writes": delta.page_writes,
                "page_ios": delta.page_ios,
                "cpu_units": delta.cpu_units,
            },
            "reconciles": self.reconciles(),
            "wall_seconds": self.wall_seconds,
            "simulated_seconds": self.simulated_seconds(),
        }

    def render(self):
        """Human-readable EXPLAIN output (the CLI's format)."""
        delta = self.delta
        lines = []
        header = "EXPLAIN %s op=%s measure=%d (tree v%d)" % (
            self.kind, self.op, self.measure_index, self.tree_version
        )
        if self.description:
            header += " — %s" % self.description
        lines.append(header)
        lines.append("result cache: %s" % self.cache_outcome)
        if self.levels:
            lines.append(
                "depth  nodes  pages  page-ios   cpu-units  disjoint  "
                "partial  contained  agg-used  records"
            )
            for level in self.levels:
                lines.append(
                    "%5d  %5d  %5d  %8d  %10d  %8d  %7d  %9d  %8d  %7d"
                    % (level.depth, level.node_accesses,
                       level.pages_touched, level.page_ios,
                       level.cpu_units, level.disjoint, level.partial,
                       level.contained, level.aggregate_hits,
                       level.records_scanned)
                )
        else:
            lines.append("(no traversal recorded)")
        lines.append(
            "totals: %d node accesses, %d page I/Os (%d hits, %d misses), "
            "%d cpu units — reconcile with tracker delta: %s"
            % (delta.node_accesses, delta.page_ios, delta.buffer_hits,
               delta.buffer_misses, delta.cpu_units,
               "OK" if self.reconciles() else "MISMATCH")
        )
        lines.append(
            "simulated %.6f s, wall %.6f s"
            % (self.simulated_seconds(), self.wall_seconds)
        )
        return "\n".join(lines)

    def __repr__(self):
        return "QueryProfile(%s, cache=%s, levels=%d)" % (
            self.kind, self.cache_outcome, len(self.levels)
        )


class ProfileSession:
    """Live collector the tree's traversals feed during one query.

    The session keeps *marks* of the tracker's CPU and I/O counters;
    each attribution point moves everything charged since the last mark
    onto one depth.  Because the traversal is single-threaded and
    depth-first, the marks partition the query's charges exactly —
    per-level sums equal the tracker delta by construction.
    """

    __slots__ = ("profile", "tracker", "_levels", "_cpu_mark", "_io_mark")

    def __init__(self, profile, tracker):
        self.profile = profile
        self.tracker = tracker
        self._levels = {}
        self._cpu_mark = tracker.cpu_units
        self._io_mark = tracker.buffer.misses + tracker.page_writes

    def _level(self, depth):
        level = self._levels.get(depth)
        if level is None:
            level = LevelProfile(depth)
            self._levels[depth] = level
        return level

    def visit(self, depth, n_blocks):
        """Record a node access (call right after ``access_node``)."""
        level = self._level(depth)
        level.node_accesses += 1
        level.pages_touched += n_blocks
        ios = self.tracker.buffer.misses + self.tracker.page_writes
        level.page_ios += ios - self._io_mark
        self._io_mark = ios

    def charge_cpu(self, depth):
        """Attribute CPU charged since the last mark to ``depth``."""
        cpu = self.tracker.cpu_units
        self._level(depth).cpu_units += cpu - self._cpu_mark
        self._cpu_mark = cpu

    def classified(self, depth, outcome):
        """Record one entry classification at ``depth``."""
        setattr(
            self._level(depth),
            _outcome_names()[outcome],
            getattr(self._level(depth), _outcome_names()[outcome]) + 1,
        )

    def aggregate_hit(self, depth):
        """A contained entry answered from its materialized aggregate."""
        self._level(depth).aggregate_hits += 1

    def scanned(self, depth, n_records):
        self._level(depth).records_scanned += n_records

    def finish(self):
        """Flush residual charges (attributed to the root's depth)."""
        cpu = self.tracker.cpu_units
        ios = self.tracker.buffer.misses + self.tracker.page_writes
        if cpu != self._cpu_mark or ios != self._io_mark:
            level = self._level(0)
            level.cpu_units += cpu - self._cpu_mark
            level.page_ios += ios - self._io_mark
            self._cpu_mark = cpu
            self._io_mark = ios
        self.profile.levels = [
            self._levels[depth] for depth in sorted(self._levels)
        ]


class ExplainResult:
    """An answered query plus its :class:`QueryProfile`.

    Iterable as ``value, profile = tree.range_query(..., explain=True)``.
    """

    __slots__ = ("value", "profile")

    def __init__(self, value, profile):
        self.value = value
        self.profile = profile

    def __iter__(self):
        return iter((self.value, self.profile))

    def __repr__(self):
        return "ExplainResult(value=%r, %r)" % (self.value, self.profile)
