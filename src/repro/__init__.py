"""DC-tree: a fully dynamic index structure for data warehouses.

A full reproduction of Ester, Kohlhammer & Kriegel, *The DC-tree: A Fully
Dynamic Index Structure for Data Warehouses* (ICDE 2000): the DC-tree
itself, the X-tree and sequential-scan baselines, the TPC-D-style data
substrate, the query workload of the paper's evaluation, and the benchmark
harness regenerating its figures.

Quickstart::

    from repro import Warehouse

    warehouse = Warehouse.tpcd()            # DC-tree backend by default
    warehouse.insert(
        (("EUROPE", "GERMANY", "BUILDING", "Customer#1"),
         ("AMERICA", "CANADA", "Supplier#1"),
         ("Brand#11", "STANDARD ANODIZED TIN", "Part#1"),
         ("1996", "1996-03", "1996-03-15")),
        (4200.0,))
    total = warehouse.query("sum", where={"Customer": ("Region", ["EUROPE"])})
"""

from .aggview.view import MaterializedAggregateView
from .config import CostModel, DCTreeConfig, StorageConfig, XTreeConfig
from .core.bulkload import bulk_load
from .core.debug import dump_tree
from .core.mds import MDS
from .core.stats import collect_stats
from .core.tree import DCTree
from .maintenance.batch import BatchWarehouse
from .maintenance.partitioned import PartitionedWarehouse
from .persist.durable import DurableWarehouse
from .persist.io import load_warehouse, save_warehouse
from .persist.recovery import RecoveryReport, recover_warehouse
from .persist.wal import WriteAheadLog
from .storage.faults import FaultInjector, FaultPlan, InjectedFault
from .cube.record import DataRecord
from .cube.schema import CubeSchema, Dimension, Measure
from .errors import (
    HierarchyError,
    MdsError,
    QueryError,
    RecordNotFoundError,
    ReproError,
    SchemaError,
    StorageError,
    TreeError,
)
from .scan.table import FlatTable
from .tpcd.generator import TPCDGenerator
from .tpcd.schema import make_tpcd_schema
from .warehouse import BACKENDS, Warehouse
from .workload.queries import QueryGenerator, RangeQuery, query_from_labels
from .xtree.tree import XTree

__version__ = "1.0.0"

__all__ = [
    "BACKENDS",
    "BatchWarehouse",
    "MaterializedAggregateView",
    "PartitionedWarehouse",
    "CostModel",
    "CubeSchema",
    "DCTree",
    "DCTreeConfig",
    "DataRecord",
    "Dimension",
    "DurableWarehouse",
    "FaultInjector",
    "FaultPlan",
    "FlatTable",
    "HierarchyError",
    "InjectedFault",
    "MDS",
    "MdsError",
    "Measure",
    "QueryError",
    "QueryGenerator",
    "RangeQuery",
    "RecordNotFoundError",
    "RecoveryReport",
    "ReproError",
    "SchemaError",
    "StorageConfig",
    "StorageError",
    "TPCDGenerator",
    "TreeError",
    "Warehouse",
    "WriteAheadLog",
    "XTree",
    "XTreeConfig",
    "bulk_load",
    "collect_stats",
    "dump_tree",
    "load_warehouse",
    "make_tpcd_schema",
    "query_from_labels",
    "recover_warehouse",
    "save_warehouse",
    "__version__",
]
