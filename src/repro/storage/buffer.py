"""LRU buffer pool over simulated pages.

The trees of this package live in Python objects, but every node visit is
routed through a :class:`BufferPool` so experiments can count page hits and
misses as a disk-resident implementation would experience them.  The paper
explicitly equalized memory between the compared indexes ("the main memory
available for the X-tree was restricted to the memory size that the DC-tree
uses"); sizing two pools to the same page budget reproduces that control.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import StorageError


class BufferPool:
    """Fixed-capacity LRU cache of page IDs.

    ``capacity_pages <= 0`` disables eviction: the first touch of each page
    is a (cold) miss, everything after that is a hit.
    """

    def __init__(self, capacity_pages):
        self._capacity = capacity_pages
        self._pages = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self):
        return self._capacity

    @property
    def resident_pages(self):
        """Number of pages currently cached."""
        return len(self._pages)

    def access(self, page_id):
        """Touch one page; return True on a hit, False on a miss."""
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self.hits += 1
            return True
        self.misses += 1
        self._pages[page_id] = True
        if self._capacity > 0:
            while len(self._pages) > self._capacity:
                self._pages.popitem(last=False)
        return False

    def access_run(self, page_id, n_pages):
        """Touch ``n_pages`` consecutive pages starting at ``page_id``.

        Supernodes occupy several consecutive blocks; reading one touches
        all of them.  Returns the number of misses incurred.
        """
        if n_pages < 1:
            raise StorageError("a node occupies at least one page")
        misses = 0
        for offset in range(n_pages):
            if not self.access((page_id, offset)):
                misses += 1
        return misses

    def evict(self, page_id, n_pages=1):
        """Drop pages from the pool (used when a node is freed)."""
        for offset in range(n_pages):
            self._pages.pop((page_id, offset), None)

    def clear(self):
        """Empty the pool without resetting the hit/miss counters."""
        self._pages.clear()

    def reset_counters(self):
        self.hits = 0
        self.misses = 0

    def __repr__(self):
        return "BufferPool(capacity=%r, resident=%d, hits=%d, misses=%d)" % (
            self._capacity,
            len(self._pages),
            self.hits,
            self.misses,
        )
