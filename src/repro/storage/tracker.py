"""Access tracking: node visits, page I/O, CPU work units.

Every index structure in this package owns one :class:`StorageTracker`.
Algorithms report node visits and CPU-ish work (set operations on attribute
values) to it; experiments read the counters and convert them into a
simulated elapsed time through :class:`~repro.config.CostModel`.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..config import CostModel, StorageConfig
from ..errors import StorageError
from .buffer import BufferPool


class AccessStats:
    """Immutable snapshot of the tracker's counters."""

    __slots__ = ("node_accesses", "buffer_hits", "buffer_misses",
                 "page_writes", "cpu_units")

    def __init__(self, node_accesses, buffer_hits, buffer_misses,
                 page_writes, cpu_units):
        self.node_accesses = node_accesses
        self.buffer_hits = buffer_hits
        self.buffer_misses = buffer_misses
        self.page_writes = page_writes
        self.cpu_units = cpu_units

    def __sub__(self, earlier):
        return AccessStats(
            self.node_accesses - earlier.node_accesses,
            self.buffer_hits - earlier.buffer_hits,
            self.buffer_misses - earlier.buffer_misses,
            self.page_writes - earlier.page_writes,
            self.cpu_units - earlier.cpu_units,
        )

    @property
    def page_ios(self):
        """Total page I/Os: read misses plus write-backs."""
        return self.buffer_misses + self.page_writes

    def simulated_seconds(self, cost_model=None):
        """Simulated elapsed time of the counted events."""
        model = cost_model if cost_model is not None else CostModel()
        return model.simulated_seconds(self.page_ios, self.cpu_units)

    def __repr__(self):
        return (
            "AccessStats(nodes=%d, hits=%d, misses=%d, writes=%d, cpu=%d)"
            % (self.node_accesses, self.buffer_hits, self.buffer_misses,
               self.page_writes, self.cpu_units)
        )


class StorageTracker:
    """Counts node accesses and CPU units behind an LRU buffer pool."""

    def __init__(self, storage_config=None, faults=None):
        config = storage_config if storage_config is not None else StorageConfig()
        self.config = config
        self.buffer = BufferPool(config.buffer_pages)
        self.node_accesses = 0
        self.page_writes = 0
        self.cpu_units = 0
        self._next_page_id = 0
        self._access_log = None
        # Optional FaultInjector (see repro.storage.faults): when set,
        # every node access/write counts as an injectable I/O site, so
        # crash tests can kill an insert between any two page touches.
        self.faults = faults

    # -- page lifecycle -------------------------------------------------

    def new_page_id(self):
        """Allocate a fresh page ID for a new node."""
        page_id = self._next_page_id
        self._next_page_id += 1
        return page_id

    def free_node(self, page_id, n_blocks=1):
        """Drop a destroyed node's pages from the buffer."""
        self.buffer.evict(page_id, n_blocks)

    # -- event reporting -------------------------------------------------

    def access_node(self, page_id, n_blocks=1):
        """Record one visit of a node occupying ``n_blocks`` pages."""
        if self.faults is not None:
            self.faults.op("tracker.access")
        self.node_accesses += 1
        if self._access_log is not None:
            self._access_log.append((page_id, n_blocks))
        self.buffer.access_run(page_id, n_blocks)

    def write_node(self, page_id, n_pages=1):
        """Record an in-place update of a node (write-through model).

        Dynamic single-record updates are what the DC-tree exists for, so
        updates are modeled write-through: every logical node update costs
        ``n_pages`` page writes (a supernode's measure/MDS entry update
        touches one block, so callers normally pass 1).  Writers access the
        node before updating it, so the read side is already accounted;
        this only counts the write-back.
        """
        if self.faults is not None:
            self.faults.op("tracker.write")
        self.page_writes += n_pages

    def cpu(self, units):
        """Record ``units`` of CPU work (attribute-value set operations)."""
        self.cpu_units += units

    # -- access tracing (result-cache support) ---------------------------

    @contextmanager
    def trace_accesses(self):
        """Record every ``access_node`` call in the body as a trace.

        Yields the live list of ``(page_id, n_blocks)`` pairs in call
        order.  The result cache stores the trace of a query's first
        computation and :meth:`replay`\\ s it on every hit, so the buffer
        pool evolves exactly as if the traversal had run.  Tracing is not
        reentrant — cached operations never nest.
        """
        if self._access_log is not None:
            raise StorageError("access tracing is not reentrant")
        log = []
        self._access_log = log
        try:
            yield log
        finally:
            self._access_log = None

    def replay(self, trace, cpu_units):
        """Re-charge a recorded access trace plus its CPU units.

        This is the cache-hit charging policy (see docs/cost_model.md):
        a memoized answer is charged exactly what recomputing it would
        cost, page by page, so deterministic counters and buffer-pool
        state are identical with the result cache on or off.
        """
        for page_id, n_blocks in trace:
            self.access_node(page_id, n_blocks)
        if cpu_units:
            self.cpu(cpu_units)

    # -- reading ----------------------------------------------------------

    def publish_metrics(self, registry, prefix="storage"):
        """Export the counters as gauges into a metrics registry.

        Gauges, not counters: :meth:`reset` can move them backwards
        (between bench phases), which Prometheus counters forbid.
        """
        stats = self.snapshot()
        registry.gauge(prefix + "_node_accesses",
                       "Logical node visits.").set(stats.node_accesses)
        registry.gauge(prefix + "_buffer_hits",
                       "Page requests served by the buffer pool."
                       ).set(stats.buffer_hits)
        registry.gauge(prefix + "_buffer_misses",
                       "Page requests that faulted (random read I/Os)."
                       ).set(stats.buffer_misses)
        registry.gauge(prefix + "_page_writes",
                       "Write-through page writes.").set(stats.page_writes)
        registry.gauge(prefix + "_page_ios",
                       "Total page I/Os: misses + writes."
                       ).set(stats.page_ios)
        registry.gauge(prefix + "_cpu_units",
                       "CPU work units (attribute-value set operations)."
                       ).set(stats.cpu_units)
        registry.gauge(prefix + "_simulated_seconds",
                       "Counters priced through the default cost model."
                       ).set(stats.simulated_seconds())

    def snapshot(self):
        """Current counters as an immutable :class:`AccessStats`."""
        return AccessStats(
            self.node_accesses,
            self.buffer.hits,
            self.buffer.misses,
            self.page_writes,
            self.cpu_units,
        )

    def reset(self, clear_buffer=False):
        """Zero the counters; optionally also empty the buffer pool."""
        self.node_accesses = 0
        self.page_writes = 0
        self.cpu_units = 0
        self.buffer.reset_counters()
        if clear_buffer:
            self.buffer.clear()

    def __repr__(self):
        return "StorageTracker(%r)" % (self.snapshot(),)
