"""Simulated paged storage: block sizes, LRU buffering, access counters.

The paper evaluated disk-resident trees; this substrate lets the in-memory
reimplementation report the page-level behaviour (accesses, buffer misses,
footprints) a disk-resident deployment would exhibit.
"""

from .buffer import BufferPool
from .faults import FaultInjector, FaultPlan, InjectedFault
from .page import (
    ID_BYTES,
    LEVEL_BYTES,
    MEASURE_BYTES,
    NODE_HEADER_BYTES,
    POINTER_BYTES,
    SUMMARY_BYTES,
    dc_directory_entry_bytes,
    dc_record_bytes,
    mbr_bytes,
    mds_bytes,
    pages_for,
    x_directory_entry_bytes,
    x_record_bytes,
)
from .tracker import AccessStats, StorageTracker

__all__ = [
    "AccessStats",
    "BufferPool",
    "FaultInjector",
    "FaultPlan",
    "ID_BYTES",
    "InjectedFault",
    "LEVEL_BYTES",
    "MEASURE_BYTES",
    "NODE_HEADER_BYTES",
    "POINTER_BYTES",
    "SUMMARY_BYTES",
    "StorageTracker",
    "dc_directory_entry_bytes",
    "dc_record_bytes",
    "mbr_bytes",
    "mds_bytes",
    "pages_for",
    "x_directory_entry_bytes",
    "x_record_bytes",
]
