"""Serialized-size accounting for index nodes.

Nothing is actually serialized; these helpers estimate how many bytes a
node would occupy on disk so that (a) the trees can report their footprint
in pages and (b) comparative experiments can grant the X-tree exactly the
DC-tree's memory, as the paper did.

Sizes follow the paper's own accounting: an attribute ID is a 32-bit
integer (4 bytes, §3.1); an MDS entry stores, per dimension, its relevant
level plus the value set, and every directory entry additionally carries a
child pointer and the materialized measure summaries.  MBR entries of the
X-tree store two 4-byte coordinates per flat attribute.
"""

from __future__ import annotations

#: Bytes of one attribute ID (32-bit integer, §3.1 of the paper).
ID_BYTES = 4
#: Bytes of one stored level tag.
LEVEL_BYTES = 1
#: Bytes of a child/record pointer.
POINTER_BYTES = 8
#: Bytes of one float measure component.
MEASURE_BYTES = 8
#: Per-measure materialized summary: sum, count, min, max.
SUMMARY_BYTES = 4 * MEASURE_BYTES
#: Fixed per-node header (node type, entry count, block count, ...).
NODE_HEADER_BYTES = 16


def mds_bytes(mds):
    """Serialized size of one MDS (variable, unlike an MBR)."""
    total = 0
    for values, _level in mds.entries:
        total += LEVEL_BYTES + 2 + len(values) * ID_BYTES
    return total


def dc_directory_entry_bytes(mds, n_measures):
    """Size of one DC-tree directory entry: MDS + aggregates + pointer."""
    return mds_bytes(mds) + n_measures * SUMMARY_BYTES + POINTER_BYTES


def dc_record_bytes(n_flat_attributes, n_measures):
    """Size of one data record inside a DC-tree data node."""
    return n_flat_attributes * ID_BYTES + n_measures * MEASURE_BYTES


def mbr_bytes(n_flat_attributes):
    """Serialized size of one MBR over the flattened attribute space."""
    return 2 * n_flat_attributes * ID_BYTES


def x_directory_entry_bytes(n_flat_attributes):
    """Size of one X-tree directory entry: MBR + pointer + split history."""
    history_bytes = (n_flat_attributes + 7) // 8
    return mbr_bytes(n_flat_attributes) + POINTER_BYTES + history_bytes


def x_record_bytes(n_flat_attributes, n_measures):
    """Size of one data record inside an X-tree data node."""
    return n_flat_attributes * ID_BYTES + n_measures * MEASURE_BYTES


def pages_for(n_bytes, page_size):
    """Number of whole pages needed for ``n_bytes``."""
    if n_bytes <= 0:
        return 1
    return -(-n_bytes // page_size)
