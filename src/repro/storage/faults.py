"""Deterministic fault injection for the durability layer.

Crash-safety claims are only as good as the crashes they were tested
against.  This module lets tests *schedule* a failure at an exact I/O
operation: a :class:`FaultPlan` names the Nth operation (optionally
restricted to one subsystem) and the failure mode, a
:class:`FaultInjector` counts operations as the WAL, the checkpoint
writer and the :class:`~repro.storage.tracker.StorageTracker` report
them, and fires the planned fault when the count is reached.

Failure modes
-------------

``crash``
    The operation never happens; :class:`InjectedFault` is raised.
    Simulates process death immediately before the syscall.
``torn``
    Only a prefix of the data is written, then :class:`InjectedFault`
    is raised.  Simulates a torn (partial) write during process death
    or power loss.  On non-write operations it degrades to ``crash``.
``short_read``
    A read returns only a prefix of the requested data and execution
    *continues* — the caller sees a truncated file, as after recovering
    a torn tail.  On non-read operations it degrades to ``crash``.

The injector is deterministic by construction: the same plan against
the same workload fires at the same operation, so every crash site can
be enumerated (run once with a plan-less injector, read :attr:`trace`,
then replay the workload once per recorded operation).

:class:`InjectedFault` deliberately does **not** derive from
:class:`~repro.errors.ReproError`: library code that converts or
swallows ``ReproError`` must never accidentally "handle" a simulated
crash — it has to unwind all the way out to the test harness, exactly
like process death would.
"""

from __future__ import annotations

import random


class InjectedFault(Exception):
    """A scheduled fault fired — treat as simulated process death.

    Not a ``ReproError`` on purpose; see the module docstring.
    """

    def __init__(self, site, op_index, mode):
        super().__init__(
            "injected %s fault at I/O op %d (site %s)"
            % (mode, op_index, site)
        )
        self.site = site
        self.op_index = op_index
        self.mode = mode


class FaultPlan:
    """One scheduled fault: fail at the Nth matching I/O operation.

    Parameters
    ----------
    fail_at:
        1-based index of the matching operation that faults.
    mode:
        ``"crash"``, ``"torn"`` or ``"short_read"`` (see module docs).
    site:
        Optional site-name prefix (e.g. ``"wal"`` or
        ``"checkpoint.write"``); only operations whose site starts with
        it count towards ``fail_at``.  ``None`` counts everything.
    torn_fraction:
        Fraction of the payload a torn write persists (at least one
        byte so the tear is observable).
    """

    MODES = ("crash", "torn", "short_read")

    def __init__(self, fail_at, mode="crash", site=None, torn_fraction=0.5):
        if fail_at < 1:
            raise ValueError("fail_at is 1-based and must be >= 1")
        if mode not in self.MODES:
            raise ValueError(
                "mode must be one of %s, got %r" % (", ".join(self.MODES), mode)
            )
        if not 0.0 < torn_fraction < 1.0:
            raise ValueError("torn_fraction must be in (0, 1)")
        self.fail_at = fail_at
        self.mode = mode
        self.site = site
        self.torn_fraction = torn_fraction

    @classmethod
    def seeded(cls, seed, n_ops, site=None):
        """A reproducible pseudo-random plan over ``n_ops`` operations.

        The same seed always yields the same (fail_at, mode) pair —
        property tests draw seeds, failures replay from the seed alone.
        """
        rng = random.Random(seed)
        return cls(
            fail_at=rng.randint(1, max(1, n_ops)),
            mode=rng.choice(("crash", "torn")),
            site=site,
        )

    def __repr__(self):
        return "FaultPlan(fail_at=%d, mode=%r, site=%r)" % (
            self.fail_at, self.mode, self.site,
        )


class FaultInjector:
    """Counts I/O operations and fires the plan's fault when reached.

    With ``plan=None`` the injector only records the operation stream in
    :attr:`trace` — the enumeration pass of a crash matrix.  Every entry
    is a ``(site, kind)`` pair with ``kind`` one of ``"op"``, ``"write"``
    or ``"read"``; its index + 1 is the ``fail_at`` that targets it.
    """

    def __init__(self, plan=None):
        self.plan = plan
        self.trace = []
        self.matched = 0
        self.fired = False

    # ------------------------------------------------------------------

    def _armed(self, site):
        plan = self.plan
        if plan is None or self.fired:
            return False
        if plan.site is not None and not site.startswith(plan.site):
            return False
        self.matched += 1
        return self.matched == plan.fail_at

    def _fire(self, site):
        self.fired = True
        raise InjectedFault(site, self.matched, self.plan.mode)

    # ------------------------------------------------------------------
    # the three operation kinds
    # ------------------------------------------------------------------

    def op(self, site):
        """A non-data operation (fsync, rename, tracker event)."""
        self.trace.append((site, "op"))
        if self._armed(site):
            self._fire(site)

    def write(self, handle, site, data):
        """Write ``data`` to ``handle``; a torn fault persists a prefix."""
        self.trace.append((site, "write"))
        if self._armed(site):
            if self.plan.mode == "torn":
                prefix = data[:max(1, int(len(data) * self.plan.torn_fraction))]
                handle.write(prefix)
                handle.flush()
            self._fire(site)
        handle.write(data)

    def read(self, handle, site, size=-1):
        """Read from ``handle``; a short-read fault truncates the result."""
        self.trace.append((site, "read"))
        data = handle.read(size)
        if self._armed(site):
            if self.plan.mode == "short_read":
                self.fired = True
                return data[:len(data) // 2]
            self._fire(site)
        return data


def write_through(faults, handle, site, data):
    """Write via the injector when one is attached, directly otherwise."""
    if faults is not None:
        faults.write(handle, site, data)
    else:
        handle.write(data)


def read_through(faults, handle, site, size=-1):
    """Read via the injector when one is attached, directly otherwise."""
    if faults is not None:
        return faults.read(handle, site, size)
    return handle.read(size)


def op_through(faults, site):
    """Report a non-data operation when an injector is attached."""
    if faults is not None:
        faults.op(site)
