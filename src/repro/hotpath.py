"""Global switch for the hot-path acceleration layer.

The acceleration layer — O(1) flattened ancestor tables in
:class:`~repro.cube.hierarchy.ConceptHierarchy`, versioned adaptation
memos in :class:`~repro.core.mds.MDS`, the fused
:func:`~repro.core.mds.classify` entry test, and the versioned
query-result cache of :mod:`repro.core.result_cache` — is semantically
invisible: every operation returns identical results (and charges
identical tracker counters) with it on or off.  This module holds the
single process-wide switch the ablation benchmarks flip to price it
(``python -m repro.bench regression``); the per-tree
``DCTreeConfig.use_hot_path_caches`` / ``use_result_cache`` flags
additionally select the code paths inside one tree.

The switch is read on every hot operation, so flipping it mid-run is safe:
memoized state is keyed by version and simply goes cold, never stale.
"""

from __future__ import annotations

from contextlib import contextmanager

_enabled = True


def enabled():
    """True while the acceleration layer is active (the default)."""
    return _enabled


def set_enabled(flag):
    """Enable/disable the acceleration layer; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


@contextmanager
def disabled():
    """Run the body with the acceleration layer off (legacy code paths)."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)
