"""Command-line interface: ``python -m repro <command>``.

Commands
--------
generate   write a TPC-D-style flat insert file
load       bulk-load a warehouse from a flat file and save it
query      run one aggregate query against a saved warehouse
groupby    run one roll-up report against a saved warehouse
sql        run a SQL-ish query (SELECT agg(measure) WHERE ... GROUP BY ...)
explain    profile one query: per-level cost attribution (EXPLAIN)
inspect    print schema, size and tree statistics of a saved warehouse
recover    replay checkpoint + WAL after a crash and report what survived
bench      shortcut for ``python -m repro.bench ...``

``query``/``groupby``/``sql`` also take ``--explain`` to append the same
profile the ``explain`` command prints.

Read commands accept either a plain warehouse ``.json`` file or a
durable session *directory* (``checkpoint.json`` + ``wal.log``); the
latter is recovered — checkpoint, WAL replay, validation — before the
command runs.

The CLI is a thin veneer over the public API — every command body reads
like the quickstart so it doubles as living documentation.
"""

from __future__ import annotations

import argparse
import os
import sys

from .core.bulkload import bulk_load
from .core.debug import describe_result_cache
from .core.stats import collect_stats
from .errors import ReproError, StorageError
from .persist.durable import DurableWarehouse
from .persist.io import load_warehouse, save_warehouse
from .persist.recovery import recover_warehouse
from .query.sql import execute as execute_sql
from .tpcd.flatfile import read_flatfile, write_flatfile
from .tpcd.generator import TPCDGenerator
from .tpcd.schema import make_tpcd_schema
from .warehouse import Warehouse


def main(argv=None):
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        return args.handler(args)
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early - not an error.
        return 0


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DC-tree data warehouse toolkit (ICDE 2000 reproduction)",
    )
    commands = parser.add_subparsers(dest="command")

    generate = commands.add_parser(
        "generate", help="write a TPC-D-style flat insert file"
    )
    generate.add_argument("path", help="output .tbl path")
    generate.add_argument("--records", type=int, default=10000)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(handler=_cmd_generate)

    load = commands.add_parser(
        "load", help="bulk-load a warehouse from a flat file and save it"
    )
    load.add_argument("flatfile", help="input .tbl path")
    load.add_argument("warehouse", help="output warehouse .json path")
    load.add_argument(
        "--backend", choices=("dc-tree", "x-tree", "scan"),
        default="dc-tree",
    )
    load.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="load through insert_batch in chunks of N records instead "
        "of the offline bulk loader — the dynamic-update path with "
        "amortized page writes (any backend; N must be positive)",
    )
    load.set_defaults(handler=_cmd_load)

    query = commands.add_parser(
        "query", help="one aggregate query against a saved warehouse"
    )
    query.add_argument("warehouse", help="warehouse .json path")
    query.add_argument("--op", default="sum",
                       choices=("sum", "count", "avg", "min", "max"))
    query.add_argument(
        "--where", action="append", default=[], metavar="DIM.LEVEL=A,B",
        help="constraint, repeatable (e.g. Customer.Region=EUROPE,ASIA)",
    )
    query.add_argument(
        "--explain", action="store_true",
        help="also print the query's per-level cost profile (dc-tree)",
    )
    query.set_defaults(handler=_cmd_query)

    groupby = commands.add_parser(
        "groupby", help="roll-up report against a saved warehouse"
    )
    groupby.add_argument("warehouse", help="warehouse .json path")
    groupby.add_argument("by", metavar="DIM.LEVEL",
                         help="e.g. Customer.Region")
    groupby.add_argument("--op", default="sum",
                         choices=("sum", "count", "avg", "min", "max"))
    groupby.add_argument(
        "--where", action="append", default=[], metavar="DIM.LEVEL=A,B"
    )
    groupby.add_argument(
        "--explain", action="store_true",
        help="also print the query's per-level cost profile (dc-tree)",
    )
    groupby.set_defaults(handler=_cmd_groupby)

    inspect = commands.add_parser(
        "inspect", help="schema, sizes and tree statistics of a warehouse"
    )
    inspect.add_argument("warehouse", help="warehouse .json path")
    inspect.set_defaults(handler=_cmd_inspect)

    sql = commands.add_parser(
        "sql", help="run a SQL-ish query against a saved warehouse"
    )
    sql.add_argument("warehouse", help="warehouse .json path")
    sql.add_argument(
        "query",
        help="e.g. \"SELECT SUM(ExtendedPrice) WHERE "
             "Customer.Region = 'EUROPE' GROUP BY Time.Year\"",
    )
    sql.add_argument(
        "--explain", action="store_true",
        help="also print the query's per-level cost profile (dc-tree)",
    )
    sql.set_defaults(handler=_cmd_sql)

    explain = commands.add_parser(
        "explain",
        help="profile one query: per-level page/CPU attribution, entry "
             "classifications, aggregate pruning, cache outcome",
    )
    explain.add_argument("warehouse", help="warehouse .json path")
    explain.add_argument("--op", default="sum",
                         choices=("sum", "count", "avg", "min", "max"))
    explain.add_argument(
        "--where", action="append", default=[], metavar="DIM.LEVEL=A,B"
    )
    explain.add_argument(
        "--by", default=None, metavar="DIM.LEVEL",
        help="profile a roll-up over this dimension instead",
    )
    explain.add_argument(
        "--sql", default=None, metavar="QUERY",
        help="profile this SQL-ish query instead of --op/--where/--by",
    )
    explain.add_argument(
        "--json", action="store_true",
        help="emit the profile (and result) as JSON",
    )
    explain.set_defaults(handler=_cmd_explain)

    recover = commands.add_parser(
        "recover",
        help="replay checkpoint + WAL after a crash and report what "
             "survived",
    )
    recover.add_argument(
        "warehouse",
        help="durable session directory, or a checkpoint .json path",
    )
    recover.add_argument(
        "--wal", default=None, metavar="PATH",
        help="WAL path (default: wal.log next to the checkpoint)",
    )
    recover.add_argument(
        "--output", default=None, metavar="PATH",
        help="save the recovered warehouse as a fresh checkpoint here",
    )
    recover.add_argument(
        "--metrics", action="store_true",
        help="also print the recovery audit as Prometheus text exposition",
    )
    recover.set_defaults(handler=_cmd_recover)

    bench = commands.add_parser(
        "bench",
        help="regenerate the paper's experiments "
             "(delegates to `python -m repro.bench`)",
    )
    bench.add_argument("bench_args", nargs=argparse.REMAINDER,
                       help="arguments for repro.bench (e.g. fig12b --quick)")
    bench.set_defaults(handler=_cmd_bench)

    return parser


def _cmd_generate(args):
    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=args.seed,
                              scale_records=args.records)
    count = write_flatfile(
        args.path, schema, generator.records(args.records)
    )
    print("wrote %d records to %s" % (count, args.path))
    return 0


def _cmd_load(args):
    schema, records = read_flatfile(args.flatfile)
    if args.batch_size is not None:
        if args.batch_size <= 0:
            print("--batch-size must be positive")
            return 2
        warehouse = Warehouse(schema, args.backend)
        for start in range(0, len(records), args.batch_size):
            warehouse.insert_records(records[start:start + args.batch_size])
        via = "%s (batched inserts of %d)" % (args.backend, args.batch_size)
    elif args.backend == "dc-tree":
        warehouse = Warehouse.wrap(bulk_load(schema, records))
        via = args.backend
    else:
        warehouse = Warehouse(schema, args.backend)
        for record in records:
            warehouse.insert_record(record)
        via = args.backend
    save_warehouse(warehouse, args.warehouse)
    print(
        "loaded %d records into a %s and saved it to %s"
        % (len(warehouse), via, args.warehouse)
    )
    return 0


def _parse_where(clauses):
    where = {}
    for clause in clauses:
        head, _, labels = clause.partition("=")
        dim, _, level = head.partition(".")
        if not (dim and level and labels):
            raise SystemExit(
                "bad --where %r (expected DIM.LEVEL=A,B)" % clause
            )
        where[dim] = (level, [label for label in labels.split(",") if label])
    return where


def _open_warehouse(path):
    """Open a warehouse for reading: plain ``.json`` file or durable
    session directory.  Returns ``(warehouse, report_or_None)``."""
    if os.path.isdir(path):
        warehouse, report = recover_warehouse(
            DurableWarehouse.checkpoint_path(path),
            DurableWarehouse.wal_path(path),
        )
        if warehouse is None:
            raise StorageError(
                "cannot recover %s: %s" % (path, report.checkpoint_error)
            )
        if not report.validated:
            raise StorageError(
                "recovered warehouse failed validation: %s"
                % report.validation_error
            )
        return warehouse, report
    return load_warehouse(path), None


def _print_result(value):
    if isinstance(value, dict):
        for label in sorted(value):
            print("%s\t%g" % (label, value[label]))
    else:
        print(value)


def _cmd_query(args):
    warehouse, _ = _open_warehouse(args.warehouse)
    result = warehouse.query(args.op, where=_parse_where(args.where),
                             explain=args.explain)
    if args.explain:
        result, profile = result
        _print_result(result)
        print(profile.render())
    else:
        _print_result(result)
    return 0


def _cmd_groupby(args):
    warehouse, _ = _open_warehouse(args.warehouse)
    dim, _, level = args.by.partition(".")
    if not (dim and level):
        raise SystemExit("bad group-by %r (expected DIM.LEVEL)" % args.by)
    groups = warehouse.group_by(
        dim, level, op=args.op, where=_parse_where(args.where),
        explain=args.explain,
    )
    if args.explain:
        groups, profile = groups
        _print_result(groups)
        print(profile.render())
    else:
        _print_result(groups)
    return 0


def _cmd_sql(args):
    warehouse, _ = _open_warehouse(args.warehouse)
    result = execute_sql(warehouse, args.query, explain=args.explain)
    if args.explain:
        result, profile = result
        _print_result(result)
        print(profile.render())
    else:
        _print_result(result)
    return 0


def _cmd_explain(args):
    warehouse, _ = _open_warehouse(args.warehouse)
    if args.sql:
        result = execute_sql(warehouse, args.sql, explain=True)
    elif args.by:
        dim, _, level = args.by.partition(".")
        if not (dim and level):
            raise SystemExit("bad --by %r (expected DIM.LEVEL)" % args.by)
        result = warehouse.group_by(
            dim, level, op=args.op, where=_parse_where(args.where),
            explain=True,
        )
    else:
        result = warehouse.query(
            args.op, where=_parse_where(args.where), explain=True
        )
    value, profile = result
    if args.json:
        import json

        payload = profile.to_dict()
        payload["result"] = (
            {str(label): v for label, v in sorted(value.items())}
            if isinstance(value, dict) else value
        )
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        _print_result(value)
        print(profile.render())
    return 0


def _cmd_bench(args):
    from .bench.__main__ import main as bench_main

    return bench_main(args.bench_args or ["all", "--quick"])


def _cmd_recover(args):
    path = args.warehouse
    if os.path.isdir(path):
        checkpoint = DurableWarehouse.checkpoint_path(path)
        wal = args.wal or DurableWarehouse.wal_path(path)
    else:
        checkpoint = path
        wal = args.wal or os.path.join(
            os.path.dirname(path) or ".", DurableWarehouse.WAL_NAME
        )
        if not os.path.exists(wal):
            wal = None
    warehouse, report = recover_warehouse(checkpoint, wal)
    print(report.describe())
    if args.metrics:
        from .obs import MetricsRegistry

        registry = MetricsRegistry()
        report.publish_metrics(registry)
        print(registry.render_prometheus())
    if warehouse is None or not report.ok:
        return 1
    if args.output:
        save_warehouse(
            warehouse, args.output, extra_meta={"wal_lsn": report.last_lsn}
        )
        print("saved recovered warehouse to %s" % args.output)
    return 0


def _cmd_inspect(args):
    warehouse, report = _open_warehouse(args.warehouse)
    if report is not None:
        print(report.describe())
    print("backend:  %s" % warehouse.backend)
    print("records:  %d" % len(warehouse))
    print("size:     %.1f KiB" % (warehouse.byte_size() / 1024))
    for dimension in warehouse.schema.dimensions:
        hierarchy = dimension.hierarchy
        sizes = "/".join(
            str(hierarchy.n_values_at_level(level))
            for level in reversed(range(hierarchy.top_level))
        )
        print(
            "dim %-10s %s (%s values)"
            % (dimension.name, " > ".join(reversed(dimension.level_names)),
               sizes)
        )
    for measure in warehouse.schema.measures:
        print("measure:  %s" % measure.name)
    if warehouse.backend in ("dc-tree", "x-tree"):
        stats = collect_stats(warehouse.index)
        print("height:   %d" % stats.height)
        print("nodes:    %d (%d supernodes)" % (stats.n_nodes,
                                                stats.n_supernodes))
        for level in stats.levels:
            print(
                "  depth %d: %4d nodes, %6.1f entries avg"
                % (level.depth, level.n_nodes, level.avg_entries)
            )
    if warehouse.backend == "dc-tree":
        print(describe_result_cache(warehouse.index))
    from .obs import warehouse_registry

    print("metrics:")
    print(warehouse_registry(warehouse).snapshot_json())
    return 0


if __name__ == "__main__":
    sys.exit(main())
