"""Deterministic TPC-D-style data generator (the paper's §5.1 substitute).

The paper materialized its test cube by SQL selections over a TPC-D
database into a flat insert file.  This generator produces the same shape
directly: records over the four-dimensional cube of Fig. 8/9 with TPC-D's
real value domains and TPC-D-like cardinality ratios (one customer per
~40 line items, one supplier per ~600, one part per ~30), uniformly
distributed as in TPC-D's dbgen, fully reproducible from a seed.
"""

from __future__ import annotations

import random

from ..errors import SchemaError
from . import names
from .schema import make_tpcd_schema


class TPCDGenerator:
    """Streams TPC-D-like data records for a given cube schema.

    Parameters
    ----------
    schema:
        The cube schema to populate; a fresh TPC-D schema when omitted.
    seed:
        RNG seed; identical seeds yield identical record streams.
    scale_records:
        Intended total number of records — sizes the customer, supplier
        and part pools with TPC-D's cardinality ratios.  Generating more
        records than this is allowed (the pools simply get denser).
    skew:
        0.0 (default) draws entities uniformly, as TPC-D's dbgen does.
        Positive values skew the draws Zipf-style towards the front of
        each pool (0.5–1.5 are realistic retail shapes): a few customers,
        suppliers and parts dominate the line items, which is what real
        warehouses look like and what clustering indexes profit from.
    """

    #: TPC-D cardinality ratios: line items per dimension entity.
    RECORDS_PER_CUSTOMER = 40
    RECORDS_PER_SUPPLIER = 600
    RECORDS_PER_PART = 30

    def __init__(self, schema=None, seed=0, scale_records=30000, skew=0.0):
        if scale_records < 1:
            raise SchemaError("scale_records must be positive")
        if skew < 0.0:
            raise SchemaError("skew must be non-negative")
        self.schema = schema if schema is not None else make_tpcd_schema()
        if self.schema.n_dimensions != 4 or self.schema.n_measures < 1:
            raise SchemaError(
                "TPCDGenerator needs the 4-dimensional TPC-D cube schema"
            )
        self.seed = seed
        self.skew = skew
        self._rng = random.Random(seed)
        self.customers = self._make_customers(
            max(25, scale_records // self.RECORDS_PER_CUSTOMER)
        )
        self.suppliers = self._make_suppliers(
            max(10, scale_records // self.RECORDS_PER_SUPPLIER)
        )
        self.parts = self._make_parts(
            max(25, scale_records // self.RECORDS_PER_PART)
        )

    # ------------------------------------------------------------------
    # entity pools
    # ------------------------------------------------------------------

    def _make_customers(self, count):
        customers = []
        for key in range(count):
            nation, region = self._rng.choice(names.NATION_REGIONS)
            segment = self._rng.choice(names.MARKET_SEGMENTS)
            customers.append(
                (region, nation, segment, "Customer#%06d" % key)
            )
        return tuple(customers)

    def _make_suppliers(self, count):
        suppliers = []
        for key in range(count):
            nation, region = self._rng.choice(names.NATION_REGIONS)
            suppliers.append((region, nation, "Supplier#%06d" % key))
        return tuple(suppliers)

    def _make_parts(self, count):
        parts = []
        for key in range(count):
            brand = self._rng.choice(names.BRANDS)
            part_type = self._rng.choice(names.PART_TYPES)
            parts.append((brand, part_type, "Part#%06d" % key))
        return tuple(parts)

    def _random_date(self):
        year = self._rng.choice(names.YEARS)
        month = self._rng.choice(names.MONTHS)
        day = self._rng.randint(1, names.days_in_month(year, month))
        return (str(year), "%04d-%02d" % (year, month),
                "%04d-%02d-%02d" % (year, month, day))

    def _extended_price(self):
        # TPC-D: extendedprice = quantity in [1, 50] times a retail price
        # around 900..2000 currency units.
        quantity = self._rng.randint(1, 50)
        retail = self._rng.uniform(900.0, 2000.0)
        return round(quantity * retail, 2)

    # ------------------------------------------------------------------
    # record generation
    # ------------------------------------------------------------------

    def _pick(self, pool):
        """Draw one entity: uniform at skew 0, Zipf-ish otherwise.

        The skewed draw maps a uniform sample through ``u^(1 + skew)``,
        concentrating mass on low pool indices with a long tail — a
        cheap, deterministic stand-in for a Zipf distribution.
        """
        if self.skew == 0.0:
            return self._rng.choice(pool)
        position = self._rng.random() ** (1.0 + self.skew)
        return pool[min(len(pool) - 1, int(position * len(pool)))]

    def record(self):
        """One fresh data record (a line item of the cube)."""
        return self.schema.record(
            (
                self._pick(self.customers),
                self._pick(self.suppliers),
                self._pick(self.parts),
                self._random_date(),
            ),
            (self._extended_price(),),
        )

    def records(self, count):
        """Generate ``count`` records lazily."""
        for _ in range(count):
            yield self.record()

    def generate(self, count):
        """Generate ``count`` records as a list."""
        return [self.record() for _ in range(count)]
