"""TPC-D domain vocabularies.

The literal value domains of the TPC Benchmark D specification (revision
1.3.1) that the paper's simplified schema (Fig. 8/9) draws from: regions,
nations with their region assignment, market segments, part brands and the
three-syllable part types.
"""

from __future__ import annotations

#: The five TPC-D regions.
REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

#: The 25 TPC-D nations, each mapped to its region.
NATION_REGIONS = (
    ("ALGERIA", "AFRICA"),
    ("ARGENTINA", "AMERICA"),
    ("BRAZIL", "AMERICA"),
    ("CANADA", "AMERICA"),
    ("EGYPT", "MIDDLE EAST"),
    ("ETHIOPIA", "AFRICA"),
    ("FRANCE", "EUROPE"),
    ("GERMANY", "EUROPE"),
    ("INDIA", "ASIA"),
    ("INDONESIA", "ASIA"),
    ("IRAN", "MIDDLE EAST"),
    ("IRAQ", "MIDDLE EAST"),
    ("JAPAN", "ASIA"),
    ("JORDAN", "MIDDLE EAST"),
    ("KENYA", "AFRICA"),
    ("MOROCCO", "AFRICA"),
    ("MOZAMBIQUE", "AFRICA"),
    ("PERU", "AMERICA"),
    ("CHINA", "ASIA"),
    ("ROMANIA", "EUROPE"),
    ("SAUDI ARABIA", "MIDDLE EAST"),
    ("VIETNAM", "ASIA"),
    ("RUSSIA", "EUROPE"),
    ("UNITED KINGDOM", "EUROPE"),
    ("UNITED STATES", "AMERICA"),
)

#: The five TPC-D market segments (repeated under every nation, Fig. 9).
MARKET_SEGMENTS = (
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
)

#: The 25 TPC-D part brands: Brand#MN with M, N in 1..5.
BRANDS = tuple(
    "Brand#%d%d" % (m, n) for m in range(1, 6) for n in range(1, 6)
)

#: TPC-D part-type syllables; a type is one word from each list.
TYPE_SYLLABLE_1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
TYPE_SYLLABLE_2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
TYPE_SYLLABLE_3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")

#: All 150 TPC-D part types.
PART_TYPES = tuple(
    "%s %s %s" % (s1, s2, s3)
    for s1 in TYPE_SYLLABLE_1
    for s2 in TYPE_SYLLABLE_2
    for s3 in TYPE_SYLLABLE_3
)

#: TPC-D order/ship dates span 1992-1998.
YEARS = tuple(range(1992, 1999))
MONTHS = tuple(range(1, 13))

_DAYS_IN_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def days_in_month(year, month):
    """Days of ``month`` in ``year`` (Gregorian, TPC-D date range)."""
    if month == 2 and year % 4 == 0 and (year % 100 != 0 or year % 400 == 0):
        return 29
    return _DAYS_IN_MONTH[month - 1]
