"""Flat insert files (§5.1 of the paper).

"The intended data cube is created by SQL select operations on the TPC-D
database.  The output of these operations is stored in a flatfile which
functions as the insert file for the DC-tree and for the two other index
structures."

The format is TPC-D ``.tbl``-style, pipe-delimited text, one record per
line, with a small self-describing header so a reader can rebuild the
cube schema (dimension labels are stored, IDs are reassigned on read —
concept hierarchies are *dynamic*, §3.1, so this loses nothing):

    #dcube 1
    #dimension Customer|Custkey|MktSegment|Nation|Region
    ...
    #measure ExtendedPrice
    EUROPE|GERMANY|BUILDING|Customer#000001|...|4200.0

Values are ordered per dimension from the highest functional attribute
down to the leaf, matching :meth:`CubeSchema.record`.
"""

from __future__ import annotations

from ..cube.schema import CubeSchema, Dimension, Measure
from ..errors import SchemaError, StorageError

#: Magic first line (with format version).
_MAGIC = "#dcube 1"
_DELIMITER = "|"
_ESCAPED = "\\u007c"


def _escape(label):
    return str(label).replace(_DELIMITER, _ESCAPED)


def _unescape(field):
    return field.replace(_ESCAPED, _DELIMITER)


def write_flatfile(path, schema, records):
    """Write ``records`` to ``path``; returns the number written."""
    count = 0
    with open(path, "w") as handle:
        handle.write(_MAGIC + "\n")
        for dimension in schema.dimensions:
            handle.write(
                "#dimension %s\n"
                % _DELIMITER.join(
                    [_escape(dimension.name)]
                    + [_escape(name) for name in dimension.level_names]
                )
            )
        for measure in schema.measures:
            handle.write("#measure %s\n" % _escape(measure.name))
        for record in records:
            fields = []
            for dim_index, path_ids in enumerate(record.paths):
                hierarchy = schema.hierarchy(dim_index)
                fields.extend(
                    _escape(hierarchy.label(v)) for v in path_ids
                )
            fields.extend("%r" % m for m in record.measures)
            handle.write(_DELIMITER.join(fields) + "\n")
            count += 1
    return count


def read_schema(path):
    """Read only the schema header of a flat file."""
    dimensions = []
    measures = []
    with open(path) as handle:
        first = handle.readline().rstrip("\n")
        if first != _MAGIC:
            raise StorageError(
                "%s is not a dcube flat file (bad magic %r)" % (path, first)
            )
        for line in handle:
            line = line.rstrip("\n")
            if line.startswith("#dimension "):
                fields = [
                    _unescape(f)
                    for f in line[len("#dimension "):].split(_DELIMITER)
                ]
                if len(fields) < 2:
                    raise StorageError("malformed dimension header: %r" % line)
                dimensions.append(Dimension(fields[0], tuple(fields[1:])))
            elif line.startswith("#measure "):
                measures.append(Measure(_unescape(line[len("#measure "):])))
            else:
                break
    if not dimensions or not measures:
        raise StorageError("flat file %s has an incomplete header" % path)
    return CubeSchema(dimensions, measures)


def read_flatfile(path, schema=None):
    """Read records from ``path``; returns ``(schema, records)``.

    When ``schema`` is given, the file's header must structurally match
    it and the records are inserted into *its* hierarchies (useful to
    feed several indexes over one shared schema); otherwise a fresh
    schema is built from the header.
    """
    file_schema = read_schema(path)
    if schema is None:
        schema = file_schema
    else:
        _check_compatible(schema, file_schema)
    n_fields = schema.n_flat_attributes + schema.n_measures
    records = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            fields = line.split(_DELIMITER)
            if len(fields) != n_fields:
                raise StorageError(
                    "%s:%d: expected %d fields, found %d"
                    % (path, line_number, n_fields, len(fields))
                )
            position = 0
            dimension_values = []
            for dimension in schema.dimensions:
                width = dimension.n_attributes
                dimension_values.append(
                    tuple(
                        _unescape(f)
                        for f in fields[position:position + width]
                    )
                )
                position += width
            try:
                measures = tuple(float(f) for f in fields[position:])
            except ValueError:
                raise StorageError(
                    "%s:%d: non-numeric measure value" % (path, line_number)
                ) from None
            records.append(schema.record(dimension_values, measures))
    return schema, records


def _check_compatible(schema, file_schema):
    if schema.n_dimensions != file_schema.n_dimensions:
        raise SchemaError(
            "flat file has %d dimensions, schema has %d"
            % (file_schema.n_dimensions, schema.n_dimensions)
        )
    for mine, theirs in zip(schema.dimensions, file_schema.dimensions):
        if mine.level_names != theirs.level_names:
            raise SchemaError(
                "dimension %r level mismatch: %r vs %r"
                % (mine.name, mine.level_names, theirs.level_names)
            )
    if schema.n_measures != file_schema.n_measures:
        raise SchemaError(
            "flat file has %d measures, schema has %d"
            % (file_schema.n_measures, schema.n_measures)
        )
