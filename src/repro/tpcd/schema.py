"""The test data cube of the paper (Figures 8 and 9).

Four dimensions with the following hierarchy schemata (leaf level first,
level numbers in brackets):

* Customer: Custkey [0] < MktSegment [1] < Nation [2] < Region [3]
* Supplier: Suppkey [0] < Nation [1] < Region [2]
* Part:     Partkey [0] < Type [1] < Brand [2]
* Time:     Day [0] < Month [1] < Year [2]

plus the measure *Extended Price* — 13 functional attributes overall,
which is exactly the dimensionality of the X-tree in Fig. 10.
"""

from __future__ import annotations

from ..cube.schema import CubeSchema, Dimension, Measure

#: Dimension indices in the TPC-D cube (schema order).
CUSTOMER, SUPPLIER, PART, TIME = range(4)


def make_tpcd_schema():
    """A fresh (empty) TPC-D cube schema; hierarchies fill dynamically."""
    return CubeSchema(
        dimensions=[
            Dimension(
                "Customer", ("Custkey", "MktSegment", "Nation", "Region")
            ),
            Dimension("Supplier", ("Suppkey", "Nation", "Region")),
            Dimension("Part", ("Partkey", "Type", "Brand")),
            Dimension("Time", ("Day", "Month", "Year")),
        ],
        measures=[Measure("ExtendedPrice")],
    )
