"""TPC-D-style substrate: schema of Fig. 8/9 and a deterministic generator."""

from .generator import TPCDGenerator
from .schema import CUSTOMER, PART, SUPPLIER, TIME, make_tpcd_schema

__all__ = [
    "CUSTOMER",
    "PART",
    "SUPPLIER",
    "TIME",
    "TPCDGenerator",
    "make_tpcd_schema",
]
