"""Sequential-scan baseline."""

from .table import FlatTable

__all__ = ["FlatTable"]
