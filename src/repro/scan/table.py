"""Sequential-scan baseline: a flat heap file of data records.

"The range query algorithm for the sequential search simply runs through
every existing data record and determines whether this data record is
contained in the range_mds or not" (§5.2).  Records are stored in fixed-
size pages so the scan's I/O is charged realistically (sequential page
reads through the shared tracker/buffer machinery).
"""

from __future__ import annotations

from ..cube.aggregation import StreamingAggregator
from ..errors import QueryError, RecordNotFoundError
from ..storage import page as page_mod
from ..storage.tracker import StorageTracker
from ..core import mds as mds_mod


class FlatTable:
    """An unindexed record store answering range queries by full scans."""

    def __init__(self, schema, tracker=None, storage_config=None):
        self.schema = schema
        self.hierarchies = tuple(d.hierarchy for d in schema.dimensions)
        if tracker is not None:
            self.tracker = tracker
        else:
            self.tracker = StorageTracker(storage_config)
        self._records = []
        self._record_bytes = page_mod.dc_record_bytes(
            schema.n_flat_attributes, schema.n_measures
        )
        self._records_per_page = max(
            1, self.tracker.config.page_size // self._record_bytes
        )
        self._base_page = self.tracker.new_page_id()

    def __len__(self):
        return len(self._records)

    def records(self):
        return iter(self._records)

    def insert(self, record):
        """Append one record (touches only the heap file's last page)."""
        self._records.append(record)
        last_page = (len(self._records) - 1) // self._records_per_page
        self.tracker.access_node((self._base_page, last_page))
        self.tracker.write_node((self._base_page, last_page))
        self.tracker.cpu(1)

    def insert_batch(self, records):
        """Append many records, writing each touched heap page once.

        Accesses mirror serial :meth:`insert` exactly (one per record on
        the then-last page), but the write-backs coalesce: a page filled
        by k records of the batch is written once instead of k times.
        Returns the number of records inserted.
        """
        records = list(records)
        touched = {}
        for record in records:
            self._records.append(record)
            last_page = (len(self._records) - 1) // self._records_per_page
            self.tracker.access_node((self._base_page, last_page))
            self.tracker.cpu(1)
            touched[last_page] = None
        for page in touched:
            self.tracker.write_node((self._base_page, page))
        return len(records)

    def delete(self, record):
        """Remove one record by value (scans for it, like a real heap)."""
        for index, existing in enumerate(self._records):
            self._charge_page(index)
            if existing == record:
                del self._records[index]
                self.tracker.write_node(
                    (self._base_page, index // self._records_per_page)
                )
                return
        raise RecordNotFoundError("record not found: %r" % (record,))

    def byte_size(self):
        """Approximate on-disk footprint in bytes."""
        return len(self._records) * self._record_bytes

    def page_count(self):
        return page_mod.pages_for(
            self.byte_size(), self.tracker.config.page_size
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def range_query(self, range_mds, op="sum", measure=0):
        """Aggregate over the records covered by ``range_mds``."""
        measure_index = self._measure_index(measure)
        aggregator = StreamingAggregator(op, measure_index)
        for record in self._scan(range_mds):
            aggregator.add_record(record)
        return aggregator.result()

    def range_count(self, range_mds):
        return self.range_query(range_mds, op="count")

    def range_records(self, range_mds):
        return list(self._scan(range_mds))

    def _scan(self, range_mds):
        if range_mds.n_dimensions != self.schema.n_dimensions:
            raise QueryError(
                "query has %d dimensions, cube has %d"
                % (range_mds.n_dimensions, self.schema.n_dimensions)
            )
        n_dims = self.schema.n_dimensions
        for index, record in enumerate(self._records):
            self._charge_page(index)
            self.tracker.cpu(n_dims)
            if mds_mod.covers_record(range_mds, record, self.hierarchies):
                yield record

    def _charge_page(self, record_index):
        if record_index % self._records_per_page == 0:
            self.tracker.access_node(
                (self._base_page, record_index // self._records_per_page)
            )

    def _measure_index(self, measure):
        if isinstance(measure, str):
            return self.schema.measure_index(measure)
        if not 0 <= measure < self.schema.n_measures:
            raise QueryError("measure index %r out of range" % (measure,))
        return measure
