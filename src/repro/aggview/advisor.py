"""View selection: which subcube(s) to materialize for a workload.

Reference [7] of the paper (Harinarayan, Rajaraman, Ullman:
*Implementing Data Cubes Efficiently*) selects a near-optimal subset of
the cube lattice to materialize under a space budget.  This module
implements that idea for the level-combination lattice used by
:class:`~repro.aggview.view.MaterializedAggregateView`:

* a view candidate is one relevant level per dimension;
* it *covers* a query phrased at (or above) its levels in every
  dimension;
* its cost is its (estimated) cell count.

:func:`recommend_view` scores every candidate against a workload sample
and returns the best one under the budget; :func:`recommend_views` runs
the classic greedy set-cover loop for ``k`` views.
"""

from __future__ import annotations

import itertools

from ..errors import QueryError


class ViewRecommendation:
    """One selected view candidate with its scores."""

    __slots__ = ("levels", "coverage", "estimated_cells", "benefit")

    def __init__(self, levels, coverage, estimated_cells, benefit):
        self.levels = tuple(levels)
        self.coverage = coverage
        self.estimated_cells = estimated_cells
        self.benefit = benefit

    def __repr__(self):
        return (
            "ViewRecommendation(levels=%r, coverage=%.0f%%, cells~%d, "
            "benefit=%g)"
            % (list(self.levels), self.coverage * 100,
               self.estimated_cells, self.benefit)
        )


def candidate_levels(schema):
    """All level combinations of the lattice (one level per dimension).

    Levels run from each dimension's finest functional attribute up to
    (and including) ALL — rolling a dimension up entirely is a valid
    materialization choice.
    """
    per_dimension = [
        range(dim.hierarchy.top_level + 1) for dim in schema.dimensions
    ]
    return itertools.product(*per_dimension)


def covers(levels, query_mds):
    """Does a view at ``levels`` answer ``query_mds``?"""
    return all(
        query_mds.level(dim) >= level for dim, level in enumerate(levels)
    )


def estimate_cells(schema, levels, n_records=None, records=None):
    """Cell count of a view at ``levels``.

    With ``records`` given, the *exact* number of distinct cell keys is
    counted (one pass).  Otherwise the product of the per-level value
    counts known to the hierarchies, capped by ``n_records`` (a view can
    never have more cells than source records).
    """
    if records is not None:
        keys = set()
        for record in records:
            keys.add(
                tuple(
                    record.value_at_level(dim, level)
                    if level < schema.dimensions[dim].hierarchy.top_level
                    else -1
                    for dim, level in enumerate(levels)
                )
            )
        return len(keys)
    product = 1
    for dim, level in enumerate(levels):
        hierarchy = schema.dimensions[dim].hierarchy
        if level >= hierarchy.top_level:
            continue
        product *= max(1, hierarchy.n_values_at_level(level))
    if n_records is not None:
        product = min(product, n_records)
    return product


def _base_cost(schema, n_records, records=None):
    """Per-query cost of answering from the raw cube (cells scanned)."""
    if records is not None:
        return len(records)
    finest = tuple(0 for _ in schema.dimensions)
    return estimate_cells(schema, finest, n_records)


def _benefit(covered, cells, base_cost):
    """HRU-style benefit: per covered query, the saving over the base.

    A view as large as the base cube (e.g. the leaf-level view, which is
    just a copy of the data) saves nothing — that is what stops the
    advisor from "recommending" the raw table whenever it fits the
    budget.
    """
    return covered * max(0, base_cost - cells)


def recommend_view(schema, workload, cell_budget, n_records=None,
                   records=None):
    """The best single view for ``workload`` under ``cell_budget``.

    ``workload`` is a sequence of :class:`RangeQuery` (or anything with a
    ``.mds``).  Scoring follows [7]: maximize the total benefit —
    covered queries × (base cost − view cells) — with ties towards
    higher coverage, then fewer cells.  Pass ``records`` (the cube's
    contents) for exact cell counts; the theoretical estimate otherwise.
    Returns a :class:`ViewRecommendation`.
    """
    queries = [getattr(q, "mds", q) for q in workload]
    if not queries:
        raise QueryError("cannot recommend a view for an empty workload")
    if records is not None:
        records = list(records)
    base_cost = _base_cost(schema, n_records, records)
    best = None
    for levels in candidate_levels(schema):
        cells = estimate_cells(schema, levels, n_records, records)
        if cells > cell_budget:
            continue
        covered = sum(1 for mds in queries if covers(levels, mds))
        coverage = covered / len(queries)
        benefit = _benefit(covered, cells, base_cost)
        key = (benefit, coverage, -cells, sum(levels))
        if best is None or key > best[0]:
            best = (
                key, ViewRecommendation(levels, coverage, cells, benefit)
            )
    if best is None:
        raise QueryError(
            "no view fits the cell budget %d" % cell_budget
        )
    return best[1]


def recommend_views(schema, workload, cell_budget, k, n_records=None,
                    records=None):
    """Greedy selection of up to ``k`` views ([7]'s greedy, simplified).

    Each round picks the candidate with the largest *marginal* benefit
    over the not-yet-covered queries; stops early when no candidate
    still helps.  The budget applies per view (the per-view footprint
    bound).  Pass ``records`` for exact cell counts.
    """
    queries = [getattr(q, "mds", q) for q in workload]
    if not queries:
        raise QueryError("cannot recommend views for an empty workload")
    if records is not None:
        records = list(records)
        cell_cache = {}

        def cells_of(levels):
            if levels not in cell_cache:
                cell_cache[levels] = estimate_cells(
                    schema, levels, n_records, records
                )
            return cell_cache[levels]
    else:
        def cells_of(levels):
            return estimate_cells(schema, levels, n_records)
    base_cost = _base_cost(schema, n_records, records)
    uncovered = list(range(len(queries)))
    chosen = []
    for _round in range(k):
        if not uncovered:
            break
        best = None
        for levels in candidate_levels(schema):
            cells = cells_of(levels)
            if cells > cell_budget:
                continue
            gained = sum(
                1 for i in uncovered if covers(levels, queries[i])
            )
            benefit = _benefit(gained, cells, base_cost)
            key = (benefit, gained, -cells, sum(levels))
            if best is None or key > best[0]:
                best = (key, levels, cells, gained, benefit)
        if best is None or best[4] <= 0:
            break
        _key, levels, cells, gained, benefit = best
        chosen.append(
            ViewRecommendation(
                levels, gained / len(queries), cells, benefit
            )
        )
        uncovered = [
            i for i in uncovered if not covers(levels, queries[i])
        ]
    return chosen
