"""Static materialized aggregate views — the related-work counterpoint.

Section 1/2 of the paper: "it is a common approach to materialize the
results of many of the relevant queries in order to speed-up query
processing.  This approach, however, fails in a dynamic environment where
the queries are not known in advance [...] The proposed approach is
static, i.e. it is useful only for the initial load of the cube but does
not support incremental changes."

:class:`MaterializedAggregateView` implements that classic approach
(Harinarayan/Rajaraman/Ullman-style subcube materialization, reference
[7]): one aggregate cell per combination of the chosen per-dimension
levels.  It is very fast for the queries it covers, but

* it only answers queries phrased at (or above) its granularity —
  :meth:`can_answer` is False otherwise, and
* it is *static*: any warehouse update marks it stale and it must be
  rebuilt from the full record stream.

The `aggview` bench measures both limitations against the DC-tree.
"""

from __future__ import annotations

from ..cube.aggregation import AggregateVector, StreamingAggregator
from ..errors import QueryError, StorageError
from ..storage import page as page_mod
from ..storage.tracker import StorageTracker


class StaleViewError(StorageError):
    """The view was queried after updates invalidated it."""


class UnanswerableQueryError(QueryError):
    """The query is below the view's granularity."""


class MaterializedAggregateView:
    """A precomputed aggregate over one fixed group-by of the cube.

    Parameters
    ----------
    schema:
        The cube schema.
    levels:
        One concept-hierarchy level per dimension — the view's
        granularity (e.g. Nation, Region, Brand, Month for the TPC-D
        cube).  Use a dimension's ``top_level`` to roll it up entirely.
    """

    def __init__(self, schema, levels, tracker=None, storage_config=None):
        if len(levels) != schema.n_dimensions:
            raise QueryError(
                "view needs one level per dimension: got %d for %d dims"
                % (len(levels), schema.n_dimensions)
            )
        for dim, level in enumerate(levels):
            top = schema.dimensions[dim].hierarchy.top_level
            if not 0 <= level <= top:
                raise QueryError(
                    "level %r out of range for dimension %r"
                    % (level, schema.dimensions[dim].name)
                )
        self.schema = schema
        self.levels = tuple(levels)
        self.hierarchies = tuple(d.hierarchy for d in schema.dimensions)
        if tracker is not None:
            self.tracker = tracker
        else:
            self.tracker = StorageTracker(storage_config)
        self._cells = {}
        self._stale = False
        self._built = False
        self._n_source_records = 0
        self._base_page = self.tracker.new_page_id()

    # ------------------------------------------------------------------
    # building (the static part)
    # ------------------------------------------------------------------

    def build(self, records):
        """(Re)compute every cell from the full record stream.

        This is the bulk load the paper's related work performs at cube
        load time; its cost is what `aggview` reports as the price of a
        single dynamic update.
        """
        self._cells = {}
        count = 0
        for record in records:
            key = self._cell_key(record)
            cell = self._cells.get(key)
            if cell is None:
                cell = AggregateVector(self.schema.n_measures)
                self._cells[key] = cell
            cell.add_record(record)
            count += 1
            self.tracker.cpu(self.schema.n_dimensions)
        self._n_source_records = count
        self._stale = False
        self._built = True
        # Writing the materialized cells out once.
        self.tracker.write_node(self._base_page, self.page_count())

    def mark_stale(self):
        """Record that the underlying warehouse changed (static design)."""
        self._stale = True

    # ------------------------------------------------------------------
    # incremental maintenance (extension beyond [7]'s static design)
    # ------------------------------------------------------------------

    def apply_insert(self, record):
        """Fold one inserted record into its cell — no rebuild needed.

        SUM/COUNT/MIN/MAX are all insert-incremental, so the view stays
        exact and fresh.  Only valid on a built, non-stale view.
        """
        self._check_maintainable()
        key = self._cell_key(record)
        cell = self._cells.get(key)
        if cell is None:
            cell = AggregateVector(self.schema.n_measures)
            self._cells[key] = cell
        cell.add_record(record)
        self._n_source_records += 1
        self.tracker.cpu(self.schema.n_dimensions)
        self.tracker.write_node(self._base_page)

    def apply_delete(self, record):
        """Subtract one deleted record from its cell.

        SUM and COUNT stay exact; MIN/MAX are only semi-invertible — when
        the removed value was a cell's extremum the view cannot repair it
        locally and marks itself stale (the caller rebuilds before the
        next MIN/MAX-accurate use).  Returns True when the view stayed
        fresh.
        """
        self._check_maintainable()
        key = self._cell_key(record)
        cell = self._cells.get(key)
        if cell is None:
            raise StorageError(
                "delete of a record whose cell is not in the view: %r"
                % (record,)
            )
        extrema_stale = cell.subtract_record(record)
        if cell.count == 0:
            del self._cells[key]
            extrema_stale = False
        self._n_source_records -= 1
        self.tracker.cpu(self.schema.n_dimensions)
        self.tracker.write_node(self._base_page)
        if extrema_stale:
            self._stale = True
            return False
        return True

    def _check_maintainable(self):
        if not self._built:
            raise StaleViewError("view was never built")
        if self._stale:
            raise StaleViewError(
                "view is stale: rebuild before applying further deltas"
            )

    @property
    def is_stale(self):
        return self._stale

    @property
    def n_cells(self):
        return len(self._cells)

    @property
    def n_source_records(self):
        return self._n_source_records

    def _cell_key(self, record):
        key = []
        for dim, level in enumerate(self.levels):
            hierarchy = self.hierarchies[dim]
            if level >= hierarchy.top_level:
                key.append(hierarchy.all_id)
            else:
                key.append(record.value_at_level(dim, level))
        return tuple(key)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    def can_answer(self, range_mds):
        """True when every query dimension is at/above the view level.

        A query below the view's granularity would need the detail the
        materialization rolled away — the paper's "queries not known in
        advance" failure mode.
        """
        for dim in range(self.schema.n_dimensions):
            if range_mds.level(dim) < self.levels[dim]:
                return False
        return True

    def range_query(self, range_mds, op="sum", measure=0):
        """Aggregate over the cells inside ``range_mds``.

        Raises :class:`UnanswerableQueryError` below the view's
        granularity and :class:`StaleViewError` when updates have not
        been folded in (callers must :meth:`build` again first).
        """
        if not self._built:
            raise StaleViewError("view was never built")
        if self._stale:
            raise StaleViewError(
                "view is stale: the warehouse changed after the last build"
            )
        if range_mds.n_dimensions != self.schema.n_dimensions:
            raise QueryError(
                "query has %d dimensions, cube has %d"
                % (range_mds.n_dimensions, self.schema.n_dimensions)
            )
        if not self.can_answer(range_mds):
            raise UnanswerableQueryError(
                "query level(s) %r below view granularity %r"
                % (range_mds.levels, self.levels)
            )
        measure_index = self._measure_index(measure)
        aggregator = StreamingAggregator(op, measure_index)
        self.tracker.access_node(self._base_page, self.page_count())
        for key, cell in self._cells.items():
            self.tracker.cpu(self.schema.n_dimensions)
            if self._cell_in_range(key, range_mds):
                aggregator.add_vector(cell)
        return aggregator.result()

    def _cell_in_range(self, key, range_mds):
        for dim, value in enumerate(key):
            level = range_mds.level(dim)
            hierarchy = self.hierarchies[dim]
            if level >= hierarchy.top_level:
                continue
            if hierarchy.ancestor(value, level) not in range_mds.value_set(
                dim
            ):
                return False
        return True

    def _measure_index(self, measure):
        if isinstance(measure, str):
            return self.schema.measure_index(measure)
        if not 0 <= measure < self.schema.n_measures:
            raise QueryError("measure index %r out of range" % (measure,))
        return measure

    # ------------------------------------------------------------------
    # footprint
    # ------------------------------------------------------------------

    def byte_size(self):
        """Approximate on-disk size of the materialized cells."""
        key_bytes = self.schema.n_dimensions * page_mod.ID_BYTES
        cell_bytes = self.schema.n_measures * page_mod.SUMMARY_BYTES
        return len(self._cells) * (key_bytes + cell_bytes)

    def page_count(self):
        return page_mod.pages_for(
            self.byte_size(), self.tracker.config.page_size
        )

    def __repr__(self):
        return (
            "MaterializedAggregateView(levels=%r, cells=%d, stale=%r)"
            % (list(self.levels), len(self._cells), self._stale)
        )
