"""Static materialized aggregate views, view selection, hybrid routing."""

from .advisor import (
    ViewRecommendation,
    candidate_levels,
    covers,
    estimate_cells,
    recommend_view,
    recommend_views,
)
from .hybrid import HybridWarehouse, RouterStats
from .view import (
    MaterializedAggregateView,
    StaleViewError,
    UnanswerableQueryError,
)

__all__ = [
    "HybridWarehouse",
    "MaterializedAggregateView",
    "RouterStats",
    "StaleViewError",
    "UnanswerableQueryError",
    "ViewRecommendation",
    "candidate_levels",
    "covers",
    "estimate_cells",
    "recommend_view",
    "recommend_views",
]
