"""Hybrid warehouse: materialized views in front of a dynamic DC-tree.

The practical synthesis of the paper's §1: keep the fully dynamic
DC-tree as the always-correct base, and route queries through
materialized aggregate views where one covers them.  Updates go to the
tree immediately (no staleness for correctness) and merely *invalidate*
the views; stale views are rebuilt lazily from the tree's records the
next time they would be used — or eagerly via :meth:`refresh`.

Every answer is exact: a stale or non-covering view is simply bypassed.
"""

from __future__ import annotations

from ..errors import SchemaError
from ..workload.queries import query_from_labels
from .view import MaterializedAggregateView


class RouterStats:
    """Where the hybrid answered its queries, and what refreshes cost."""

    def __init__(self):
        self.via_view = 0
        self.via_tree = 0
        self.refreshes = 0

    @property
    def total(self):
        return self.via_view + self.via_tree

    @property
    def view_fraction(self):
        return self.via_view / self.total if self.total else 0.0

    def __repr__(self):
        return "RouterStats(view=%d, tree=%d, refreshes=%d)" % (
            self.via_view, self.via_tree, self.refreshes,
        )


class HybridWarehouse:
    """A DC-tree warehouse fronted by zero or more aggregate views.

    Parameters
    ----------
    warehouse:
        The base :class:`Warehouse`; must use the dc-tree backend (the
        views are rebuilt from its record iterator).
    view_levels:
        Iterable of per-dimension level tuples, one per view (e.g. the
        output of :func:`repro.aggview.advisor.recommend_views`).
    lazy_refresh:
        When True (default) a stale view that *would* cover a query is
        rebuilt on the spot and then used; when False stale views are
        bypassed until :meth:`refresh` is called.
    incremental:
        When True (default) updates are folded into the views cell-wise
        (:meth:`MaterializedAggregateView.apply_insert` /
        ``apply_delete``) so they stay fresh without rebuilds; a delete
        that invalidates a cell's MIN/MAX falls back to staleness.  When
        False every update marks all views stale ([7]'s purely static
        behaviour).
    """

    def __init__(self, warehouse, view_levels=(), lazy_refresh=True,
                 incremental=True):
        if warehouse.backend != "dc-tree":
            raise SchemaError(
                "HybridWarehouse needs a dc-tree base, got %r"
                % warehouse.backend
            )
        self.warehouse = warehouse
        self.lazy_refresh = lazy_refresh
        self.incremental = incremental
        self.views = [
            MaterializedAggregateView(warehouse.schema, levels)
            for levels in view_levels
        ]
        self.stats = RouterStats()
        for view in self.views:
            self._rebuild(view)

    @property
    def schema(self):
        return self.warehouse.schema

    def __len__(self):
        return len(self.warehouse)

    # ------------------------------------------------------------------
    # updates: tree first, views invalidated
    # ------------------------------------------------------------------

    def insert(self, dimension_values, measures):
        record = self.warehouse.insert(dimension_values, measures)
        self._propagate_insert(record)
        return record

    def insert_record(self, record):
        self.warehouse.insert_record(record)
        self._propagate_insert(record)
        return record

    def delete(self, record):
        self.warehouse.delete(record)
        self._propagate_delete(record)

    def _propagate_insert(self, record):
        for view in self.views:
            if self.incremental and not view.is_stale:
                view.apply_insert(record)
            else:
                view.mark_stale()

    def _propagate_delete(self, record):
        for view in self.views:
            if self.incremental and not view.is_stale:
                view.apply_delete(record)  # may self-mark stale (min/max)
            else:
                view.mark_stale()

    # ------------------------------------------------------------------
    # refresh
    # ------------------------------------------------------------------

    def refresh(self):
        """Rebuild every stale view now; returns how many were rebuilt."""
        rebuilt = 0
        for view in self.views:
            if view.is_stale:
                self._rebuild(view)
                rebuilt += 1
        return rebuilt

    def _rebuild(self, view):
        view.build(list(self.warehouse.index.records()))
        self.stats.refreshes += 1

    # ------------------------------------------------------------------
    # queries: route through the cheapest exact path
    # ------------------------------------------------------------------

    def query(self, op="sum", measure=0, where=None):
        """Label-based aggregate, answered by a covering view when one is
        available (and fresh, or lazily refreshable); the DC-tree
        otherwise."""
        range_query = query_from_labels(self.schema, where or {})
        return self.execute(range_query, op=op, measure=measure)

    def execute(self, range_query, op="sum", measure=0):
        view = self._route(range_query.mds)
        if view is not None:
            self.stats.via_view += 1
            return view.range_query(range_query.mds, op=op, measure=measure)
        self.stats.via_tree += 1
        return self.warehouse.execute(range_query, op=op, measure=measure)

    def _route(self, range_mds):
        for view in self.views:
            if not view.can_answer(range_mds):
                continue
            if view.is_stale:
                if not self.lazy_refresh:
                    continue
                self._rebuild(view)
            return view
        return None

    def __repr__(self):
        return "HybridWarehouse(records=%d, views=%d, %r)" % (
            len(self), len(self.views), self.stats,
        )
