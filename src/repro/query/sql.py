"""A small SQL-ish query language for warehouses.

Analysts should not have to build ``where`` dicts by hand; this module
parses the fragment of SQL that maps onto the cube's query model:

    SELECT SUM(ExtendedPrice)
    WHERE Customer.Region IN ('EUROPE', 'ASIA') AND Time.Year = '1996'
    GROUP BY Part.Brand

* aggregate: SUM / COUNT / AVG / MIN / MAX; ``COUNT(*)`` counts cells;
* conditions: ``Dimension.Level IN (v, ...)`` or ``Dimension.Level = v``,
  conjoined with AND (ranges over concept-hierarchy values — exactly the
  range-MDS semantics of the paper);
* optional ``GROUP BY Dimension.Level`` (one roll-up dimension).

Keywords are case-insensitive; identifiers and values are
case-sensitive.  Values may be single- or double-quoted (required when
they contain spaces or punctuation).

``parse`` returns a :class:`QuerySpec`; ``execute`` runs one against a
:class:`~repro.warehouse.Warehouse` (or anything with the same ``query``
/ ``group_by`` methods, e.g. a
:class:`~repro.aggview.hybrid.HybridWarehouse` for non-grouping
queries).
"""

from __future__ import annotations

from ..errors import QueryError

_AGGREGATES = ("sum", "count", "avg", "min", "max")
_KEYWORDS = {"select", "where", "and", "in", "group", "by"}

_PUNCTUATION = {"(", ")", ",", ".", "="}


class QuerySpec:
    """A parsed query, ready to run against any warehouse."""

    __slots__ = ("op", "measure", "where", "group_by")

    def __init__(self, op, measure, where, group_by):
        self.op = op
        self.measure = measure
        self.where = where
        self.group_by = group_by

    def __repr__(self):
        return "QuerySpec(op=%r, measure=%r, where=%r, group_by=%r)" % (
            self.op, self.measure, self.where, self.group_by,
        )


# ----------------------------------------------------------------------
# tokenizer
# ----------------------------------------------------------------------


def _tokenize(text):
    """Split ``text`` into (kind, value) tokens.

    Kinds: ``word`` (identifier/keyword/number), ``string`` (was quoted)
    and each punctuation character as its own kind.
    """
    tokens = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch in _PUNCTUATION:
            tokens.append((ch, ch))
            i += 1
        elif ch in ("'", '"'):
            end = text.find(ch, i + 1)
            if end < 0:
                raise QueryError("unterminated string at position %d" % i)
            tokens.append(("string", text[i + 1:end]))
            i = end + 1
        elif ch == "*":
            tokens.append(("word", "*"))
            i += 1
        else:
            start = i
            while i < n and not text[i].isspace() \
                    and text[i] not in _PUNCTUATION \
                    and text[i] not in ("'", '"'):
                i += 1
            tokens.append(("word", text[start:i]))
    return tokens


class _Parser:
    """Recursive-descent over the token list."""

    def __init__(self, tokens, text):
        self.tokens = tokens
        self.text = text
        self.position = 0

    # -- primitives --------------------------------------------------------

    def _peek(self):
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return (None, None)

    def _next(self):
        token = self._peek()
        if token[0] is None:
            raise QueryError("unexpected end of query: %r" % self.text)
        self.position += 1
        return token

    def _expect(self, kind):
        token = self._next()
        if token[0] != kind:
            raise QueryError(
                "expected %r, found %r in %r" % (kind, token[1], self.text)
            )
        return token[1]

    def _keyword(self, word):
        kind, value = self._next()
        if kind != "word" or value.lower() != word:
            raise QueryError(
                "expected %s, found %r in %r"
                % (word.upper(), value, self.text)
            )

    def _at_keyword(self, word):
        kind, value = self._peek()
        return kind == "word" and value.lower() == word

    def _identifier(self):
        kind, value = self._next()
        if kind == "string":
            return value
        if kind != "word" or value.lower() in _KEYWORDS:
            raise QueryError(
                "expected an identifier, found %r in %r"
                % (value, self.text)
            )
        return value

    def _value(self):
        kind, value = self._next()
        if kind not in ("word", "string") or (
            kind == "word" and value.lower() in _KEYWORDS
        ):
            raise QueryError(
                "expected a value, found %r in %r" % (value, self.text)
            )
        return value

    # -- grammar -----------------------------------------------------------

    def parse(self):
        self._keyword("select")
        op = self._identifier().lower()
        if op not in _AGGREGATES:
            raise QueryError(
                "unknown aggregate %r (one of %s)"
                % (op, ", ".join(a.upper() for a in _AGGREGATES))
            )
        self._expect("(")
        measure = self._value()
        self._expect(")")
        if measure == "*":
            if op != "count":
                raise QueryError("'*' is only valid in COUNT(*)")
            measure = None

        where = {}
        if self._at_keyword("where"):
            self._next()
            self._condition(where)
            while self._at_keyword("and"):
                self._next()
                self._condition(where)

        group_by = None
        if self._at_keyword("group"):
            self._next()
            self._keyword("by")
            group_by = self._dimref()

        kind, value = self._peek()
        if kind is not None:
            raise QueryError(
                "unexpected trailing %r in %r" % (value, self.text)
            )
        return QuerySpec(op, measure, where, group_by)

    def _dimref(self):
        dimension = self._identifier()
        self._expect(".")
        level = self._identifier()
        return dimension, level

    def _condition(self, where):
        dimension, level = self._dimref()
        if dimension in where:
            raise QueryError(
                "dimension %r constrained twice (combine the values into "
                "one IN list)" % dimension
            )
        kind, _value = self._peek()
        if self._at_keyword("in"):
            self._next()
            self._expect("(")
            values = [self._value()]
            while self._peek()[0] == ",":
                self._next()
                values.append(self._value())
            self._expect(")")
        elif kind == "=":
            self._next()
            values = [self._value()]
        else:
            raise QueryError(
                "expected IN (...) or = after %s.%s in %r"
                % (dimension, level, self.text)
            )
        where[dimension] = (level, values)


def parse(text):
    """Parse one query; returns a :class:`QuerySpec`."""
    tokens = _tokenize(text)
    if not tokens:
        raise QueryError("empty query")
    return _Parser(tokens, text).parse()


def execute(warehouse, text, explain=False):
    """Parse and run ``text`` against ``warehouse``.

    Returns a scalar for plain aggregates or a ``{label: value}`` dict
    for GROUP BY queries.  ``COUNT(*)`` counts cells (measure 0's count).
    With ``explain=True`` (dc-tree warehouses) the result comes back as
    an :class:`~repro.obs.ExplainResult` with the query's profile.
    """
    spec = parse(text)
    measure = spec.measure if spec.measure is not None else 0
    # Forwarded only when asked: non-Warehouse targets (e.g. the hybrid
    # aggview facade) need not grow an ``explain`` parameter.
    extra = {"explain": True} if explain else {}
    if spec.group_by is not None:
        dimension, level = spec.group_by
        return warehouse.group_by(
            dimension, level, op=spec.op, measure=measure, where=spec.where,
            **extra,
        )
    return warehouse.query(spec.op, measure=measure, where=spec.where,
                           **extra)
