"""SQL-ish query language over warehouses."""

from .sql import QuerySpec, execute, parse

__all__ = ["QuerySpec", "execute", "parse"]
