"""Command-line entry point: ``python -m repro.bench <experiment ...>``.

Experiments: fig11a fig11b fig12a fig12b fig12c fig12d fig13
             abl-split abl-measures abl-capacity abl-bulkload abl-order
             motivation aggview verdict all

Options:
  --quick         small sizes/query counts (seconds instead of minutes)
  --sizes A,B,C   checkpoint record counts (default 10000,20000,30000)
  --queries N     queries per measurement (default 100)
  --seed N        RNG seed (default 0)

``python -m repro.bench regression [--smoke ...]`` is the hot-path
performance-regression benchmark; it has its own options (see
``repro.bench.regression``).
"""

from __future__ import annotations

import argparse
import sys

from . import (
    ablations,
    aggview_bench,
    bulkload_bench,
    fig11,
    fig12,
    fig13,
    motivation,
    verdict,
    workload_bench,
)

_QUICK_SIZES = (1000, 2000, 4000)
_QUICK_QUERIES = 20

EXPERIMENTS = (
    "fig11a", "fig11b", "fig12a", "fig12b", "fig12c", "fig12d", "fig13",
    "abl-split", "abl-measures", "abl-capacity", "abl-bulkload",
    "motivation", "aggview", "verdict", "abl-order",
)


def main(argv=None):
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "regression":
        from . import regression
        return regression.main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=EXPERIMENTS + ("all",),
        help="experiment ids (or 'all')",
    )
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for a fast sanity run")
    parser.add_argument("--sizes", type=_parse_sizes, default=None,
                        help="comma-separated checkpoint sizes")
    parser.add_argument("--queries", type=int, default=None,
                        help="queries per measurement")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    experiments = list(args.experiments)
    if "all" in experiments:
        experiments = list(EXPERIMENTS)

    sweep_kwargs = {"seed": args.seed}
    if args.quick:
        sweep_kwargs["sizes"] = _QUICK_SIZES
        sweep_kwargs["n_queries"] = _QUICK_QUERIES
    if args.sizes is not None:
        sweep_kwargs["sizes"] = args.sizes
    if args.queries is not None:
        sweep_kwargs["n_queries"] = args.queries
    def _progress(message):
        print("... %s" % message, file=sys.stderr)

    sweep_kwargs["progress"] = _progress

    ablation_kwargs = {"seed": args.seed}
    if args.quick:
        ablation_kwargs["n_records"] = 2000
        ablation_kwargs["n_queries"] = 10

    for experiment in experiments:
        print(_run(experiment, sweep_kwargs, ablation_kwargs))
        print()
    return 0


def _run(experiment, sweep_kwargs, ablation_kwargs):
    if experiment == "fig11a":
        return fig11.report_fig11a(**sweep_kwargs)
    if experiment == "fig11b":
        return fig11.report_fig11b(**sweep_kwargs)
    if experiment.startswith("fig12"):
        return fig12.report_fig12(experiment[-1], **sweep_kwargs)
    if experiment == "fig13":
        return fig13.report_fig13(**sweep_kwargs)
    if experiment == "abl-split":
        return ablations.report_ablation_split(**ablation_kwargs)
    if experiment == "abl-measures":
        return ablations.report_ablation_measures(**ablation_kwargs)
    if experiment == "abl-capacity":
        return ablations.report_ablation_capacity(**ablation_kwargs)
    if experiment == "motivation":
        kwargs = {"seed": ablation_kwargs.get("seed", 0)}
        if "n_records" in ablation_kwargs:  # --quick
            kwargs["n_updates"] = ablation_kwargs["n_records"]
        return motivation.report_motivation(**kwargs)
    if experiment == "aggview":
        return aggview_bench.report_aggview(**ablation_kwargs)
    if experiment == "abl-bulkload":
        return bulkload_bench.report_bulkload(**ablation_kwargs)
    if experiment == "verdict":
        return verdict.report_verdict(**sweep_kwargs)
    if experiment == "abl-order":
        return workload_bench.report_insert_order(**ablation_kwargs)
    raise ValueError("unknown experiment %r" % experiment)


def _parse_sizes(text):
    return tuple(int(part) for part in text.split(",") if part)


if __name__ == "__main__":
    sys.exit(main())
