"""The reproduction scorecard: check every shape claim programmatically.

EXPERIMENTS.md argues shapes, not absolute numbers; this module turns
each claim into a predicate over a :class:`SweepResult` and prints a
PASS/FAIL table — the whole reproduction judged in one command:

    python -m repro.bench verdict

The claims are calibrated for the paper's scale (the default
10k/20k/30k sweep).  At toy scales some genuinely do not hold — e.g. a
sequential scan beats any index on a few hundred records, and the
supernode accretion of Fig. 13 needs enough records to show — so a FAIL
on a ``--quick`` run is a statement about the scale, not the code.
"""

from __future__ import annotations

from .fig11 import fig11a_rows, fig11b_rows
from .fig12 import PANELS, fig12_rows
from .fig13 import fig13_rows
from .harness import cached_sweep
from .reporting import format_table


class Claim:
    """One checkable shape claim."""

    __slots__ = ("artifact", "statement", "passed", "detail")

    def __init__(self, artifact, statement, passed, detail):
        self.artifact = artifact
        self.statement = statement
        self.passed = passed
        self.detail = detail

    def row(self):
        return (
            self.artifact,
            self.statement,
            "PASS" if self.passed else "FAIL",
            self.detail,
        )


def evaluate_claims(sweep):
    """All shape claims of the paper's figures against one sweep."""
    claims = []
    claims.extend(_fig11_claims(sweep))
    claims.extend(_fig12_claims(sweep))
    claims.extend(_fig13_claims(sweep))
    return claims


def _fig11_claims(sweep):
    rows = fig11a_rows(sweep)
    dc = [row[3] for row in rows]  # simulated cumulative seconds
    xt = [row[4] for row in rows]
    yield_claims = []
    yield_claims.append(Claim(
        "fig11a",
        "X-tree inserts cheaper than DC-tree (sim)",
        xt[-1] < dc[-1],
        "%.0f vs %.0f s at n=%d" % (xt[-1], dc[-1], rows[-1][0]),
    ))
    yield_claims.append(Claim(
        "fig11a",
        "insertion cost grows with the data set for both trees",
        all(later > earlier for earlier, later in zip(dc, dc[1:]))
        and all(later > earlier for earlier, later in zip(xt, xt[1:])),
        "DC %s / X %s" % (
            "increasing" if dc == sorted(dc) else "NOT increasing",
            "increasing" if xt == sorted(xt) else "NOT increasing",
        ),
    ))
    per_record = [row[1] for row in fig11b_rows(sweep)]
    yield_claims.append(Claim(
        "fig11b",
        "per-record insertion cost stays small and near-flat",
        per_record[-1] < 0.25
        and per_record[-1] < 5 * max(per_record[0], 1e-9),
        "%.2g s -> %.2g s per record" % (per_record[0], per_record[-1]),
    ))
    return yield_claims


def _fig12_claims(sweep):
    claims = []
    final_speedups = {}
    for panel, (selectivity, competitor) in sorted(PANELS.items()):
        if selectivity not in sweep.selectivities:
            continue
        rows = fig12_rows(sweep, selectivity, competitor)
        wins = all(row[1] < row[2] for row in rows)
        speedup = rows[-1][2] / rows[-1][1]
        final_speedups[(selectivity, competitor)] = speedup
        claims.append(Claim(
            "fig12%s" % panel,
            "DC-tree beats %s at %.0f%% selectivity (sim, every size)"
            % (competitor, selectivity * 100),
            wins,
            "final speed-up %.1fx" % speedup,
        ))
    ordered = [
        final_speedups.get((selectivity, "x-tree"))
        for selectivity in (0.01, 0.05, 0.25)
    ]
    if all(value is not None for value in ordered):
        claims.append(Claim(
            "fig12",
            "the win over the X-tree shrinks as selectivity grows",
            ordered[0] >= ordered[1] >= ordered[2],
            "1%%: %.1fx  5%%: %.1fx  25%%: %.1fx" % tuple(ordered),
        ))
    scan_speedups = [
        row[2] / row[1]
        for row in fig12_rows(sweep, 0.25, "scan")
    ] if 0.25 in sweep.selectivities else []
    if len(scan_speedups) >= 2:
        claims.append(Claim(
            "fig12d",
            "the win over the scan grows with the data set",
            scan_speedups[-1] >= scan_speedups[0],
            "%.1fx -> %.1fx" % (scan_speedups[0], scan_speedups[-1]),
        ))
    return claims


def _fig13_claims(sweep):
    rows = fig13_rows(sweep)
    growing = [row[1] for row in rows]
    stable = [row[2] for row in rows]
    supernodes = [row[3] for row in rows]
    claims = [
        Claim(
            "fig13",
            "one directory level accumulates supernodes and grows",
            growing[-1] > 1.5 * max(growing[0], 1.0)
            and supernodes[-1] >= 1,
            "%.0f -> %.0f entries, %d supernodes"
            % (growing[0], growing[-1], supernodes[-1]),
        ),
        Claim(
            "fig13",
            "the neighbouring level stays near node capacity",
            stable[-1] < 1.5 * max(stable[0], 1.0),
            "%.0f -> %.0f entries" % (stable[0], stable[-1]),
        ),
    ]
    return claims


def report_verdict(**sweep_kwargs):
    """Formatted scorecard for one (cached) sweep."""
    sweep = cached_sweep(**sweep_kwargs)
    claims = evaluate_claims(sweep)
    table = format_table(
        ("artifact", "claim", "verdict", "measured"),
        [claim.row() for claim in claims],
        title="Reproduction scorecard (shape claims of every figure)",
    )
    n_passed = sum(1 for claim in claims if claim.passed)
    return "%s\n\n%d/%d shape claims hold" % (table, n_passed, len(claims))
