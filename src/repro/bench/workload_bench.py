"""Experiment `abl-order`: insert order and data skew vs tree quality.

The paper loaded its cube from a flat file produced by SQL selections —
output that is typically *clustered* (grouped by the driving key), while
a live trickle of updates arrives in random order.  Clustered arrival
gives choose-subtree much easier decisions, so the resulting DC-tree
should query better.  Real warehouses are also *skewed* (a few customers
and parts dominate), which concentrates the tree's value sets.  This
experiment builds the same cube four ways and compares.
"""

from __future__ import annotations

import time

from ..config import CostModel
from ..core.stats import collect_stats
from ..core.tree import DCTree
from ..storage.buffer import BufferPool
from ..tpcd.generator import TPCDGenerator
from ..tpcd.schema import make_tpcd_schema
from ..workload.queries import QueryGenerator
from .reporting import format_table


def run_insert_order(n_records=8000, n_queries=50, selectivity=0.05,
                     seed=0):
    """Four builds: {uniform, skewed} x {random, clustered} arrival."""
    model = CostModel()
    rows = []
    for skew_name, skew in (("uniform", 0.0), ("skewed", 1.0)):
        schema = make_tpcd_schema()
        generator = TPCDGenerator(
            schema, seed=seed, scale_records=n_records, skew=skew
        )
        records = generator.generate(n_records)
        queries = list(
            QueryGenerator(schema, selectivity, seed=seed + 1).queries(
                n_queries
            )
        )
        orders = (
            ("random", records),
            ("clustered", sorted(records, key=lambda r: r.paths[0])),
        )
        for order_name, ordered in orders:
            tree = DCTree(schema)
            start = time.perf_counter()
            for record in ordered:
                tree.insert(record)
            build_wall = time.perf_counter() - start

            tree.tracker.buffer = BufferPool(
                max(16, tree.page_count() // 4)
            )
            tree.tracker.reset()
            for query in queries:
                tree.range_query(query.mds)
            stats = tree.tracker.snapshot()
            profile = collect_stats(tree)
            rows.append(
                (
                    "%s / %s" % (skew_name, order_name),
                    build_wall,
                    stats.simulated_seconds(model) / n_queries,
                    stats.buffer_misses / n_queries,
                    profile.height,
                    profile.n_supernodes,
                )
            )
    return rows


def report_insert_order(**kwargs):
    return format_table(
        (
            "data / insert order",
            "build wall [s]",
            "query sim [s]",
            "misses/query",
            "height",
            "supernodes",
        ),
        run_insert_order(**kwargs),
        title=(
            "Ablation: data skew and insert order vs DC-tree quality"
        ),
    )
