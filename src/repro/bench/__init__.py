"""Benchmark harness regenerating every table and figure of §5."""

from .harness import (
    PAPER_QUERIES,
    PAPER_SELECTIVITIES,
    PAPER_SIZES,
    Checkpoint,
    QueryMeasurement,
    SweepResult,
    cached_sweep,
    execute_query,
    make_backend,
    run_combined_sweep,
)

__all__ = [
    "Checkpoint",
    "PAPER_QUERIES",
    "PAPER_SELECTIVITIES",
    "PAPER_SIZES",
    "QueryMeasurement",
    "SweepResult",
    "cached_sweep",
    "execute_query",
    "make_backend",
    "run_combined_sweep",
]
