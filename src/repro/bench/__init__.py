"""Benchmark harness regenerating every table and figure of §5."""

from .harness import (
    PAPER_QUERIES,
    PAPER_SELECTIVITIES,
    PAPER_SIZES,
    Checkpoint,
    QueryMeasurement,
    SweepResult,
    cached_sweep,
    execute_query,
    make_backend,
    run_combined_sweep,
)
from .regression import (
    compare_to_baseline,
    run_benchmark,
    run_workload,
)

__all__ = [
    "compare_to_baseline",
    "run_benchmark",
    "run_workload",
    "Checkpoint",
    "PAPER_QUERIES",
    "PAPER_SELECTIVITIES",
    "PAPER_SIZES",
    "QueryMeasurement",
    "SweepResult",
    "cached_sweep",
    "execute_query",
    "make_backend",
    "run_combined_sweep",
]
