"""The experiment driver behind every figure of the evaluation (§5).

One *combined sweep* reproduces the paper's whole measurement protocol in
a single pass: the three backends are fed the same TPC-D record stream
over one shared schema; at each checkpoint size (10k/20k/30k records in
the paper) the harness records cumulative and per-record insertion times,
then fires the random range-query batches for each selectivity (100
queries of 1 %, 5 % and 25 % in the paper) against every backend with
equalized buffer budgets, and profiles the DC-tree's node sizes per level.

Figures 11, 12 and 13 are all slices of one :class:`SweepResult`, so
``python -m repro.bench all`` pays for the expensive build exactly once.
"""

from __future__ import annotations

import time

from ..config import CostModel, DCTreeConfig, StorageConfig, XTreeConfig
from ..core.stats import collect_stats
from ..core.tree import DCTree
from ..scan.table import FlatTable
from ..storage.buffer import BufferPool
from ..tpcd.generator import TPCDGenerator
from ..tpcd.schema import make_tpcd_schema
from ..workload.queries import QueryGenerator
from ..xtree.tree import XTree

#: Checkpoint sizes of the paper's sweep (Figs. 11-13).
PAPER_SIZES = (10000, 20000, 30000)
#: Query selectivities of the paper's sweep (Fig. 12).
PAPER_SELECTIVITIES = (0.01, 0.05, 0.25)
#: Queries averaged per measurement in the paper.
PAPER_QUERIES = 100


class QueryMeasurement:
    """Average per-query costs of one (backend, selectivity) batch."""

    __slots__ = ("wall_seconds", "node_accesses", "buffer_misses",
                 "cpu_units", "simulated_seconds")

    def __init__(self, wall_seconds, node_accesses, buffer_misses, cpu_units,
                 simulated_seconds):
        self.wall_seconds = wall_seconds
        self.node_accesses = node_accesses
        self.buffer_misses = buffer_misses
        self.cpu_units = cpu_units
        self.simulated_seconds = simulated_seconds

    def __repr__(self):
        return (
            "QueryMeasurement(wall=%.4fs, nodes=%.1f, misses=%.1f, sim=%.4fs)"
            % (self.wall_seconds, self.node_accesses, self.buffer_misses,
               self.simulated_seconds)
        )


class Checkpoint:
    """All measurements taken at one data-set size."""

    def __init__(self, n_records):
        self.n_records = n_records
        #: backend -> cumulative insertion wall seconds since the start.
        self.insert_seconds = {}
        #: backend -> cumulative simulated insertion seconds.
        self.insert_simulated = {}
        #: backend -> mean wall seconds per single insert.
        self.per_record_seconds = {}
        #: (backend, selectivity) -> QueryMeasurement.
        self.queries = {}
        #: DC-tree TreeStats (Fig. 13) at this size.
        self.dc_stats = None


class SweepResult:
    """Outcome of one combined sweep."""

    def __init__(self, sizes, selectivities, n_queries, backends, seed):
        self.sizes = tuple(sizes)
        self.selectivities = tuple(selectivities)
        self.n_queries = n_queries
        self.backends = tuple(backends)
        self.seed = seed
        self.checkpoints = []

    def checkpoint(self, n_records):
        for point in self.checkpoints:
            if point.n_records == n_records:
                return point
        raise KeyError("no checkpoint at %d records" % n_records)


def make_backend(name, schema, dc_config=None, x_config=None,
                 storage_config=None):
    """Instantiate one index backend over ``schema``."""
    if name == "dc-tree":
        return DCTree(schema, config=dc_config, storage_config=storage_config)
    if name == "x-tree":
        return XTree(schema, config=x_config, storage_config=storage_config)
    if name == "scan":
        return FlatTable(schema, storage_config=storage_config)
    raise ValueError("unknown backend %r" % name)


def execute_query(backend_name, index, query, op="sum"):
    """Run one :class:`RangeQuery` against any backend."""
    if backend_name == "x-tree":
        return index.range_query(query.to_mbr(), query.predicate(), op=op)
    return index.range_query(query.mds, op=op)


def run_combined_sweep(
    sizes=PAPER_SIZES,
    selectivities=PAPER_SELECTIVITIES,
    n_queries=PAPER_QUERIES,
    backends=("dc-tree", "x-tree", "scan"),
    seed=0,
    dc_config=None,
    x_config=None,
    cost_model=None,
    buffer_fraction=0.25,
    progress=None,
):
    """Run the paper's full measurement protocol; return a
    :class:`SweepResult`.

    ``buffer_fraction`` sizes every backend's LRU pool to that fraction of
    the *DC-tree's* page footprint — the paper's memory-equalization rule
    ("the main memory available for the X-tree was restricted to the
    memory size that the DC-tree uses").
    """
    sizes = sorted(sizes)
    model = cost_model if cost_model is not None else CostModel()
    dc_config = dc_config if dc_config is not None else DCTreeConfig()
    x_config = x_config if x_config is not None else XTreeConfig()
    note = progress if progress is not None else (lambda message: None)

    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=seed, scale_records=sizes[-1])
    indexes = {
        name: make_backend(name, schema, dc_config, x_config,
                           StorageConfig(buffer_pages=0))
        for name in backends
    }
    result = SweepResult(sizes, selectivities, n_queries, backends, seed)

    inserted = 0
    insert_wall = {name: 0.0 for name in backends}
    insert_ios = {name: 0 for name in backends}
    insert_cpu = {name: 0 for name in backends}
    for checkpoint_size in sizes:
        batch = generator.generate(checkpoint_size - inserted)
        inserted = checkpoint_size
        note("inserting up to %d records" % checkpoint_size)
        for name in backends:
            index = indexes[name]
            # Inserts run against an unconstrained buffer; query phases
            # swap in the equalized pool, so restore + reset here.
            index.tracker.buffer = BufferPool(0)
            index.tracker.reset()
            start = time.perf_counter()
            for record in batch:
                index.insert(record)
            insert_wall[name] += time.perf_counter() - start
            stats = index.tracker.snapshot()
            insert_ios[name] += stats.page_ios
            insert_cpu[name] += stats.cpu_units

        point = Checkpoint(checkpoint_size)
        for name in backends:
            point.insert_seconds[name] = insert_wall[name]
            point.insert_simulated[name] = model.simulated_seconds(
                insert_ios[name], insert_cpu[name]
            )
            point.per_record_seconds[name] = (
                insert_wall[name] / checkpoint_size
            )

        if "dc-tree" in backends:
            point.dc_stats = collect_stats(indexes["dc-tree"])

        buffer_pages = _query_buffer_pages(
            indexes, backends, buffer_fraction
        )
        for selectivity in selectivities:
            note(
                "querying %d records at selectivity %.0f%%"
                % (checkpoint_size, selectivity * 100)
            )
            queries = list(
                QueryGenerator(
                    schema, selectivity, seed=seed + int(selectivity * 1000)
                ).queries(n_queries)
            )
            for name in backends:
                point.queries[(name, selectivity)] = _measure_queries(
                    name, indexes[name], queries, buffer_pages, model
                )
        result.checkpoints.append(point)
    return result


def _query_buffer_pages(indexes, backends, buffer_fraction):
    """The equalized buffer budget (pages) for the query phases."""
    if "dc-tree" in backends:
        reference = indexes["dc-tree"].page_count()
    else:
        reference = max(indexes[name].page_count() for name in backends)
    return max(16, int(reference * buffer_fraction))


def _measure_queries(backend_name, index, queries, buffer_pages, model):
    """Run one query batch; return per-query averages."""
    tracker = index.tracker
    tracker.buffer = BufferPool(buffer_pages)
    tracker.reset()
    start = time.perf_counter()
    for query in queries:
        execute_query(backend_name, index, query)
    wall = time.perf_counter() - start
    stats = tracker.snapshot()
    n = len(queries)
    return QueryMeasurement(
        wall_seconds=wall / n,
        node_accesses=stats.node_accesses / n,
        buffer_misses=stats.buffer_misses / n,
        cpu_units=stats.cpu_units / n,
        simulated_seconds=stats.simulated_seconds(model) / n,
    )


_SWEEP_CACHE = {}


def cached_sweep(**kwargs):
    """Memoized :func:`run_combined_sweep` so figures share one build."""
    key = (
        tuple(kwargs.get("sizes", PAPER_SIZES)),
        tuple(kwargs.get("selectivities", PAPER_SELECTIVITIES)),
        kwargs.get("n_queries", PAPER_QUERIES),
        tuple(kwargs.get("backends", ("dc-tree", "x-tree", "scan"))),
        kwargs.get("seed", 0),
    )
    if key not in _SWEEP_CACHE:
        _SWEEP_CACHE[key] = run_combined_sweep(**kwargs)
    return _SWEEP_CACHE[key]
