"""Experiment `abl-bulkload`: record-at-a-time insertion vs bulk build.

The paper's dynamic insertion is the contribution; for the *initial* load
of a cube a bottom-up bulk build touches each page once.  This experiment
compares build cost and the query quality of the resulting trees; both
trees remain fully dynamic afterwards.
"""

from __future__ import annotations

import time

from ..config import CostModel
from ..core.bulkload import bulk_load
from ..core.stats import collect_stats
from ..core.tree import DCTree
from ..storage.buffer import BufferPool
from ..tpcd.generator import TPCDGenerator
from ..tpcd.schema import make_tpcd_schema
from ..workload.queries import QueryGenerator
from .reporting import format_table


def run_bulkload(n_records=10000, n_queries=50, selectivity=0.05, seed=0):
    """Build both ways, measure build and query costs; returns rows."""
    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=seed, scale_records=n_records)
    records = generator.generate(n_records)
    model = CostModel()
    queries = list(
        QueryGenerator(schema, selectivity, seed=seed + 1).queries(n_queries)
    )

    rows = []
    for method in ("insert-at-a-time", "bulk build"):
        start = time.perf_counter()
        if method == "bulk build":
            tree = bulk_load(schema, records)
        else:
            tree = DCTree(schema)
            for record in records:
                tree.insert(record)
        build_wall = time.perf_counter() - start
        build_sim = tree.tracker.snapshot().simulated_seconds(model)

        tree.tracker.buffer = BufferPool(max(16, tree.page_count() // 4))
        tree.tracker.reset()
        for query in queries:
            tree.range_query(query.mds)
        stats = tree.tracker.snapshot()
        profile = collect_stats(tree)
        rows.append(
            (
                method,
                build_wall,
                build_sim,
                stats.simulated_seconds(model) / n_queries,
                stats.buffer_misses / n_queries,
                profile.height,
                tree.page_count(),
            )
        )
    return rows


def report_bulkload(**kwargs):
    return format_table(
        (
            "build method",
            "build wall [s]",
            "build sim [s]",
            "query sim [s]",
            "misses/query",
            "height",
            "pages",
        ),
        run_bulkload(**kwargs),
        title="Ablation: record-at-a-time insertion vs bottom-up bulk build",
    )
