"""Experiment `motivation`: dynamic DC-tree vs bulk-updated warehouse.

Quantifies the introduction's two drawbacks of the batch regime on one
identical update/query stream: (1) the total runtime of the batch — an
OLAP-unavailability window — and (2) stale query answers between windows.
The fully dynamic DC-tree pays neither: every update is visible
immediately and there is no window.
"""

from __future__ import annotations

import time

from ..maintenance.batch import BatchWarehouse
from ..tpcd.generator import TPCDGenerator
from ..tpcd.schema import make_tpcd_schema
from ..warehouse import Warehouse
from ..workload.queries import QueryGenerator
from .reporting import format_table


def run_motivation(n_updates=5000, query_every=50, windows=4, seed=0):
    """One trading day against both regimes; returns table rows.

    ``windows`` maintenance windows are spread evenly over the day (the
    batch regime's best case — a single nightly window is strictly
    worse on staleness).
    """
    rows = []
    for regime in ("dynamic dc-tree", "batch dc-tree"):
        schema = make_tpcd_schema()
        generator = TPCDGenerator(schema, seed=seed,
                                  scale_records=n_updates)
        query_gen = QueryGenerator(schema, 0.05, seed=seed + 1)
        window_every = max(1, n_updates // windows)

        dynamic = regime.startswith("dynamic")
        if dynamic:
            warehouse = Warehouse(schema, "dc-tree")
        else:
            warehouse = BatchWarehouse(
                schema, "dc-tree", window_every=window_every
            )

        staleness = []
        update_wall = 0.0
        query_wall = 0.0
        for i, record in enumerate(generator.records(n_updates)):
            start = time.perf_counter()
            if dynamic:
                warehouse.insert_record(record)
            else:
                warehouse.submit_insert_record(record)
            update_wall += time.perf_counter() - start
            if (i + 1) % query_every == 0:
                query = query_gen.query()
                start = time.perf_counter()
                if dynamic:
                    warehouse.execute(query)
                    staleness.append(0)
                else:
                    warehouse.execute(query)
                    staleness.append(warehouse.pending_updates)
                query_wall += time.perf_counter() - start

        if dynamic:
            downtime = 0.0
            sim_downtime = 0.0
            pending_at_close = 0
        else:
            if warehouse.pending_updates:
                warehouse.run_maintenance_window()
            downtime = warehouse.stats.total_downtime_seconds
            sim_downtime = warehouse.stats.total_simulated_downtime
            pending_at_close = warehouse.stats.max_staleness

        rows.append(
            (
                regime,
                sum(staleness) / len(staleness) if staleness else 0.0,
                pending_at_close,
                downtime,
                sim_downtime,
                update_wall,
                query_wall,
            )
        )
    return rows


def report_motivation(**kwargs):
    return format_table(
        (
            "regime",
            "mean staleness [updates]",
            "max staleness",
            "downtime [s]",
            "downtime sim [s]",
            "update wall [s]",
            "query wall [s]",
        ),
        run_motivation(**kwargs),
        title=(
            "Motivation: fully dynamic DC-tree vs bulk-updated warehouse "
            "(§1's drawbacks, quantified)"
        ),
    )
