"""Plain-text rendering of experiment results (paper-style tables)."""

from __future__ import annotations


def format_table(headers, rows, title=None):
    """Render ``rows`` (sequences of cells) as an aligned ASCII table."""
    cells = [[_fmt(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def _fmt(cell):
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return "%.1f" % cell
        if abs(cell) >= 1:
            return "%.2f" % cell
        return "%.4f" % cell
    return str(cell)


def speedup(slow, fast):
    """Human-facing speed-up factor ``slow / fast`` (None when undefined)."""
    if fast <= 0:
        return None
    return slow / fast


def format_speedup(value):
    return "n/a" if value is None else "%.1fx" % value


def format_chart(x_values, series, height=10, width=56, title=None):
    """Render one or more y-series over shared x values as ASCII art.

    ``series`` maps a label to its list of y values (same length as
    ``x_values``).  Series are drawn with distinct markers on a shared
    linear y axis — enough to eyeball the figures' shapes (who is above
    whom, what grows, where lines cross) straight from the terminal.
    """
    markers = "*o+x#@"
    labels = list(series)
    all_values = [v for values in series.values() for v in values]
    if not all_values or not x_values:
        return "(no data)"
    y_max = max(all_values)
    y_min = min(0.0, min(all_values))
    span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    n = len(x_values)
    for index, label in enumerate(labels):
        marker = markers[index % len(markers)]
        for i, value in enumerate(series[label]):
            column = (
                int(round(i * (width - 1) / (n - 1))) if n > 1 else 0
            )
            row = height - 1 - int(round(
                (value - y_min) / span * (height - 1)
            ))
            grid[row][column] = marker

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            axis_label = "%10.3g |" % y_max
        elif row_index == height - 1:
            axis_label = "%10.3g |" % y_min
        else:
            axis_label = "%10s |" % ""
        lines.append(axis_label + "".join(row))
    lines.append("%10s +%s" % ("", "-" * width))
    lines.append(
        "%10s  %-s%s" % ("", _fmt(x_values[0]),
                         _fmt(x_values[-1]).rjust(width - len(
                             _fmt(x_values[0])))))
    legend = "   ".join(
        "%s %s" % (markers[i % len(markers)], label)
        for i, label in enumerate(labels)
    )
    lines.append("%10s  %s" % ("", legend))
    return "\n".join(lines)
