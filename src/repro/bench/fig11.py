"""Figure 11: insertion times.

(a) total insertion time of the DC-tree vs the X-tree for 10k-30k records;
(b) mean insertion time per data record for the DC-tree (the paper reports
~0.25 s on 1999 hardware and argues it is flat enough to keep the
warehouse permanently up to date).
"""

from __future__ import annotations

from .harness import cached_sweep
from .reporting import format_chart, format_table


def fig11a_rows(sweep):
    """Rows: records, DC-tree and X-tree cumulative insertion seconds."""
    rows = []
    for point in sweep.checkpoints:
        rows.append(
            (
                point.n_records,
                point.insert_seconds["dc-tree"],
                point.insert_seconds["x-tree"],
                point.insert_simulated["dc-tree"],
                point.insert_simulated["x-tree"],
            )
        )
    return rows


def fig11b_rows(sweep):
    """Rows: records, DC-tree seconds per single inserted record."""
    return [
        (point.n_records, point.per_record_seconds["dc-tree"])
        for point in sweep.checkpoints
    ]


def report_fig11a(**sweep_kwargs):
    sweep = cached_sweep(**sweep_kwargs)
    rows = fig11a_rows(sweep)
    table = format_table(
        ("records", "DC-tree [s]", "X-tree [s]",
         "DC-tree sim [s]", "X-tree sim [s]"),
        rows,
        title="Figure 11(a): total insertion time (cumulative)",
    )
    chart = format_chart(
        [row[0] for row in rows],
        {"DC-tree sim": [row[3] for row in rows],
         "X-tree sim": [row[4] for row in rows]},
    )
    return table + "\n\n" + chart


def report_fig11b(**sweep_kwargs):
    sweep = cached_sweep(**sweep_kwargs)
    return format_table(
        ("records", "DC-tree per-record [s]"),
        fig11b_rows(sweep),
        title="Figure 11(b): DC-tree insertion time per data record",
    )
