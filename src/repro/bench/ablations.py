"""Ablation experiments for the design choices DESIGN.md calls out.

* `abl-split`  — the paper's future work asks for sub-quadratic splits:
  quadratic hierarchy split vs the linear single-pass variant, comparing
  build time and the query quality of the resulting trees.
* `abl-measures` — the value of materialized aggregates: the same DC-tree
  queried with and without the stored-measure shortcut.
* `abl-capacity` — node-capacity sweep for the DC-tree (page-size proxy).
"""

from __future__ import annotations

import time

from ..config import CostModel, DCTreeConfig
from ..core.tree import DCTree
from ..tpcd.generator import TPCDGenerator
from ..tpcd.schema import make_tpcd_schema
from ..workload.queries import QueryGenerator
from .reporting import format_table


def _build_dataset(n_records, seed):
    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=seed, scale_records=n_records)
    return schema, generator.generate(n_records)


def _build_tree(schema, records, config):
    tree = DCTree(schema, config=config)
    start = time.perf_counter()
    for record in records:
        tree.insert(record)
    return tree, time.perf_counter() - start


def _query_cost(tree, queries, model):
    tree.tracker.reset(clear_buffer=True)
    start = time.perf_counter()
    for query in queries:
        tree.range_query(query.mds)
    wall = time.perf_counter() - start
    stats = tree.tracker.snapshot()
    n = len(queries)
    return wall / n, stats.simulated_seconds(model) / n, stats.node_accesses / n


def ablation_split(n_records=10000, n_queries=50, selectivity=0.05, seed=0):
    """Quadratic vs linear hierarchy split; returns table rows."""
    schema, records = _build_dataset(n_records, seed)
    queries = list(
        QueryGenerator(schema, selectivity, seed=seed + 1).queries(n_queries)
    )
    model = CostModel()
    rows = []
    for algorithm in ("quadratic", "linear"):
        config = DCTreeConfig(split_algorithm=algorithm)
        tree, build_seconds = _build_tree(schema, records, config)
        wall, simulated, nodes = _query_cost(tree, queries, model)
        rows.append(
            (
                algorithm,
                build_seconds,
                wall,
                simulated,
                nodes,
                tree.height(),
            )
        )
    return rows


def report_ablation_split(**kwargs):
    return format_table(
        (
            "split",
            "build [s]",
            "query wall [s]",
            "query sim [s]",
            "nodes/query",
            "height",
        ),
        ablation_split(**kwargs),
        title="Ablation: quadratic vs linear hierarchy split",
    )


def ablation_measures(n_records=10000, n_queries=50, selectivity=0.05,
                      seed=0):
    """Materialized aggregates on vs off, on two workload shapes.

    §5.2's workload constrains *every* dimension, so an entry is almost
    never fully contained in the query and the stored aggregates barely
    fire; interactive drill-downs constrain one dimension (rest ALL) and
    are where the materialization pays.  Rows:
    ``(workload, aggregates, wall, sim, nodes/query)``.
    """
    schema, records = _build_dataset(n_records, seed)
    workloads = [
        (
            "all-dims (§5.2)",
            list(
                QueryGenerator(schema, selectivity, seed=seed + 1).queries(
                    n_queries
                )
            ),
        ),
        (
            "drill-down (1 dim)",
            # Interactive drill-downs constrain one dimension at an
            # aggregation level (never the raw leaf keys) and leave the
            # other dimensions at ALL.
            list(
                QueryGenerator(
                    schema, selectivity, seed=seed + 2, constrain_dims=1,
                    min_levels=(1,) * schema.n_dimensions,
                ).queries(n_queries)
            ),
        ),
    ]
    model = CostModel()
    tree, _build_seconds = _build_tree(schema, records, DCTreeConfig())
    rows = []
    for workload_name, queries in workloads:
        for use_aggregates in (True, False):
            tree.config.use_materialized_aggregates = use_aggregates
            wall, simulated, nodes = _query_cost(tree, queries, model)
            rows.append(
                (
                    workload_name,
                    "on" if use_aggregates else "off",
                    wall,
                    simulated,
                    nodes,
                )
            )
    tree.config.use_materialized_aggregates = True
    return rows


def report_ablation_measures(**kwargs):
    return format_table(
        ("workload", "aggregates", "query wall [s]", "query sim [s]",
         "nodes/query"),
        ablation_measures(**kwargs),
        title="Ablation: materialized measures on vs off (same DC-tree)",
    )


def ablation_capacity(n_records=10000, n_queries=50, selectivity=0.05,
                      seed=0, capacities=((8, 16), (16, 32), (32, 64))):
    """Directory/leaf capacity sweep; returns table rows."""
    schema, records = _build_dataset(n_records, seed)
    queries = list(
        QueryGenerator(schema, selectivity, seed=seed + 1).queries(n_queries)
    )
    model = CostModel()
    rows = []
    for dir_capacity, leaf_capacity in capacities:
        config = DCTreeConfig(
            dir_capacity=dir_capacity, leaf_capacity=leaf_capacity
        )
        tree, build_seconds = _build_tree(schema, records, config)
        wall, simulated, nodes = _query_cost(tree, queries, model)
        rows.append(
            (
                "%d/%d" % (dir_capacity, leaf_capacity),
                build_seconds,
                wall,
                simulated,
                nodes,
                tree.height(),
            )
        )
    return rows


def report_ablation_capacity(**kwargs):
    return format_table(
        (
            "dir/leaf capacity",
            "build [s]",
            "query wall [s]",
            "query sim [s]",
            "nodes/query",
            "height",
        ),
        ablation_capacity(**kwargs),
        title="Ablation: node capacity sweep (DC-tree)",
    )
