"""Experiment `aggview`: DC-tree vs static materialized aggregate view.

The related-work baseline answers the queries it covers very fast, but
(a) it cannot answer queries below its granularity at all, and (b) a
single warehouse update forces a full rebuild.  The DC-tree answers
everything and absorbs updates in place — the trade the paper's
introduction describes.
"""

from __future__ import annotations

from ..aggview.view import MaterializedAggregateView
from ..config import CostModel
from ..core.tree import DCTree
from ..tpcd.generator import TPCDGenerator
from ..tpcd.schema import make_tpcd_schema
from ..workload.queries import QueryGenerator
from .reporting import format_table

#: View granularity for the TPC-D cube: Nation x Nation x Brand x Month.
TPCD_VIEW_LEVELS = (2, 1, 2, 1)


def run_aggview(n_records=5000, n_queries=100, selectivity=0.25, seed=0):
    """Build both, fire one mixed query batch, measure the trade-offs."""
    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=seed, scale_records=n_records)
    records = generator.generate(n_records)
    model = CostModel()

    tree = DCTree(schema)
    for record in records:
        tree.insert(record)

    view = MaterializedAggregateView(schema, TPCD_VIEW_LEVELS)
    view.build(records)

    # Coverage: what fraction of the paper's unrestricted query mix can
    # the view answer at all?
    mixed = list(
        QueryGenerator(schema, selectivity, seed=seed + 1).queries(
            max(n_queries, 200)
        )
    )
    coverage = sum(1 for q in mixed if view.can_answer(q.mds)) / len(mixed)

    # Timing: a batch the view CAN answer, so both backends run it.
    answerable = list(
        QueryGenerator(
            schema, selectivity, seed=seed + 2,
            min_levels=TPCD_VIEW_LEVELS,
        ).queries(n_queries)
    )

    view.tracker.reset(clear_buffer=True)
    for query in answerable:
        view.range_query(query.mds)
    view_stats = view.tracker.snapshot()

    tree.tracker.reset(clear_buffer=True)
    for query in answerable:
        tree.range_query(query.mds)
    tree_stats = tree.tracker.snapshot()

    # The price of one dynamic update.
    extra = generator.record()
    tree.tracker.reset()
    tree.insert(extra)
    tree_update = tree.tracker.snapshot().simulated_seconds(model)

    view.mark_stale()
    view.tracker.reset(clear_buffer=True)
    view.build(records + [extra])
    view_update = view.tracker.snapshot().simulated_seconds(model)

    n_answerable = max(1, len(answerable))
    return [
        (
            "dc-tree",
            "100%",
            tree_stats.simulated_seconds(model) / n_answerable,
            tree_update,
        ),
        (
            "materialized view",
            "%.0f%%" % (100.0 * coverage),
            view_stats.simulated_seconds(model) / n_answerable,
            view_update,
        ),
    ]


def report_aggview(**kwargs):
    return format_table(
        (
            "backend",
            "queries answerable",
            "sim [s] per answerable query",
            "sim [s] per single update",
        ),
        run_aggview(**kwargs),
        title=(
            "Static materialization vs DC-tree: coverage, query cost, "
            "and the price of one update"
        ),
    )
