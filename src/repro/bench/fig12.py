"""Figure 12: average time per range query.

(a)-(c): DC-tree vs X-tree at selectivities 1 %, 5 % and 25 % (the paper
reports a speed-up of about 4.5×, with 5 % the cheapest selectivity for
the DC-tree); (d): DC-tree vs sequential scan at 25 % — the DC-tree's
worst case — where the paper reports a 12.5× speed-up.

The primary shape metric is the simulated time (buffer misses × t_io +
CPU units × t_cpu), which abstracts from Python's constant factors; the
wall-clock column is reported alongside.
"""

from __future__ import annotations

from .harness import cached_sweep
from .reporting import format_chart, format_speedup, format_table, speedup

#: Figure panel -> (selectivity, competitor backend).
PANELS = {
    "a": (0.01, "x-tree"),
    "b": (0.05, "x-tree"),
    "c": (0.25, "x-tree"),
    "d": (0.25, "scan"),
}


def fig12_rows(sweep, selectivity, competitor):
    """Rows: records, DC vs competitor per-query costs, speed-ups."""
    rows = []
    for point in sweep.checkpoints:
        dc = point.queries[("dc-tree", selectivity)]
        other = point.queries[(competitor, selectivity)]
        rows.append(
            (
                point.n_records,
                dc.simulated_seconds,
                other.simulated_seconds,
                format_speedup(
                    speedup(other.simulated_seconds, dc.simulated_seconds)
                ),
                dc.wall_seconds,
                other.wall_seconds,
                format_speedup(speedup(other.wall_seconds, dc.wall_seconds)),
            )
        )
    return rows


def report_fig12(panel, **sweep_kwargs):
    """Formatted table for panel 'a', 'b', 'c' or 'd'."""
    selectivity, competitor = PANELS[panel]
    sweep = cached_sweep(**sweep_kwargs)
    label = "sequential scan" if competitor == "scan" else "X-tree"
    rows = fig12_rows(sweep, selectivity, competitor)
    table = format_table(
        (
            "records",
            "DC sim [s]",
            "%s sim [s]" % label,
            "sim speedup",
            "DC wall [s]",
            "%s wall [s]" % label,
            "wall speedup",
        ),
        rows,
        title=(
            "Figure 12(%s): avg time per query, selectivity %.0f%%, "
            "DC-tree vs %s" % (panel, selectivity * 100, label)
        ),
    )
    chart = format_chart(
        [row[0] for row in rows],
        {"DC-tree sim": [row[1] for row in rows],
         "%s sim" % label: [row[2] for row in rows]},
    )
    return table + "\n\n" + chart


def selectivity_profile(sweep, backend="dc-tree"):
    """Per-selectivity per-query simulated seconds at the largest size.

    Supports the paper's observation that 5 % queries are the cheapest for
    the DC-tree (containment hit-rate vs MDS-computation trade-off).
    """
    point = sweep.checkpoints[-1]
    return {
        selectivity: point.queries[(backend, selectivity)].simulated_seconds
        for selectivity in sweep.selectivities
    }
