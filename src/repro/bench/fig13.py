"""Figure 13: DC-tree node sizes of the two highest levels below the root.

The paper observes that the node size (average number of entries) of the
highest level below the root stabilizes around ~15 entries while the
second-highest level grows roughly linearly with the data-set size —
supernodes accumulate because directory MDSs become too special to split
(≈2.5× the regular directory capacity at 30k records).
"""

from __future__ import annotations

from .harness import cached_sweep
from .reporting import format_chart, format_table


def fig13_rows(sweep):
    """Rows: records, avg entries at depth 1 and depth 2, supernode counts."""
    rows = []
    for point in sweep.checkpoints:
        stats = point.dc_stats
        highest = stats.highest_below_root()
        second = stats.second_highest_below_root()
        rows.append(
            (
                point.n_records,
                highest.avg_entries if highest else 0.0,
                second.avg_entries if second else 0.0,
                stats.n_supernodes,
                stats.height,
            )
        )
    return rows


def report_fig13(**sweep_kwargs):
    sweep = cached_sweep(**sweep_kwargs)
    rows = fig13_rows(sweep)
    table = format_table(
        (
            "records",
            "highest level [entries]",
            "2nd highest [entries]",
            "supernodes",
            "tree height",
        ),
        rows,
        title="Figure 13: average node sizes per level below the root",
    )
    chart = format_chart(
        [row[0] for row in rows],
        {"highest level": [row[1] for row in rows],
         "2nd highest": [row[2] for row in rows]},
    )
    return table + "\n\n" + chart
