"""Performance-regression benchmark: ``python -m repro.bench regression``.

Runs one fixed-seed insert / range-query / group-by / repeated-query
workload over the TPC-D cube twice — once with the acceleration layer on
(hot-path caches plus the versioned query-result cache, the default) and
once with it off (legacy parent-walking ancestors, uncached adaptation,
separate overlaps+contains, every query recomputed) — and records
per-phase wall times, ops/sec and the deterministic tracker counters
(node accesses, page I/Os, CPU units) in ``BENCH_core.json``.

The *repeat* phase prices the result cache: queries already asked once
are re-asked with Zipfian popularity (a hot head of favourite reports, a
long tail — the canonical repeated OLAP workload).  With the cache on,
re-asks are answered from memory while the recorded tracker charges are
replayed, so the deterministic counters still match the uncached mode
exactly and only wall-clock improves.

An *insert-heavy* phase prices batched mutation: the same record stream
goes into two fresh trees serially and through chunked ``insert_batch``
calls, recording the page-write reduction (``--min-batch-speedup`` gates
it) and proving, per run, that batching leaves the read counters and the
structure digest bit-identical to serial insertion.

Regression checking compares the *deterministic* counters of the cached
mode against the committed baseline with a configurable tolerance, so CI
catches algorithmic regressions without depending on machine speed;
wall-clock comparison is opt-in (``--strict-wall``).  The two modes must
produce bit-identical query/group-by results (checked via a digest) —
the caches are required to be semantically invisible.

Profiles:

* ``full``  — 30 000 records, 100 mixed-selectivity queries (1/5/25 %)
  plus the standard group-by battery and 400 Zipfian re-asks; the
  headline numbers.
* ``smoke`` (``--smoke``) — 4 000 records, 30 queries, 120 re-asks;
  finishes in well under a minute and is meant as a CI gate.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import sys
import tempfile
import time

from .. import hotpath
from ..config import DCTreeConfig
from ..core.debug import structure_digest
from ..core.tree import DCTree
from ..obs.metrics import observe_dctree
from ..persist.durable import WalSink
from ..persist.wal import WriteAheadLog
from ..tpcd.generator import TPCDGenerator
from ..tpcd.schema import make_tpcd_schema
from ..workload.queries import QueryGenerator

#: Selectivities mixed into the query batch (the paper's Fig. 12 set).
SELECTIVITIES = (0.01, 0.05, 0.25)

#: Skew of the repeated-query phase (weight of rank r is 1 / r**s).
ZIPF_EXPONENT = 1.2

PROFILES = {
    "full": {"records": 30000, "queries": 100, "repeats": 400},
    "smoke": {"records": 4000, "queries": 30, "repeats": 120},
}

#: Chunk size of the insert-heavy batched phase (one page of records at
#: the default leaf capacity).
BATCH_SIZE = 64

#: Counters whose growth beyond the tolerance fails the run.
_CHECKED_COUNTERS = ("node_accesses", "page_ios", "cpu_units")


def _phase_stats(tracker, before, wall_seconds, n_ops):
    stats = tracker.snapshot() - before
    return {
        "wall_seconds": wall_seconds,
        "ops": n_ops,
        "ops_per_second": (n_ops / wall_seconds) if wall_seconds > 0 else 0.0,
        "node_accesses": stats.node_accesses,
        "page_ios": stats.page_ios,
        "cpu_units": stats.cpu_units,
    }


def _build_queries(schema, n_queries, seed):
    """The fixed mixed-selectivity query batch (round-robin)."""
    generators = [
        QueryGenerator(schema, selectivity, seed=seed + index)
        for index, selectivity in enumerate(SELECTIVITIES)
    ]
    return [
        generators[index % len(generators)].query()
        for index in range(n_queries)
    ]


def _group_by_battery(schema, seed):
    """Group-by workload: (dim, level, range_mds-or-None) triples.

    Every non-leaf functional level is rolled up once unrestricted, plus
    three range-restricted roll-ups per selectivity (the interactive
    "slice then roll up" OLAP shape, which exercises entry classification
    the same way range queries do).
    """
    battery = []
    for dim in range(schema.n_dimensions):
        hierarchy = schema.dimensions[dim].hierarchy
        for level in range(1, hierarchy.top_level):
            battery.append((dim, level, None))
    index = 0
    for offset, selectivity in enumerate(SELECTIVITIES):
        generator = QueryGenerator(schema, selectivity, seed=seed + offset)
        for _ in range(3):
            dim = index % schema.n_dimensions
            hierarchy = schema.dimensions[dim].hierarchy
            level = min(1, hierarchy.top_level - 1)
            battery.append((dim, level, generator.query().mds))
            index += 1
    return battery


def _repeat_workload(queries, battery, n_repeats, seed):
    """Zipfian re-ask stream over the already-asked queries/roll-ups.

    The pool mixes every range query with every group-by; rank r is
    re-asked with weight 1/r**ZIPF_EXPONENT (a hot head of favourite
    reports, a long tail of occasional ones).  Fixed seed → both modes
    replay the identical stream.
    """
    pool = [("range", query.mds) for query in queries]
    pool.extend(
        ("groupby", (dim, level, range_mds))
        for dim, level, range_mds in battery
    )
    rng = random.Random(seed)
    weights = [
        1.0 / (rank ** ZIPF_EXPONENT) for rank in range(1, len(pool) + 1)
    ]
    return rng.choices(pool, weights=weights, k=n_repeats)


def run_workload(use_caches, n_records, n_queries, n_repeats=0, seed=0,
                 observability=False):
    """One full benchmark pass; returns (mode-report dict, results digest,
    metrics snapshot).

    The schema/generator are rebuilt per pass with the same seed, so both
    modes index the identical record stream and answer the identical
    queries — any result difference is a cache-correctness bug.

    ``observability`` runs the pass with the telemetry layer attached
    (spans + metrics registry); the returned snapshot is the registry
    contents after the workload (``None`` otherwise).  The flag is passed
    through to :class:`DCTreeConfig` explicitly in both directions, so
    the comparison passes stay deterministic even when
    ``REPRO_OBSERVABILITY`` is set in the environment.
    """
    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=seed, scale_records=n_records)
    records = generator.generate(n_records)
    tree = DCTree(schema, config=DCTreeConfig(
        use_hot_path_caches=use_caches, use_result_cache=use_caches,
        observability=observability,
    ))

    report = {}
    digest = hashlib.sha256()

    before = tree.tracker.snapshot()
    start = time.perf_counter()
    for record in records:
        tree.insert(record)
    report["insert"] = _phase_stats(
        tree.tracker, before, time.perf_counter() - start, n_records
    )

    queries = _build_queries(schema, n_queries, seed=seed + 1000)
    before = tree.tracker.snapshot()
    start = time.perf_counter()
    for query in queries:
        result = tree.range_query(query.mds)
        digest.update(repr(result).encode())
    report["query"] = _phase_stats(
        tree.tracker, before, time.perf_counter() - start, len(queries)
    )

    battery = _group_by_battery(schema, seed=seed + 2000)
    before = tree.tracker.snapshot()
    start = time.perf_counter()
    for dim, level, range_mds in battery:
        groups = tree.group_by(dim, level, range_mds=range_mds)
        digest.update(repr(sorted(groups.items())).encode())
    report["groupby"] = _phase_stats(
        tree.tracker, before, time.perf_counter() - start, len(battery)
    )

    repeats = _repeat_workload(queries, battery, n_repeats, seed=seed + 3000)
    before = tree.tracker.snapshot()
    start = time.perf_counter()
    for kind, payload in repeats:
        if kind == "range":
            result = tree.range_query(payload)
            digest.update(repr(result).encode())
        else:
            dim, level, range_mds = payload
            groups = tree.group_by(dim, level, range_mds=range_mds)
            digest.update(repr(sorted(groups.items())).encode())
    report["repeat"] = _phase_stats(
        tree.tracker, before, time.perf_counter() - start, len(repeats)
    )

    report["total_wall_seconds"] = sum(
        report[phase]["wall_seconds"]
        for phase in ("insert", "query", "groupby", "repeat")
    )
    metrics = None
    if observability:
        registry = tree.observability.registry
        observe_dctree(registry, tree)
        metrics = registry.snapshot()
    return report, digest.hexdigest(), metrics


def _phase_counters(report):
    """The deterministic counters of one pass, phase by phase."""
    return {
        phase: {
            counter: report[phase][counter]
            for counter in _CHECKED_COUNTERS
        }
        for phase in ("insert", "query", "groupby", "repeat")
    }


def run_benchmark(profile="full", seed=0, emit_metrics=False):
    """Run both modes of one profile; returns the BENCH entry dict.

    ``emit_metrics`` adds a third, observability-enabled pass of the
    cached mode and embeds its metrics-registry snapshot under
    ``entry["observability"]``, together with the invariance verdicts:
    the observed pass must produce the same result digest and identical
    deterministic counters as the plain cached pass (telemetry must be
    invisible to the simulated cost model).
    """
    params = PROFILES[profile]
    cached, cached_digest, _ = run_workload(
        True, params["records"], params["queries"], params["repeats"], seed
    )
    with hotpath.disabled():
        uncached, uncached_digest, _ = run_workload(
            False, params["records"], params["queries"], params["repeats"],
            seed,
        )
    if cached_digest != uncached_digest:
        raise AssertionError(
            "hot-path caches changed query results: %s vs %s"
            % (cached_digest, uncached_digest)
        )
    observability = None
    if emit_metrics:
        observed, observed_digest, metrics = run_workload(
            True, params["records"], params["queries"], params["repeats"],
            seed, observability=True,
        )
        observability = {
            "digest_identical": observed_digest == cached_digest,
            "counters_identical": (
                _phase_counters(observed) == _phase_counters(cached)
            ),
            "metrics": metrics,
        }
    query_heavy_cached = (
        cached["query"]["wall_seconds"] + cached["groupby"]["wall_seconds"]
    )
    query_heavy_uncached = (
        uncached["query"]["wall_seconds"]
        + uncached["groupby"]["wall_seconds"]
    )
    entry = {
        "profile": profile,
        "seed": seed,
        "records": params["records"],
        "queries": params["queries"],
        "repeats": params["repeats"],
        "selectivities": list(SELECTIVITIES),
        "zipf_exponent": ZIPF_EXPONENT,
        "digest": cached_digest,
        "batch_insert": measure_batch_amortization(
            params["records"], seed=seed
        ),
        "modes": {"cached": cached, "uncached": uncached},
        "speedup": {
            "query_wall": _ratio(
                uncached["query"]["wall_seconds"],
                cached["query"]["wall_seconds"],
            ),
            "groupby_wall": _ratio(
                uncached["groupby"]["wall_seconds"],
                cached["groupby"]["wall_seconds"],
            ),
            "repeat_wall": _ratio(
                uncached["repeat"]["wall_seconds"],
                cached["repeat"]["wall_seconds"],
            ),
            "query_heavy_wall": _ratio(
                query_heavy_uncached, query_heavy_cached
            ),
            "total_wall": _ratio(
                uncached["total_wall_seconds"], cached["total_wall_seconds"]
            ),
        },
    }
    if observability is not None:
        entry["observability"] = observability
    return entry


def _ratio(numerator, denominator):
    return (numerator / denominator) if denominator > 0 else 0.0


def _counter_key(stats):
    return (stats.node_accesses, stats.buffer_hits, stats.buffer_misses,
            stats.page_writes, stats.cpu_units)


def measure_wal_overhead(n_records, seed=0, fsync_interval=64):
    """Price the durability layer: insert pass with vs. without a WAL.

    Runs the same fixed-seed insert stream into two fresh trees — one
    bare, one with a :class:`WalSink` logging every insert to a real
    temp-dir WAL — and reports the wall-clock overhead ratio plus the
    log size.  The deterministic tracker counters of both passes must be
    bit-identical (``counters_identical``): the WAL does real file I/O
    but never touches the simulated cost model, and this measurement is
    the bench-level proof.
    """
    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=seed, scale_records=n_records)
    records = generator.generate(n_records)

    def insert_pass(wal):
        tree = DCTree(schema, config=DCTreeConfig(
            wal_fsync_interval=fsync_interval,
        ))
        if wal is not None:
            tree.set_mutation_sink(WalSink(wal, schema))
        start = time.perf_counter()
        for record in records:
            tree.insert(record)
        wall = time.perf_counter() - start
        return wall, _counter_key(tree.tracker.snapshot())

    plain_wall, plain_counters = insert_pass(None)
    with tempfile.TemporaryDirectory(prefix="repro-wal-") as tmp:
        wal = WriteAheadLog(os.path.join(tmp, "wal.log"),
                            fsync_interval=fsync_interval)
        try:
            logged_wall, logged_counters = insert_pass(wal)
            wal.sync()
            wal_bytes = os.path.getsize(wal.path)
        finally:
            wal.close()
    return {
        "records": n_records,
        "seed": seed,
        "fsync_interval": fsync_interval,
        "plain_wall_seconds": plain_wall,
        "wal_wall_seconds": logged_wall,
        "overhead_ratio": _ratio(logged_wall, plain_wall),
        "wal_bytes": wal_bytes,
        "counters_identical": plain_counters == logged_counters,
    }


def measure_batch_amortization(n_records, seed=0, batch_size=BATCH_SIZE):
    """The insert-heavy phase: serial ``insert`` vs chunked ``insert_batch``.

    Runs the same fixed-seed record stream into two fresh trees — one
    record at a time, and in batches of ``batch_size`` — and reports the
    amortization: page writes per pass, their reduction ratio, simulated
    I/O+CPU seconds and wall clock.  Two invariants ride along as
    bench-level proofs of the batch path's contract: the *read* counters
    (node accesses, buffer hits/misses) must be bit-identical, and the
    resulting trees must have equal structure digests — batching may
    only ever remove write charges, never change the tree or what gets
    read.
    """
    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=seed, scale_records=n_records)
    records = generator.generate(n_records)

    def insert_pass(use_batch):
        tree = DCTree(schema, config=DCTreeConfig())
        start = time.perf_counter()
        if use_batch:
            for begin in range(0, len(records), batch_size):
                tree.insert_batch(records[begin:begin + batch_size])
        else:
            for record in records:
                tree.insert(record)
        wall = time.perf_counter() - start
        return wall, tree.tracker.snapshot(), structure_digest(tree)

    serial_wall, serial_stats, serial_digest = insert_pass(False)
    batched_wall, batched_stats, batched_digest = insert_pass(True)
    reads_identical = (
        serial_stats.node_accesses == batched_stats.node_accesses
        and serial_stats.buffer_hits == batched_stats.buffer_hits
        and serial_stats.buffer_misses == batched_stats.buffer_misses
    )
    return {
        "records": n_records,
        "seed": seed,
        "batch_size": batch_size,
        "serial_wall_seconds": serial_wall,
        "batched_wall_seconds": batched_wall,
        "serial_page_writes": serial_stats.page_writes,
        "batched_page_writes": batched_stats.page_writes,
        "page_write_reduction": _ratio(
            serial_stats.page_writes, batched_stats.page_writes
        ),
        "serial_simulated_seconds": serial_stats.simulated_seconds(),
        "batched_simulated_seconds": batched_stats.simulated_seconds(),
        "simulated_speedup": _ratio(
            serial_stats.simulated_seconds(),
            batched_stats.simulated_seconds(),
        ),
        "reads_identical": reads_identical,
        "cpu_not_worse": batched_stats.cpu_units <= serial_stats.cpu_units,
        "structure_identical": serial_digest == batched_digest,
    }


def compare_to_baseline(current, baseline, tolerance, strict_wall=False):
    """Regressions of ``current`` vs ``baseline``; returns a problem list.

    Deterministic counters may not grow beyond ``baseline * (1 +
    tolerance)``; ops/sec may not drop below ``baseline / (1 + tolerance)``
    when ``strict_wall`` is set.  A workload-parameter mismatch makes the
    comparison meaningless and is reported as a problem itself.
    """
    problems = []
    for key in ("records", "queries", "repeats", "seed"):
        if current.get(key) != baseline.get(key):
            problems.append(
                "workload mismatch: %s is %r, baseline has %r"
                % (key, current.get(key), baseline.get(key))
            )
    if problems:
        return problems
    if baseline.get("digest") and current["digest"] != baseline["digest"]:
        problems.append(
            "result digest changed: %s -> %s (query answers differ from "
            "the baseline run)" % (baseline["digest"], current["digest"])
        )
    base_cached = baseline["modes"]["cached"]
    cur_cached = current["modes"]["cached"]
    for phase in ("insert", "query", "groupby", "repeat"):
        # Entries predating the repeat phase lack it; the "repeats"
        # workload-parameter check above already catches real mismatches.
        if phase not in base_cached or phase not in cur_cached:
            continue
        for counter in _CHECKED_COUNTERS:
            base_value = base_cached[phase][counter]
            cur_value = cur_cached[phase][counter]
            if cur_value > base_value * (1.0 + tolerance):
                problems.append(
                    "%s %s regressed: %d -> %d (>%d%% tolerance)"
                    % (phase, counter, base_value, cur_value,
                       round(tolerance * 100))
                )
        if strict_wall:
            base_rate = base_cached[phase]["ops_per_second"]
            cur_rate = cur_cached[phase]["ops_per_second"]
            if base_rate > 0 and cur_rate < base_rate / (1.0 + tolerance):
                problems.append(
                    "%s ops/sec regressed: %.1f -> %.1f (>%d%% tolerance)"
                    % (phase, base_rate, cur_rate, round(tolerance * 100))
                )
    base_batch = baseline.get("batch_insert")
    cur_batch = current.get("batch_insert")
    # Entries predating the insert-heavy batch phase lack it.
    if base_batch and cur_batch \
            and base_batch.get("batch_size") == cur_batch.get("batch_size"):
        base_writes = base_batch["batched_page_writes"]
        cur_writes = cur_batch["batched_page_writes"]
        if cur_writes > base_writes * (1.0 + tolerance):
            problems.append(
                "batched insert page writes regressed: %d -> %d (>%d%% "
                "tolerance)"
                % (base_writes, cur_writes, round(tolerance * 100))
            )
    return problems


def _format_summary(entry):
    lines = [
        "# bench regression — profile %s (%d records, %d queries, "
        "%d re-asks, seed %d)"
        % (entry["profile"], entry["records"], entry["queries"],
           entry["repeats"], entry["seed"]),
        "phase    mode      wall(s)    ops/s   node-acc   page-io   cpu-units",
    ]
    for phase in ("insert", "query", "groupby", "repeat"):
        for mode in ("cached", "uncached"):
            stats = entry["modes"][mode][phase]
            lines.append(
                "%-8s %-8s %8.3f %8.1f %10d %9d %11d"
                % (phase, mode, stats["wall_seconds"],
                   stats["ops_per_second"], stats["node_accesses"],
                   stats["page_ios"], stats["cpu_units"])
            )
    speedup = entry["speedup"]
    lines.append(
        "speedup (uncached/cached wall): query %.2fx, group-by %.2fx, "
        "repeat %.2fx, query-heavy %.2fx, total %.2fx"
        % (speedup["query_wall"], speedup["groupby_wall"],
           speedup["repeat_wall"], speedup["query_heavy_wall"],
           speedup["total_wall"])
    )
    batch = entry.get("batch_insert")
    if batch:
        lines.append(
            "batched inserts (size %d): page writes %d -> %d (%.2fx "
            "reduction), simulated %.2fx faster, reads identical: %s, "
            "structure identical: %s"
            % (batch["batch_size"], batch["serial_page_writes"],
               batch["batched_page_writes"], batch["page_write_reduction"],
               batch["simulated_speedup"], batch["reads_identical"],
               batch["structure_identical"])
        )
    return "\n".join(lines)


def load_bench_file(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench regression",
        description="Hot-path benchmark with baseline regression checking.",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small fast profile (<60 s, CI gate)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional regression (default 0.20)")
    parser.add_argument("--strict-wall", action="store_true",
                        help="also fail on wall-clock ops/sec regressions")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail when the cached/uncached query-heavy "
                             "wall speedup drops below this factor")
    parser.add_argument("--min-repeat-speedup", type=float, default=None,
                        help="fail when the repeated-query (result-cache) "
                             "wall speedup drops below this factor")
    parser.add_argument("--min-batch-speedup", type=float, default=None,
                        help="fail when the insert-heavy phase's batched "
                             "page-write reduction drops below this factor "
                             "(also fails when batching perturbs reads or "
                             "tree structure)")
    parser.add_argument("--max-wal-overhead", type=float, default=None,
                        metavar="RATIO",
                        help="also measure the WAL insert-path overhead "
                             "and fail when wal/plain wall exceeds RATIO "
                             "(or when counters differ with the WAL on)")
    parser.add_argument("--wal-fsync-interval", type=int, default=64,
                        help="fsync batching for the WAL-overhead "
                             "measurement (default 64)")
    parser.add_argument("--emit-metrics", action="store_true",
                        help="run an extra observability-enabled cached "
                             "pass, embed its metrics snapshot in the "
                             "report and fail when tracing perturbs the "
                             "deterministic counters or results")
    parser.add_argument("--output", default="BENCH_core.json",
                        help="benchmark file to compare against and update")
    parser.add_argument("--no-write", action="store_true",
                        help="compare only; leave the benchmark file alone")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="always dump the freshly measured entry to "
                             "PATH as JSON (CI artifact), pass or fail")
    args = parser.parse_args(argv)

    profile = "smoke" if args.smoke else "full"
    entry = run_benchmark(profile=profile, seed=args.seed,
                          emit_metrics=args.emit_metrics)
    print(_format_summary(entry))

    document = load_bench_file(args.output) or {"profiles": {}}
    baseline = document.get("profiles", {}).get(profile)
    failed = False
    if baseline is None:
        print("no committed baseline for profile %r yet — recording one"
              % profile)
    else:
        problems = compare_to_baseline(
            entry, baseline, args.tolerance, strict_wall=args.strict_wall
        )
        if problems:
            failed = True
            for problem in problems:
                print("REGRESSION: %s" % problem)
        else:
            print("no regression vs. committed baseline (tolerance %d%%)"
                  % round(args.tolerance * 100))
    if args.min_speedup is not None:
        achieved = entry["speedup"]["query_heavy_wall"]
        if achieved < args.min_speedup:
            failed = True
            print("REGRESSION: query-heavy speedup %.2fx below required "
                  "%.2fx" % (achieved, args.min_speedup))
    if args.min_repeat_speedup is not None:
        achieved = entry["speedup"]["repeat_wall"]
        if achieved < args.min_repeat_speedup:
            failed = True
            print("REGRESSION: repeated-query speedup %.2fx below required "
                  "%.2fx" % (achieved, args.min_repeat_speedup))
    if args.min_batch_speedup is not None:
        batch = entry["batch_insert"]
        if not batch["reads_identical"]:
            failed = True
            print("REGRESSION: batched inserts changed the read counters "
                  "(batching may only coalesce writes)")
        if not batch["structure_identical"]:
            failed = True
            print("REGRESSION: batched inserts built a different tree "
                  "(must be structurally identical to serial insertion)")
        if batch["page_write_reduction"] < args.min_batch_speedup:
            failed = True
            print("REGRESSION: batched page-write reduction %.2fx below "
                  "required %.2fx"
                  % (batch["page_write_reduction"], args.min_batch_speedup))
    if args.max_wal_overhead is not None:
        durability = measure_wal_overhead(
            PROFILES[profile]["records"], seed=args.seed,
            fsync_interval=args.wal_fsync_interval,
        )
        entry["durability"] = durability
        print(
            "wal overhead: %.2fx wall (plain %.3fs, logged %.3fs, "
            "%d bytes logged, fsync every %d), counters identical: %s"
            % (durability["overhead_ratio"],
               durability["plain_wall_seconds"],
               durability["wal_wall_seconds"], durability["wal_bytes"],
               durability["fsync_interval"],
               durability["counters_identical"])
        )
        if not durability["counters_identical"]:
            failed = True
            print("REGRESSION: WAL perturbed the deterministic counters "
                  "(the durability layer must be invisible to the cost "
                  "model)")
        if durability["overhead_ratio"] > args.max_wal_overhead:
            failed = True
            print("REGRESSION: WAL wall overhead %.2fx above allowed %.2fx"
                  % (durability["overhead_ratio"], args.max_wal_overhead))
    if args.emit_metrics:
        observability = entry["observability"]
        span_family = observability["metrics"].get(
            "repro_spans_total", {"samples": []}
        )
        spans = sum(
            sample["value"] for sample in span_family["samples"]
        )
        print(
            "observability: %d span(s) recorded; digest identical: %s, "
            "deterministic counters identical: %s"
            % (spans, observability["digest_identical"],
               observability["counters_identical"])
        )
        if not observability["digest_identical"]:
            failed = True
            print("REGRESSION: tracing changed the query results (the "
                  "telemetry layer must be strictly observational)")
        if not observability["counters_identical"]:
            failed = True
            print("REGRESSION: tracing perturbed the deterministic "
                  "counters (node accesses / page I/Os / CPU units must "
                  "be bit-identical with observability on)")

    if args.report is not None:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote measurement report to %s" % args.report)

    if not args.no_write and not failed:
        document.setdefault("profiles", {})[profile] = entry
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.output)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
