"""The public facade: a dynamically updatable warehouse over one backend.

:class:`Warehouse` binds a cube schema to one of the three index backends
("dc-tree", "x-tree", "scan"), hides their query-form differences (the
X-tree needs the MDS→MBR conversion plus the exact predicate) and offers a
label-based query interface, so downstream code never touches IDs.

>>> warehouse = Warehouse.tpcd()
>>> record = warehouse.insert(
...     (("EUROPE", "GERMANY", "BUILDING", "Customer#1"),
...      ("AMERICA", "CANADA", "Supplier#1"),
...      ("Brand#11", "STANDARD ANODIZED TIN", "Part#1"),
...      ("1996", "1996-03", "1996-03-15")),
...     (4200.0,))
>>> warehouse.query("sum", where={"Customer": ("Region", ["EUROPE"])})
4200.0
"""

from __future__ import annotations

from .config import DCTreeConfig, XTreeConfig
from .core.tree import DCTree
from .errors import QueryError, SchemaError
from .scan.table import FlatTable
from .tpcd.schema import make_tpcd_schema
from .workload.queries import RangeQuery, query_from_labels
from .xtree.tree import XTree

#: The selectable index backends.
BACKENDS = ("dc-tree", "x-tree", "scan")


class Warehouse:
    """A data warehouse with a fully dynamic index.

    Parameters
    ----------
    schema:
        The cube schema (shared between warehouses to compare backends on
        identical IDs).
    backend:
        ``"dc-tree"`` (the paper's contribution), ``"x-tree"`` or
        ``"scan"``.
    config:
        Backend-specific configuration (:class:`DCTreeConfig` or
        :class:`XTreeConfig`); ignored by the scan backend.
    storage_config:
        Buffer-pool / page-size settings for the I/O simulation.
    """

    def __init__(self, schema, backend="dc-tree", config=None,
                 storage_config=None):
        if backend not in BACKENDS:
            raise SchemaError(
                "unknown backend %r (choose from %s)"
                % (backend, ", ".join(BACKENDS))
            )
        self.schema = schema
        self.backend = backend
        if backend == "dc-tree":
            if config is not None and not isinstance(config, DCTreeConfig):
                raise SchemaError("dc-tree backend needs a DCTreeConfig")
            self.index = DCTree(schema, config=config,
                                storage_config=storage_config)
        elif backend == "x-tree":
            if config is not None and not isinstance(config, XTreeConfig):
                raise SchemaError("x-tree backend needs an XTreeConfig")
            self.index = XTree(schema, config=config,
                               storage_config=storage_config)
        else:
            self.index = FlatTable(schema, storage_config=storage_config)

    @classmethod
    def tpcd(cls, backend="dc-tree", config=None, storage_config=None):
        """A warehouse over a fresh TPC-D cube schema (Fig. 8/9)."""
        return cls(make_tpcd_schema(), backend, config, storage_config)

    @classmethod
    def wrap(cls, index):
        """Wrap an existing index (e.g. a bulk-loaded or deserialized
        tree) in a warehouse facade; the backend is inferred from the
        index type."""
        if isinstance(index, DCTree):
            backend = "dc-tree"
        elif isinstance(index, XTree):
            backend = "x-tree"
        elif isinstance(index, FlatTable):
            backend = "scan"
        else:
            raise SchemaError(
                "cannot wrap %r as a warehouse backend"
                % type(index).__name__
            )
        warehouse = cls.__new__(cls)
        warehouse.schema = index.schema
        warehouse.backend = backend
        warehouse.index = index
        return warehouse

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def insert(self, dimension_values, measures):
        """Insert one cell given label tuples; returns the stored record."""
        record = self.schema.record(dimension_values, measures)
        self.index.insert(record)
        return record

    def insert_record(self, record):
        """Insert an already-built :class:`DataRecord`."""
        self.index.insert(record)
        return record

    def insert_many(self, rows):
        """Insert many ``(dimension_values, measures)`` pairs as one batch.

        Builds the records up front, then routes them through the
        backend's amortized ``insert_batch`` when it has one (the
        DC-tree and the scan table charge page writes once per touched
        node/page per batch); backends without a batch path fall back to
        serial inserts, which yields the identical tree at the serial
        write cost.  Returns the stored records.
        """
        records = [
            self.schema.record(dimension_values, measures)
            for dimension_values, measures in rows
        ]
        self.insert_records(records)
        return records

    def insert_records(self, records):
        """Insert already-built records as one batch (see
        :meth:`insert_many` for the dispatch semantics)."""
        records = list(records)
        if not records:
            return records
        insert_batch = getattr(self.index, "insert_batch", None)
        if insert_batch is not None:
            insert_batch(records)
        else:
            for record in records:
                self.index.insert(record)
        return records

    def delete(self, record):
        """Delete one record (by value)."""
        self.index.delete(record)

    def __len__(self):
        return len(self.index)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def query(self, op="sum", measure=0, where=None, explain=False):
        """Aggregate ``op`` over the cells matching ``where``.

        ``where`` maps dimension names to ``(level_name, labels)``
        constraints (see :func:`repro.workload.query_from_labels`);
        ``None`` aggregates the whole cube.  ``explain=True`` (dc-tree
        only) returns an :class:`~repro.obs.ExplainResult` with the
        per-level :class:`~repro.obs.QueryProfile` of the call.
        """
        range_query = query_from_labels(self.schema, where or {})
        return self.execute(range_query, op=op, measure=measure,
                            explain=explain)

    def execute(self, range_query, op="sum", measure=0, explain=False):
        """Run a prepared :class:`RangeQuery` against the backend."""
        self._check_query(range_query)
        if explain:
            self._require_explain_backend()
            return self.index.range_query(
                range_query.mds, op=op, measure=measure, explain=True
            )
        if self.backend == "x-tree":
            return self.index.range_query(
                range_query.to_mbr(), range_query.predicate(),
                op=op, measure=measure,
            )
        return self.index.range_query(range_query.mds, op=op, measure=measure)

    def _require_explain_backend(self):
        if self.backend != "dc-tree":
            raise QueryError(
                "EXPLAIN requires the dc-tree backend (its traversal is "
                "what the profiler attributes); got %r" % self.backend
            )

    def count(self, where=None):
        """Number of cells matching ``where``."""
        return self.query(op="count", where=where)

    def summary(self, measure=0, where=None):
        """Sum, count, min and max of one measure in a single pass.

        Returns a :class:`~repro.cube.aggregation.MeasureSummary`.  The
        DC-tree computes it in one traversal from its materialized
        vectors; the other backends fold the matching records.
        """
        from .cube.aggregation import MeasureSummary

        range_query = query_from_labels(self.schema, where or {})
        if self.backend == "dc-tree":
            return self.index.range_summary(range_query.mds, measure=measure)
        measure_index = (
            self.schema.measure_index(measure)
            if isinstance(measure, str) else measure
        )
        summary = MeasureSummary()
        for record in self.records_matching(range_query):
            summary.add_value(record.measures[measure_index])
        return summary

    def estimate(self, where=None, max_depth=1):
        """Cheap cardinality estimate for ``where``.

        The DC-tree estimates from its directory without reading data
        nodes; the baselines have no directory statistics and fall back
        to the exact count.
        """
        range_query = query_from_labels(self.schema, where or {})
        if self.backend == "dc-tree":
            return self.index.estimate_count(
                range_query.mds, max_depth=max_depth
            )
        return float(self.count(where=where))

    def group_by(self, dim_name, level_name, op="sum", measure=0,
                 where=None, explain=False):
        """Roll up one dimension: ``{label: aggregate}`` per value.

        Groups carrying the same label are merged (TPC-D market segments
        repeat under every nation; an analyst grouping by segment wants
        five rows, not 125).  ``where`` filters exactly like
        :meth:`query`.  Works on every backend; the DC-tree answers it
        in one traversal using its materialized aggregates.
        """
        dim_index = self.schema.dimension_index(dim_name)
        dimension = self.schema.dimensions[dim_index]
        try:
            level = dimension.level_names.index(level_name)
        except ValueError:
            raise SchemaError(
                "dimension %r has no level %r (levels: %s)"
                % (dim_name, level_name, ", ".join(dimension.level_names))
            ) from None
        range_query = query_from_labels(self.schema, where or {})
        hierarchy = dimension.hierarchy
        from .cube.aggregation import MeasureSummary, StreamingAggregator

        merged = {}
        if self.backend == "dc-tree":
            profile = None
            groups = self.index.group_by_aggregators(
                dim_index, level, op=op, measure=measure,
                range_mds=range_query.mds, explain=explain,
            )
            if explain:
                groups, profile = groups
            for value, aggregator in groups.items():
                label = hierarchy.label(value)
                summary = merged.setdefault(label, MeasureSummary())
                summary.add_summary(aggregator.summary)
            if explain:
                from .obs import ExplainResult

                return ExplainResult(
                    {
                        label: summary.aggregate(op)
                        for label, summary in merged.items()
                    },
                    profile,
                )
        elif explain:
            self._require_explain_backend()
        else:
            measure_index = (
                self.schema.measure_index(measure)
                if isinstance(measure, str) else measure
            )
            for record in self.records_matching(range_query):
                value = record.value_at_level(dim_index, level)
                label = hierarchy.label(value)
                summary = merged.setdefault(label, MeasureSummary())
                summary.add_value(record.measures[measure_index])
        probe = StreamingAggregator(op)  # validates op
        del probe
        return {
            label: summary.aggregate(op) for label, summary in merged.items()
        }

    def records_matching(self, range_query):
        """The records matching a prepared query."""
        self._check_query(range_query)
        if self.backend == "x-tree":
            return self.index.range_records(
                range_query.to_mbr(), range_query.predicate()
            )
        return self.index.range_records(range_query.mds)

    def _check_query(self, range_query):
        if not isinstance(range_query, RangeQuery):
            raise SchemaError(
                "expected a RangeQuery, got %r" % type(range_query).__name__
            )
        if range_query.schema is not self.schema:
            raise SchemaError(
                "query was built against a different schema instance"
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def tracker(self):
        """The backend's I/O/CPU tracker."""
        return self.index.tracker

    @property
    def observability(self):
        """The backend's telemetry bundle (None unless a DC-tree has
        ``DCTreeConfig.observability`` on)."""
        return getattr(self.index, "observability", None)

    def byte_size(self):
        """Approximate on-disk footprint of the index in bytes."""
        return self.index.byte_size()

    def __repr__(self):
        return "Warehouse(backend=%r, records=%d)" % (
            self.backend,
            len(self.index),
        )
