"""Tunable parameters for the index structures and the cost model.

All knobs live here so experiments (and the ablation benches) can vary them
without touching algorithm code.  Defaults follow the paper where it gives
numbers and common X-tree/R*-tree practice where it does not.
"""

from __future__ import annotations

import os

from .errors import SchemaError


class DCTreeConfig:
    """Parameters of the DC-tree.

    Parameters
    ----------
    dir_capacity:
        Maximum number of entries of a regular directory node (one block).
        Supernodes hold multiples of this (§4.2: a supernode splits once
        "the directory node capacity multiplied by the number of blocks of
        the supernode is exceeded").
    leaf_capacity:
        Maximum number of data records in a regular data node.
    min_fanout_fraction:
        A split is "too unbalanced" when the smaller group would hold less
        than this fraction of the entries (X-tree heritage; the X-tree paper
        uses 35 %).
    max_overlap_fraction:
        A split is rejected when ``overlap(G1, G2) / min(volume(G1),
        volume(G2))`` exceeds this bound ("overlap is not too high",
        Fig. 5); the X-tree paper found 20 % to be a good threshold.
    split_algorithm:
        ``"quadratic"`` is the paper's hierarchy split (Fig. 6);
        ``"linear"`` is the cheaper single-pass variant built for the
        future-work ablation.
    use_materialized_aggregates:
        When False the range-query algorithm never uses the aggregates
        stored in directory entries and always descends to the data nodes
        (ablation `abl-measures`).
    use_hot_path_caches:
        When True (default) the query traversals classify each directory
        entry with the fused single-pass ``mds.classify`` test, which leans
        on the memoized MDS adaptations and the O(1) hierarchy ancestor
        tables.  When False they fall back to the separate
        ``overlaps`` + ``contains`` call pair — the pre-acceleration code
        path the regression benchmark prices the caches against.  Results
        are identical either way (enforced by the equivalence test suite).
    use_result_cache:
        When True (default) full ``range_query`` / ``group_by`` answers
        are memoized in a per-tree LRU keyed on (query digest, tree
        version); every insert/delete/bulk-load bumps the version, so a
        stale answer can never be served.  Cache hits replay the recorded
        tracker charges, keeping deterministic counters identical with the
        cache on or off (see docs/cost_model.md).  Also gated by the
        global ``repro.hotpath`` ablation switch.
    result_cache_capacity:
        Maximum number of memoized answers held per tree (LRU-bounded).
    wal_fsync_interval:
        Fsync batching of an attached write-ahead log (see
        :mod:`repro.persist.wal`): 1 syncs every append (strongest
        durability, the default), N syncs every Nth append, 0 leaves
        syncing to the OS.  Irrelevant until a durability sink is
        attached to the tree.
    observability:
        When True the tree carries a :class:`repro.obs.Observability`
        bundle: structured spans around every mutator/query/WAL/recovery
        operation plus a metrics registry fed from the deterministic
        counters.  Telemetry is observational only — deterministic
        counters, query answers and ``tree_version`` are bit-identical
        with it on or off (enforced by the invariance tests and the
        ``--emit-metrics`` bench gate).  ``None`` (the default) defers
        to the ``REPRO_OBSERVABILITY`` environment variable (truthy
        values: ``1``/``true``/``yes``/``on``), which CI uses to force
        the whole suite through the instrumented paths.
    capacity_mode:
        ``"entries"`` (default) bounds nodes by entry count —
        predictable and what the comparison experiments use.
        ``"bytes"`` bounds them by *serialized size* against the page
        size: the faithful disk model for MDSs, whose size varies with
        their value sets ("an MDS has to store more information and it
        has variable size", §3.2).  A directory entry with a huge MDS
        then legitimately crowds out its siblings.
    """

    def __init__(
        self,
        dir_capacity=16,
        leaf_capacity=64,
        min_fanout_fraction=0.35,
        max_overlap_fraction=0.20,
        split_algorithm="quadratic",
        use_materialized_aggregates=True,
        capacity_mode="entries",
        use_hot_path_caches=True,
        use_result_cache=True,
        result_cache_capacity=128,
        wal_fsync_interval=1,
        observability=None,
    ):
        if dir_capacity < 4:
            raise SchemaError("dir_capacity must be at least 4")
        if leaf_capacity < 4:
            raise SchemaError("leaf_capacity must be at least 4")
        if not 0.0 < min_fanout_fraction <= 0.5:
            raise SchemaError("min_fanout_fraction must be in (0, 0.5]")
        if max_overlap_fraction < 0.0:
            raise SchemaError("max_overlap_fraction must be non-negative")
        if split_algorithm not in ("quadratic", "linear"):
            raise SchemaError(
                "split_algorithm must be 'quadratic' or 'linear', got %r"
                % (split_algorithm,)
            )
        if capacity_mode not in ("entries", "bytes"):
            raise SchemaError(
                "capacity_mode must be 'entries' or 'bytes', got %r"
                % (capacity_mode,)
            )
        if result_cache_capacity < 1:
            raise SchemaError("result_cache_capacity must be at least 1")
        if not isinstance(wal_fsync_interval, int) or wal_fsync_interval < 0:
            raise SchemaError(
                "wal_fsync_interval must be a non-negative integer"
            )
        self.dir_capacity = dir_capacity
        self.leaf_capacity = leaf_capacity
        self.min_fanout_fraction = min_fanout_fraction
        self.max_overlap_fraction = max_overlap_fraction
        self.split_algorithm = split_algorithm
        self.use_materialized_aggregates = use_materialized_aggregates
        self.capacity_mode = capacity_mode
        self.use_hot_path_caches = bool(use_hot_path_caches)
        self.use_result_cache = bool(use_result_cache)
        self.result_cache_capacity = result_cache_capacity
        self.wal_fsync_interval = wal_fsync_interval
        if observability is None:
            env = os.environ.get("REPRO_OBSERVABILITY", "")
            observability = env.strip().lower() in ("1", "true", "yes", "on")
        self.observability = bool(observability)

    def min_dir_fanout(self):
        """Smallest acceptable group size when splitting a directory node."""
        return max(2, int(self.dir_capacity * self.min_fanout_fraction))

    def min_leaf_fanout(self):
        """Smallest acceptable group size when splitting a data node."""
        return max(2, int(self.leaf_capacity * self.min_fanout_fraction))


class XTreeConfig:
    """Parameters of the X-tree baseline.

    ``max_overlap_fraction`` triggers the fallback from the topological
    (R*-style) split to the overlap-minimal split, and
    ``min_fanout_fraction`` decides when the overlap-minimal split is too
    unbalanced and a supernode must be created — both straight from the
    X-tree paper (Berchtold/Keim/Kriegel, VLDB 1996).
    """

    def __init__(
        self,
        dir_capacity=32,
        leaf_capacity=64,
        min_fanout_fraction=0.35,
        max_overlap_fraction=0.20,
    ):
        if dir_capacity < 4:
            raise SchemaError("dir_capacity must be at least 4")
        if leaf_capacity < 4:
            raise SchemaError("leaf_capacity must be at least 4")
        if not 0.0 < min_fanout_fraction <= 0.5:
            raise SchemaError("min_fanout_fraction must be in (0, 0.5]")
        if max_overlap_fraction < 0.0:
            raise SchemaError("max_overlap_fraction must be non-negative")
        self.dir_capacity = dir_capacity
        self.leaf_capacity = leaf_capacity
        self.min_fanout_fraction = min_fanout_fraction
        self.max_overlap_fraction = max_overlap_fraction

    def min_dir_fanout(self):
        return max(2, int(self.dir_capacity * self.min_fanout_fraction))

    def min_leaf_fanout(self):
        return max(2, int(self.leaf_capacity * self.min_fanout_fraction))


class CostModel:
    """Converts counted events into a simulated elapsed time.

    The paper measured wall-clock seconds on 1999 hardware with
    disk-resident trees; we count buffer misses (random page I/Os) and CPU
    work units (one unit ≈ one MDS/MBR set operation on one attribute
    value) and weight them.  Defaults model a 10 ms random I/O against a
    1 µs work unit — the classic four-orders-of-magnitude gap that makes
    page accesses dominate, as they did in the paper's setting.
    """

    def __init__(self, t_io=10e-3, t_cpu=1e-6):
        if t_io <= 0 or t_cpu <= 0:
            raise SchemaError("cost-model times must be positive")
        self.t_io = t_io
        self.t_cpu = t_cpu

    def simulated_seconds(self, page_misses, cpu_units):
        """Simulated elapsed time for the counted events."""
        return page_misses * self.t_io + cpu_units * self.t_cpu


class StorageConfig:
    """Parameters of the simulated paged store.

    ``page_size`` is the block size in bytes (only used for reporting the
    trees' footprints and matching the buffer budgets of compared indexes);
    ``buffer_pages`` is the LRU buffer-pool capacity in pages.  A
    non-positive ``buffer_pages`` means "everything fits in memory" (every
    access after the first is a hit).
    """

    def __init__(self, page_size=4096, buffer_pages=64):
        if page_size < 256:
            raise SchemaError("page_size must be at least 256 bytes")
        self.page_size = page_size
        self.buffer_pages = buffer_pages
