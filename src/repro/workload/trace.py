"""Workload traces: save a query workload, replay it later.

Benchmark reproducibility needs frozen workloads: the same queries, in
the same order, against the same data.  A trace file stores each query's
range MDS (per dimension: relevant level + attribute-value IDs) as JSON.

IDs are stable for the lifetime of a schema instance *and* across
:mod:`repro.persist` save/load (which restores hierarchies verbatim), so
the canonical flow is: save the warehouse, save the trace, and replay
both anywhere.  A trace is rejected against a hierarchy that does not
contain its IDs.
"""

from __future__ import annotations

import json

from ..core.mds import MDS
from ..errors import QueryError, StorageError
from .queries import RangeQuery

#: Trace file format version.
TRACE_VERSION = 1


def queries_to_dict(queries):
    """Serialize an iterable of :class:`RangeQuery` to a JSON-able dict."""
    rows = []
    for query in queries:
        _check_query(query)
        mds = query.mds
        rows.append(
            [
                [mds.level(dim), sorted(mds.value_set(dim))]
                for dim in range(mds.n_dimensions)
            ]
        )
    return {"version": TRACE_VERSION, "queries": rows}


def queries_from_dict(data, schema):
    """Rebuild :class:`RangeQuery` objects against ``schema``."""
    if data.get("version") != TRACE_VERSION:
        raise StorageError(
            "unsupported trace version %r" % (data.get("version"),)
        )
    queries = []
    for row in data["queries"]:
        if len(row) != schema.n_dimensions:
            raise StorageError(
                "trace query has %d dimensions, schema has %d"
                % (len(row), schema.n_dimensions)
            )
        sets = []
        levels = []
        for dim, (level, values) in enumerate(row):
            hierarchy = schema.dimensions[dim].hierarchy
            for value in values:
                if value not in hierarchy:
                    raise StorageError(
                        "trace value %r unknown in dimension %r (traces "
                        "bind to a schema instance or its persisted copy)"
                        % (value, schema.dimensions[dim].name)
                    )
                if hierarchy.level_of(value) != level:
                    raise StorageError(
                        "trace value %r is not at level %d" % (value, level)
                    )
            levels.append(level)
            sets.append(set(values))
        queries.append(RangeQuery(schema, MDS(sets, levels)))
    return queries


def write_trace(path, queries):
    """Write a workload trace; returns the number of queries written."""
    data = queries_to_dict(queries)
    with open(path, "w") as handle:
        json.dump(data, handle)
    return len(data["queries"])


def read_trace(path, schema):
    """Read a workload trace back as :class:`RangeQuery` objects."""
    with open(path) as handle:
        data = json.load(handle)
    return queries_from_dict(data, schema)


def replay(warehouse, queries, op="sum", measure=0):
    """Run ``queries`` in order; returns the list of results.

    Works with anything exposing ``execute`` (a plain or hybrid
    warehouse).
    """
    results = []
    for query in queries:
        results.append(warehouse.execute(query, op=op, measure=measure))
    return results


def _check_query(query):
    if not isinstance(query, RangeQuery):
        raise QueryError("traces hold RangeQuery objects, got %r" % (query,))
