"""Range-query workload generation (§5.2 of the paper).

A range query is specified by a *range MDS*: per dimension, a randomly
chosen concept-hierarchy level (any functional attribute — Region, Nation,
Market Segment or Customer for the Customer dimension) and a random subset
of the values existing at that level, capped by the selectivity ("a
selectivity of 25 % involves a range that contains up to 25 % of all
attribute values of the chosen level in each dimension").

For the X-tree the MDS is converted into a *range MBR* through the total
ordering of the assigned IDs (Fig. 10): the chosen level's flat dimension
is constrained to ``[min(ids), max(ids)]``, the remaining flat dimensions
of the same cube dimension stay unconstrained.  The conversion is lossy
(an interval covers IDs that are not in the set), so every query also
carries the exact predicate the X-tree applies at its data nodes.
"""

from __future__ import annotations

import random

from ..core.mds import MDS, covers_record
from ..errors import QueryError
from ..xtree.mbr import MBR


class RangeQuery:
    """One executable range query in both MDS and MBR form."""

    def __init__(self, schema, mds):
        if mds.n_dimensions != schema.n_dimensions:
            raise QueryError(
                "query MDS has %d dimensions, schema has %d"
                % (mds.n_dimensions, schema.n_dimensions)
            )
        self.schema = schema
        self.mds = mds
        self._hierarchies = tuple(d.hierarchy for d in schema.dimensions)

    def to_mbr(self):
        """The query as a range MBR over the flattened space (§5.2).

        Unconstrained flat dimensions span the full 32-bit ID range; the
        chosen level of each cube dimension spans the ID interval of its
        value set.
        """
        n_flat = self.schema.n_flat_attributes
        lows = [0] * n_flat
        highs = [0xFFFFFFFF] * n_flat
        for dim in range(self.schema.n_dimensions):
            level = self.mds.level(dim)
            top = self._hierarchies[dim].top_level
            if level >= top:
                continue
            values = self.mds.value_set(dim)
            position = self.schema.flat_position(dim, level)
            lows[position] = min(values)
            highs[position] = max(values)
        return MBR(lows, highs)

    def predicate(self):
        """Exact membership test for one record (leaf-level filtering)."""
        mds = self.mds
        hierarchies = self._hierarchies

        def matches(record):
            return covers_record(mds, record, hierarchies)

        return matches

    def matches(self, record):
        """Exact membership test (convenience form)."""
        return covers_record(self.mds, record, self._hierarchies)

    def describe(self):
        """Human-readable rendering of the query."""
        parts = []
        for dim_index, dimension in enumerate(self.schema.dimensions):
            level = self.mds.level(dim_index)
            hierarchy = dimension.hierarchy
            if level >= hierarchy.top_level:
                parts.append("%s=ALL" % dimension.name)
                continue
            labels = sorted(
                hierarchy.label(v) for v in self.mds.value_set(dim_index)
            )
            shown = ", ".join(labels[:4])
            if len(labels) > 4:
                shown += ", ... (%d values)" % len(labels)
            parts.append(
                "%s.%s in {%s}"
                % (dimension.name, hierarchy.level_name(level), shown)
            )
        return " AND ".join(parts)

    def __repr__(self):
        return "RangeQuery(%s)" % self.describe()


class QueryGenerator:
    """Random range queries at a given selectivity (§5.2).

    Parameters
    ----------
    schema:
        The (already populated) cube schema; value sets are drawn from the
        values that exist in its concept hierarchies.
    selectivity:
        Per-dimension fraction of the chosen level's values that the query
        may contain, e.g. ``0.05`` for the paper's 5 % experiments.
    seed:
        RNG seed for reproducible workloads.
    min_levels:
        Optional per-dimension lower bounds for the random level choice
        (used e.g. to generate only queries a materialized view of that
        granularity can answer).
    constrain_dims:
        ``None`` (default) constrains every dimension, as §5.2 of the
        paper does.  An integer ``k`` picks ``k`` random dimensions per
        query and leaves the others at ALL — the drill-down shape of
        typical interactive OLAP sessions.
    """

    def __init__(self, schema, selectivity, seed=0, min_levels=None,
                 constrain_dims=None):
        if not 0.0 < selectivity <= 1.0:
            raise QueryError(
                "selectivity must be in (0, 1], got %r" % (selectivity,)
            )
        if min_levels is not None and len(min_levels) != schema.n_dimensions:
            raise QueryError(
                "min_levels needs one entry per dimension"
            )
        if constrain_dims is not None and not (
            1 <= constrain_dims <= schema.n_dimensions
        ):
            raise QueryError(
                "constrain_dims must be between 1 and %d"
                % schema.n_dimensions
            )
        self.schema = schema
        self.selectivity = selectivity
        self.min_levels = tuple(min_levels) if min_levels else None
        self.constrain_dims = constrain_dims
        self._rng = random.Random(seed)
        self._hierarchies = tuple(d.hierarchy for d in schema.dimensions)

    def query(self):
        """One random range query."""
        if self.constrain_dims is None:
            chosen_dims = None
        else:
            chosen_dims = set(
                self._rng.sample(
                    range(self.schema.n_dimensions), self.constrain_dims
                )
            )
        sets = []
        levels = []
        for dim, hierarchy in enumerate(self._hierarchies):
            if chosen_dims is not None and dim not in chosen_dims:
                levels.append(hierarchy.top_level)
                sets.append({hierarchy.all_id})
                continue
            lowest = self.min_levels[dim] if self.min_levels else 0
            if lowest >= hierarchy.top_level:
                raise QueryError(
                    "min_levels[%d]=%d leaves no functional attribute to "
                    "query" % (dim, lowest)
                )
            level = self._rng.randrange(lowest, hierarchy.top_level)
            candidates = hierarchy.values_at_level(level)
            if not candidates:
                # The hierarchy has no values at this level yet (empty
                # warehouse); fall back to ALL.
                levels.append(hierarchy.top_level)
                sets.append({hierarchy.all_id})
                continue
            cap = max(1, int(self.selectivity * len(candidates)))
            chosen = self._rng.sample(candidates, min(cap, len(candidates)))
            levels.append(level)
            sets.append(set(chosen))
        return RangeQuery(self.schema, MDS(sets, levels))

    def queries(self, count):
        """Generate ``count`` random queries lazily."""
        for _ in range(count):
            yield self.query()


def query_from_labels(schema, constraints):
    """Build a :class:`RangeQuery` from human-readable constraints.

    ``constraints`` maps a dimension name to ``(level_name, labels)``;
    dimensions not mentioned are unconstrained (ALL).  A label selects
    *every* hierarchy node carrying it at that level (e.g. the market
    segment ``"BUILDING"`` exists once per nation, Fig. 9 — naming it
    selects all of them, which is the natural OLAP reading).

    >>> query_from_labels(schema, {"Customer": ("Region", ["EUROPE"]),
    ...                            "Time": ("Year", ["1996", "1997"])})
    """
    known = {dimension.name for dimension in schema.dimensions}
    unknown = set(constraints) - known
    if unknown:
        raise QueryError(
            "unknown dimension(s) %s (schema has: %s)"
            % (sorted(unknown), ", ".join(sorted(known)))
        )
    sets = []
    levels = []
    for dim_index, dimension in enumerate(schema.dimensions):
        hierarchy = dimension.hierarchy
        if dimension.name not in constraints:
            levels.append(hierarchy.top_level)
            sets.append({hierarchy.all_id})
            continue
        level_name, labels = constraints[dimension.name]
        try:
            level = dimension.level_names.index(level_name)
        except ValueError:
            raise QueryError(
                "dimension %r has no level %r (levels: %s)"
                % (dimension.name, level_name, ", ".join(dimension.level_names))
            ) from None
        wanted = set(labels)
        matching = {
            value
            for value in hierarchy.values_at_level(level)
            if hierarchy.label(value) in wanted
        }
        found_labels = {hierarchy.label(v) for v in matching}
        missing = wanted - found_labels
        if missing:
            raise QueryError(
                "no values labelled %s at level %r of dimension %r"
                % (sorted(missing), level_name, dimension.name)
            )
        levels.append(level)
        sets.append(matching)
    return RangeQuery(schema, MDS(sets, levels))
