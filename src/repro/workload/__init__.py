"""Range-query workloads: generation, label queries, traces."""

from .queries import QueryGenerator, RangeQuery, query_from_labels
from .trace import (
    TRACE_VERSION,
    queries_from_dict,
    queries_to_dict,
    read_trace,
    replay,
    write_trace,
)

__all__ = [
    "QueryGenerator",
    "RangeQuery",
    "TRACE_VERSION",
    "queries_from_dict",
    "queries_to_dict",
    "query_from_labels",
    "read_trace",
    "replay",
    "write_trace",
]
