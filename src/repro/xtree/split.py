"""X-tree split algorithms (Berchtold, Keim, Kriegel; VLDB 1996).

The X-tree first attempts the *topological* split (the R*-tree split:
choose the axis with the smallest margin sum, then the distribution with
the least overlap).  When the result still overlaps too much, it tries an
*overlap-minimal* split along a dimension recorded in the split history of
**all** entries — along such a dimension the entries partition without
overlap.  When that split would be too unbalanced, the node becomes a
supernode.
"""

from __future__ import annotations



class XSplitPlan:
    """Two index groups plus the dimension the split was performed along."""

    __slots__ = ("groups", "dimension", "kind")

    def __init__(self, groups, dimension, kind):
        self.groups = groups
        self.dimension = dimension
        self.kind = kind


def topological_split(mbrs, min_group):
    """R*-tree split of ``mbrs``; returns an :class:`XSplitPlan`.

    ``min_group`` bounds the smaller side of every considered distribution
    (the R*-tree's ``m``).  Always succeeds (point data cannot defeat it),
    but the result may overlap badly — the caller judges that.
    """
    n = len(mbrs)
    n_dims = mbrs[0].n_dimensions
    max_group = n - min_group

    best_axis = None
    best_margin = None
    for axis in range(n_dims):
        margin_sum = 0.0
        for order in _axis_orders(mbrs, axis):
            prefix, suffix = _running_covers(mbrs, order)
            for k in range(min_group, max_group + 1):
                margin_sum += prefix[k - 1].margin() + suffix[k].margin()
        if best_margin is None or margin_sum < best_margin:
            best_margin = margin_sum
            best_axis = axis

    best_plan = None
    best_key = None
    for order in _axis_orders(mbrs, best_axis):
        prefix, suffix = _running_covers(mbrs, order)
        for k in range(min_group, max_group + 1):
            left = prefix[k - 1]
            right = suffix[k]
            key = (
                left.overlap_volume_plus_one(right),
                left.volume_plus_one() + right.volume_plus_one(),
            )
            if best_key is None or key < best_key:
                best_key = key
                best_plan = XSplitPlan(
                    (list(order[:k]), list(order[k:])), best_axis, "topological"
                )
    return best_plan


def _running_covers(mbrs, order):
    """Prefix and suffix covers of ``mbrs`` along ``order``.

    ``prefix[i]`` covers ``order[:i+1]``; ``suffix[i]`` covers
    ``order[i:]``.  Turns the O(n²) cover recomputation of the naive
    R*-split into O(n) per order.
    """
    n = len(order)
    prefix = [None] * n
    running = mbrs[order[0]].copy()
    prefix[0] = running.copy()
    for position in range(1, n):
        running.include_mbr(mbrs[order[position]])
        prefix[position] = running.copy()
    suffix = [None] * (n + 1)
    running = mbrs[order[n - 1]].copy()
    suffix[n - 1] = running.copy()
    for position in range(n - 2, -1, -1):
        running.include_mbr(mbrs[order[position]])
        suffix[position] = running.copy()
    return prefix, suffix


def _axis_orders(mbrs, axis):
    """The two R*-tree sort orders of one axis: by lower and by upper edge."""
    indices = list(range(len(mbrs)))
    by_low = sorted(indices, key=lambda i: (mbrs[i].lows[axis],
                                            mbrs[i].highs[axis]))
    by_high = sorted(indices, key=lambda i: (mbrs[i].highs[axis],
                                             mbrs[i].lows[axis]))
    if by_low == by_high:
        return (by_low,)
    return (by_low, by_high)


def overlap_ratio(group_a_mbr, group_b_mbr):
    """Fraction of the smaller box's discrete volume shared with the other."""
    shared = group_a_mbr.overlap_volume_plus_one(group_b_mbr)
    if shared == 0.0:
        return 0.0
    smaller = min(group_a_mbr.volume_plus_one(), group_b_mbr.volume_plus_one())
    if smaller <= 0.0:
        return 1.0
    return shared / smaller


def overlap_minimal_split(children, min_group):
    """Split-history based split; returns a plan or None.

    A dimension occurring in the split history of *every* child guarantees
    an overlap-free partitioning along it (every child's MBR lies entirely
    on one side of some historical split hyperplane).  We sort by center
    along such a dimension and cut where the two sides stop overlapping,
    preferring the most balanced overlap-free cut; ``None`` when no common
    dimension exists or every cut is too unbalanced (→ supernode).
    """
    histories = [child.split_history for child in children]
    common = frozenset.intersection(*histories) if histories else frozenset()
    best_plan = None
    best_balance = None
    n = len(children)
    for dim in sorted(common):
        order = sorted(
            range(n), key=lambda i: (children[i].mbr.lows[dim],
                                     children[i].mbr.highs[dim])
        )
        for k in range(min_group, n - min_group + 1):
            left_high = max(children[i].mbr.highs[dim] for i in order[:k])
            right_low = min(children[i].mbr.lows[dim] for i in order[k:])
            if left_high > right_low:
                continue
            balance = abs(n - 2 * k)
            if best_balance is None or balance < best_balance:
                best_balance = balance
                best_plan = XSplitPlan(
                    (order[:k], order[k:]), dim, "overlap-minimal"
                )
    return best_plan
