"""Minimum bounding rectangles over the flattened attribute space.

The X-tree indexes each record as a point whose coordinates are the
totally ordered attribute IDs of all functional attributes (13 dimensions
for the paper's TPC-D cube, Fig. 10).  An MBR is one closed integer
interval per flat dimension.
"""

from __future__ import annotations

from ..errors import TreeError


class MBR:
    """A d-dimensional closed box ``[lo_i, hi_i]`` (mutable, like the MDS)."""

    __slots__ = ("lows", "highs")

    def __init__(self, lows, highs):
        lows = list(lows)
        highs = list(highs)
        if len(lows) != len(highs):
            raise TreeError("MBR needs matching lows/highs")
        self.lows = lows
        self.highs = highs

    @classmethod
    def of_point(cls, point):
        """Degenerate MBR around a single point."""
        return cls(point, point)

    @classmethod
    def cover_of(cls, mbrs):
        """Smallest MBR containing all of ``mbrs``."""
        mbrs = list(mbrs)
        if not mbrs:
            raise TreeError("cannot cover zero MBRs")
        n = len(mbrs[0].lows)
        lows = [min(m.lows[d] for m in mbrs) for d in range(n)]
        highs = [max(m.highs[d] for m in mbrs) for d in range(n)]
        return cls(lows, highs)

    def copy(self):
        return MBR(self.lows, self.highs)

    @property
    def n_dimensions(self):
        return len(self.lows)

    # -- growth ----------------------------------------------------------

    def include_point(self, point):
        """Grow to cover ``point``; return True if the box changed."""
        grew = False
        for d, value in enumerate(point):
            if value < self.lows[d]:
                self.lows[d] = value
                grew = True
            if value > self.highs[d]:
                self.highs[d] = value
                grew = True
        return grew

    def include_mbr(self, other):
        for d in range(len(self.lows)):
            if other.lows[d] < self.lows[d]:
                self.lows[d] = other.lows[d]
            if other.highs[d] > self.highs[d]:
                self.highs[d] = other.highs[d]

    # -- geometry ----------------------------------------------------------

    def width(self, d):
        return self.highs[d] - self.lows[d]

    def margin(self):
        """Sum of the side lengths (the R*-tree's split-axis criterion)."""
        return sum(self.highs[d] - self.lows[d] for d in range(len(self.lows)))

    def volume(self):
        product = 1.0
        for d in range(len(self.lows)):
            product *= self.highs[d] - self.lows[d]
        return product

    def volume_plus_one(self):
        """Volume with every side extended by one ID unit.

        IDs are discrete, so a degenerate side still spans one value; this
        variant avoids the everything-is-zero trap of point data when
        comparing volumes.
        """
        product = 1.0
        for d in range(len(self.lows)):
            product *= self.highs[d] - self.lows[d] + 1
        return product

    def contains_point(self, point):
        for d, value in enumerate(point):
            if value < self.lows[d] or value > self.highs[d]:
                return False
        return True

    def contains_mbr(self, other):
        for d in range(len(self.lows)):
            if other.lows[d] < self.lows[d] or other.highs[d] > self.highs[d]:
                return False
        return True

    def intersects(self, other):
        for d in range(len(self.lows)):
            if other.highs[d] < self.lows[d] or other.lows[d] > self.highs[d]:
                return False
        return True

    def overlap_volume(self, other):
        product = 1.0
        for d in range(len(self.lows)):
            extent = (
                min(self.highs[d], other.highs[d])
                - max(self.lows[d], other.lows[d])
            )
            if extent < 0:
                return 0.0
            product *= extent
        return product

    def overlap_volume_plus_one(self, other):
        """Discrete overlap (each shared side counts at least one ID)."""
        product = 1.0
        for d in range(len(self.lows)):
            extent = (
                min(self.highs[d], other.highs[d])
                - max(self.lows[d], other.lows[d])
            )
            if extent < 0:
                return 0.0
            product *= extent + 1
        return product

    def enlargement(self, point):
        """Growth of ``volume_plus_one`` if ``point`` were included."""
        before = 1.0
        after = 1.0
        for d, value in enumerate(point):
            side = self.highs[d] - self.lows[d] + 1
            before *= side
            lo = self.lows[d] if value >= self.lows[d] else value
            hi = self.highs[d] if value <= self.highs[d] else value
            after *= hi - lo + 1
        return after - before

    def center(self, d):
        return (self.lows[d] + self.highs[d]) / 2.0

    def __eq__(self, other):
        if not isinstance(other, MBR):
            return NotImplemented
        return self.lows == other.lows and self.highs == other.highs

    def __repr__(self):
        sides = ", ".join(
            "[%d,%d]" % (lo, hi) for lo, hi in zip(self.lows, self.highs)
        )
        return "MBR(%s)" % sides
