"""The X-tree baseline (Berchtold/Keim/Kriegel, VLDB 1996).

A faithful reimplementation of the comparison index of the paper: records
are points in the flattened, totally ordered attribute space (Fig. 10);
directory entries are MBRs; splits are topological (R*-style) with a
fallback to the overlap-minimal split via split histories, and supernodes
where neither works.

Range queries navigate by MBR intersection and apply the *exact* query
predicate at the data nodes (the MDS→MBR conversion of §5.2 is lossy — an
ID interval covers gaps the value set does not — so leaf filtering is what
keeps all backends returning identical answers).
"""

from __future__ import annotations

from ..config import XTreeConfig
from ..cube.aggregation import StreamingAggregator
from ..errors import QueryError, RecordNotFoundError, TreeError
from ..storage import page as page_mod
from ..storage.tracker import StorageTracker
from . import split as split_mod
from .mbr import MBR
from .node import XDataNode, XDirNode


class XTree:
    """An X-tree over the flattened attribute space of a cube schema."""

    def __init__(self, schema, config=None, tracker=None, storage_config=None):
        self.schema = schema
        self.config = config if config is not None else XTreeConfig()
        if tracker is not None:
            self.tracker = tracker
        else:
            self.tracker = StorageTracker(storage_config)
        self.n_flat = schema.n_flat_attributes
        self._n_records = 0
        self._root = XDataNode(
            MBR([0] * self.n_flat, [0] * self.n_flat),
            self.tracker.new_page_id(),
        )
        self._root_empty = True

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------

    def __len__(self):
        return self._n_records

    @property
    def root(self):
        return self._root

    def height(self):
        levels = 1
        node = self._root
        while not node.is_leaf:
            levels += 1
            node = node.children[0]
        return levels

    def records(self):
        """Iterate over all records (test/debug aid, no I/O accounting)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for _point, record in node.entries:
                    yield record
            else:
                stack.extend(node.children)

    def byte_size(self):
        n_measures = self.schema.n_measures
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += node.byte_size(self.n_flat, n_measures)
            if not node.is_leaf:
                stack.extend(node.children)
        return total

    def page_count(self):
        page_size = self.tracker.config.page_size
        n_measures = self.schema.n_measures
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += page_mod.pages_for(
                node.byte_size(self.n_flat, n_measures), page_size
            )
            if not node.is_leaf:
                stack.extend(node.children)
        return total

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def insert(self, record):
        """Insert one record as a point in the flattened ID space."""
        point = record.flat_point()
        if len(point) != self.n_flat:
            raise TreeError(
                "record has %d flat attributes, tree expects %d"
                % (len(point), self.n_flat)
            )
        if self._root_empty:
            self._root.mbr = MBR.of_point(point)
            self._root_empty = False
        split_result = self._insert_into(self._root, point, record)
        if split_result is not None:
            self._grow_root(split_result)
        self._n_records += 1

    def _insert_into(self, node, point, record):
        self.tracker.access_node(node.page_id, node.n_blocks)
        grew = node.mbr.include_point(point)
        self.tracker.cpu(self.n_flat)
        if node.is_leaf:
            node.entries.append((point, record))
            # The data node always changes and is written back; directory
            # nodes only when their MBR grew or their child list changed -
            # the X-tree stores no measures, so most inserts leave the
            # upper levels untouched (the asymmetry behind Fig. 11a).
            self.tracker.write_node(node.page_id)
            if len(node.entries) > self._capacity(node):
                return self._split_or_grow(node)
            return None
        child = self._choose_subtree(node, point)
        child_split = self._insert_into(child, point, record)
        if child_split is not None:
            position = node.children.index(child)
            node.children[position:position + 1] = list(child_split)
            self.tracker.access_node(node.page_id, node.n_blocks)
            grew = True
        if grew:
            self.tracker.write_node(node.page_id)
        if not node.is_leaf and len(node.children) > self._capacity(node):
            return self._split_or_grow(node)
        return None

    def _choose_subtree(self, node, point):
        """R*-tree descent: least volume enlargement, then least volume."""
        best = None
        best_key = None
        for child in node.children:
            key = (
                child.mbr.enlargement(point),
                child.mbr.volume_plus_one(),
                child.entry_count,
            )
            if best_key is None or key < best_key:
                best_key = key
                best = child
        self.tracker.cpu(len(node.children) * self.n_flat)
        return best

    def _grow_root(self, split_pair):
        new_root = XDirNode(
            MBR.cover_of(n.mbr for n in split_pair),
            self.tracker.new_page_id(),
            children=list(split_pair),
        )
        new_root.split_history = frozenset.intersection(
            *(n.split_history for n in split_pair)
        )
        self._root = new_root
        self.tracker.access_node(new_root.page_id, new_root.n_blocks)
        self.tracker.write_node(new_root.page_id)

    # ------------------------------------------------------------------
    # splitting
    # ------------------------------------------------------------------

    def _capacity(self, node):
        base = (
            self.config.leaf_capacity if node.is_leaf
            else self.config.dir_capacity
        )
        return base * node.n_blocks

    def _split_or_grow(self, node):
        if node.is_leaf:
            mbrs = [MBR.of_point(point) for point, _record in node.entries]
        else:
            mbrs = [child.mbr for child in node.children]
        n = len(mbrs)
        min_group = max(2, int(self.config.min_fanout_fraction * n))
        self.tracker.cpu(n * self.n_flat * 4)

        plan = split_mod.topological_split(mbrs, min_group)
        left_mbr = MBR.cover_of(mbrs[i] for i in plan.groups[0])
        right_mbr = MBR.cover_of(mbrs[i] for i in plan.groups[1])
        ratio = split_mod.overlap_ratio(left_mbr, right_mbr)
        if not node.is_leaf and ratio > self.config.max_overlap_fraction:
            plan = split_mod.overlap_minimal_split(node.children, min_group)
            if plan is None:
                node.n_blocks += 1
                return None
        pair = self._materialize_split(node, plan)
        self.tracker.free_node(node.page_id, node.n_blocks)
        return pair

    def _materialize_split(self, node, plan):
        history = node.split_history | {plan.dimension}
        pair = []
        if node.is_leaf:
            capacity = self.config.leaf_capacity
            for group in plan.groups:
                entries = [node.entries[i] for i in group]
                new_node = XDataNode(
                    MBR.cover_of(MBR.of_point(p) for p, _r in entries),
                    self.tracker.new_page_id(),
                    entries=entries,
                )
                new_node.n_blocks = max(1, -(-len(entries) // capacity))
                new_node.split_history = history
                pair.append(new_node)
        else:
            capacity = self.config.dir_capacity
            for group in plan.groups:
                children = [node.children[i] for i in group]
                new_node = XDirNode(
                    MBR.cover_of(child.mbr for child in children),
                    self.tracker.new_page_id(),
                    children=children,
                )
                new_node.n_blocks = max(1, -(-len(children) // capacity))
                new_node.split_history = history
                pair.append(new_node)
        for new_node in pair:
            self.tracker.access_node(new_node.page_id, new_node.n_blocks)
            self.tracker.write_node(new_node.page_id, new_node.n_blocks)
        return tuple(pair)

    # ------------------------------------------------------------------
    # range queries
    # ------------------------------------------------------------------

    def range_query(self, range_mbr, predicate=None, op="sum", measure=0):
        """Aggregate over the records inside ``range_mbr``.

        ``predicate(record) -> bool`` refines the box at the data nodes
        (used for the exact MDS semantics); ``None`` means the box itself
        is the query.
        """
        measure_index = self._measure_index(measure)
        self._check_query_mbr(range_mbr)
        aggregator = StreamingAggregator(op, measure_index)
        self._query_node(self._root, range_mbr, predicate, aggregator)
        return aggregator.result()

    def range_count(self, range_mbr, predicate=None):
        return self.range_query(range_mbr, predicate, op="count")

    def range_records(self, range_mbr, predicate=None):
        """The matching records themselves."""
        self._check_query_mbr(range_mbr)
        result = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.tracker.access_node(node.page_id, node.n_blocks)
            if node.is_leaf:
                self.tracker.cpu(len(node.entries) * self.n_flat)
                for point, record in node.entries:
                    if range_mbr.contains_point(point) and (
                        predicate is None or predicate(record)
                    ):
                        result.append(record)
            else:
                self.tracker.cpu(len(node.children) * self.n_flat)
                for child in node.children:
                    if range_mbr.intersects(child.mbr):
                        stack.append(child)
        return result

    def _query_node(self, node, range_mbr, predicate, aggregator):
        self.tracker.access_node(node.page_id, node.n_blocks)
        if node.is_leaf:
            self.tracker.cpu(len(node.entries) * self.n_flat)
            for point, record in node.entries:
                if range_mbr.contains_point(point) and (
                    predicate is None or predicate(record)
                ):
                    aggregator.add_record(record)
            return
        self.tracker.cpu(len(node.children) * self.n_flat)
        for child in node.children:
            if range_mbr.intersects(child.mbr):
                self._query_node(child, range_mbr, predicate, aggregator)

    def _measure_index(self, measure):
        if isinstance(measure, str):
            return self.schema.measure_index(measure)
        if not 0 <= measure < self.schema.n_measures:
            raise QueryError("measure index %r out of range" % (measure,))
        return measure

    def _check_query_mbr(self, range_mbr):
        if range_mbr.n_dimensions != self.n_flat:
            raise QueryError(
                "query MBR has %d dimensions, tree expects %d"
                % (range_mbr.n_dimensions, self.n_flat)
            )

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------

    def delete(self, record):
        """Remove one record (by value); raise if it is not indexed."""
        point = record.flat_point()
        if not self._delete_from(self._root, point, record):
            raise RecordNotFoundError("record not found: %r" % (record,))
        self._n_records -= 1
        root = self._root
        if not root.is_leaf and len(root.children) == 1:
            self._root = root.children[0]
            self.tracker.free_node(root.page_id, root.n_blocks)
        if self._n_records == 0:
            self._root_empty = True

    def _delete_from(self, node, point, record):
        self.tracker.access_node(node.page_id, node.n_blocks)
        if node.is_leaf:
            for position, (entry_point, entry_record) in enumerate(
                node.entries
            ):
                if entry_point == point and entry_record == record:
                    del node.entries[position]
                    if node.entries:
                        node.mbr = MBR.cover_of(
                            MBR.of_point(p) for p, _r in node.entries
                        )
                    self.tracker.write_node(node.page_id)
                    return True
            return False
        for child in node.children:
            if not child.mbr.contains_point(point):
                continue
            if self._delete_from(child, point, record):
                if child.entry_count == 0:
                    node.children.remove(child)
                    self.tracker.free_node(child.page_id, child.n_blocks)
                if node.children:
                    node.mbr = MBR.cover_of(c.mbr for c in node.children)
                self.tracker.write_node(node.page_id)
                return True
        return False

    # ------------------------------------------------------------------
    # invariants (test support)
    # ------------------------------------------------------------------

    def check_invariants(self):
        """Audit MBR coverage/minimality and counts; raise on violation."""
        total = self._check_node(self._root)
        if total != self._n_records:
            raise TreeError(
                "record count mismatch: tree says %d, traversal found %d"
                % (self._n_records, total)
            )
        return total

    def _check_node(self, node):
        if node.entry_count > self._capacity(node):
            raise TreeError(
                "node overfull: %d entries, capacity %d"
                % (node.entry_count, self._capacity(node))
            )
        if node.is_leaf:
            if node.entries:
                actual = MBR.cover_of(
                    MBR.of_point(p) for p, _r in node.entries
                )
                if actual != node.mbr:
                    raise TreeError("leaf MBR not minimal")
            return len(node.entries)
        if not node.children:
            raise TreeError("directory node without children")
        actual = MBR.cover_of(child.mbr for child in node.children)
        if actual != node.mbr:
            raise TreeError("directory MBR not minimal")
        return sum(self._check_node(child) for child in node.children)
