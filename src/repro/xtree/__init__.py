"""The X-tree baseline: MBR geometry, splits with split history, tree."""

from .mbr import MBR
from .node import XDataNode, XDirNode
from .split import (
    XSplitPlan,
    overlap_minimal_split,
    overlap_ratio,
    topological_split,
)
from .tree import XTree

__all__ = [
    "MBR",
    "XDataNode",
    "XDirNode",
    "XSplitPlan",
    "XTree",
    "overlap_minimal_split",
    "overlap_ratio",
    "topological_split",
]
