"""X-tree nodes: data nodes, directory nodes, supernodes.

Every node carries its MBR and its X-tree *split history*: the set of
dimensions along which splits have partitioned the space below it — the
ingredient of the overlap-minimal split.  Unlike DC-tree entries, X-tree
entries store **no** materialized measures (the paper's X-tree is a plain
spatial index; aggregation happens over the retrieved records), which is
one of the two effects the comparison isolates.
"""

from __future__ import annotations

from ..storage import page as page_mod


class _XNode:
    __slots__ = ("mbr", "page_id", "n_blocks", "split_history")

    def __init__(self, mbr, page_id):
        self.mbr = mbr
        self.page_id = page_id
        self.n_blocks = 1
        self.split_history = frozenset()

    @property
    def is_supernode(self):
        return self.n_blocks > 1


class XDataNode(_XNode):
    """A leaf holding ``(point, record)`` pairs."""

    __slots__ = ("entries",)

    is_leaf = True

    def __init__(self, mbr, page_id, entries=None):
        super().__init__(mbr, page_id)
        self.entries = entries if entries is not None else []

    @property
    def entry_count(self):
        return len(self.entries)

    def byte_size(self, n_flat_attributes, n_measures):
        return (
            page_mod.NODE_HEADER_BYTES
            + len(self.entries)
            * page_mod.x_record_bytes(n_flat_attributes, n_measures)
        )

    def __repr__(self):
        return "XDataNode(records=%d, blocks=%d)" % (
            len(self.entries),
            self.n_blocks,
        )


class XDirNode(_XNode):
    """An inner node holding child nodes."""

    __slots__ = ("children",)

    is_leaf = False

    def __init__(self, mbr, page_id, children=None):
        super().__init__(mbr, page_id)
        self.children = children if children is not None else []

    @property
    def entry_count(self):
        return len(self.children)

    def byte_size(self, n_flat_attributes, n_measures):
        return (
            page_mod.NODE_HEADER_BYTES
            + len(self.children)
            * page_mod.x_directory_entry_bytes(n_flat_attributes)
        )

    def __repr__(self):
        return "XDirNode(children=%d, blocks=%d)" % (
            len(self.children),
            self.n_blocks,
        )
