"""Exception hierarchy for the DC-tree reproduction.

All exceptions raised by this package derive from :class:`ReproError` so
callers can catch everything library-specific with a single ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A cube schema is inconsistent or a record does not match it."""


class HierarchyError(ReproError):
    """A concept-hierarchy operation is invalid.

    Raised e.g. when a value path has the wrong length for its dimension,
    when an unknown ID is dereferenced, or when the per-level ID space of a
    dimension is exhausted.
    """


class IdSpaceExhaustedError(HierarchyError):
    """No more IDs can be allocated at some (dimension, level)."""


class MdsError(ReproError):
    """An MDS operation was applied to incompatible operands."""


class QueryError(ReproError):
    """A range query is malformed for the schema it is executed against."""


class StorageError(ReproError):
    """The simulated paged storage layer was used incorrectly."""


class TreeError(ReproError):
    """An index structure detected an internal inconsistency."""


class RecordNotFoundError(TreeError):
    """A deletion targeted a record that is not present in the index."""
