"""On-disk format for saved warehouses.

A saved warehouse is a single JSON document with four sections:

* ``meta``        — format version, backend name, record count
* ``schema``      — dimension names + level names, measure names
* ``hierarchies`` — per dimension, every node as ``[id, parent, label]``
                    (the dictionary encoding of §3.1)
* ``index``       — the backend-specific structure dump

The index section stores the *structure*, not just the records: loading a
DC-tree restores its exact nodes, MDSs, supernode block counts and
materialized aggregates without re-running any split, so a load is a
plain O(n) deserialization (and the loaded tree is bit-for-bit query-
equivalent to the saved one — a property the test suite checks).

JSON keeps the format dependency-free and debuggable; IDs are plain
integers (the level tag lives inside the integer, §3.1).
"""

from __future__ import annotations

#: Current format version; bumped on breaking changes.
FORMAT_VERSION = 1

#: Node-type tags inside the index section.
DATA_NODE = "data"
DIR_NODE = "dir"


def check_version(meta):
    """Raise on a format-version mismatch."""
    from ..errors import StorageError

    version = meta.get("version")
    if version != FORMAT_VERSION:
        raise StorageError(
            "unsupported warehouse file version %r (this build reads %d)"
            % (version, FORMAT_VERSION)
        )
