"""On-disk format for saved warehouses.

A saved warehouse is a single JSON document with four sections:

* ``meta``        — format version, backend name, record count
* ``schema``      — dimension names + level names, measure names
* ``hierarchies`` — per dimension, every node as ``[id, parent, label]``
                    (the dictionary encoding of §3.1)
* ``index``       — the backend-specific structure dump

The index section stores the *structure*, not just the records: loading a
DC-tree restores its exact nodes, MDSs, supernode block counts and
materialized aggregates without re-running any split, so a load is a
plain O(n) deserialization (and the loaded tree is bit-for-bit query-
equivalent to the saved one — a property the test suite checks).

A fifth, optional section protects the other four:

* ``checksums``   — per-section CRC32 over the canonical JSON encoding
                    (sorted keys, no whitespace) of ``meta``, ``schema``,
                    ``hierarchies`` and ``index``

``save_warehouse`` always writes it; ``load_warehouse`` verifies it when
present, so truncation and bit-rot inside a section are caught *before*
deserialization instead of surfacing as an inconsistent tree later.
Files from before the durability layer lack the section and still load.

JSON keeps the format dependency-free and debuggable; IDs are plain
integers (the level tag lives inside the integer, §3.1).
"""

from __future__ import annotations

import json
import zlib

#: Current format version; bumped on breaking changes.
FORMAT_VERSION = 1

#: Node-type tags inside the index section.
DATA_NODE = "data"
DIR_NODE = "dir"

#: Sections covered by the ``checksums`` section.
CHECKSUMMED_SECTIONS = ("meta", "schema", "hierarchies", "index")


def check_version(meta):
    """Raise on a format-version mismatch."""
    from ..errors import StorageError

    version = meta.get("version")
    if version != FORMAT_VERSION:
        raise StorageError(
            "unsupported warehouse file version %r (this build reads %d)"
            % (version, FORMAT_VERSION)
        )


def section_crc(section):
    """CRC32 of one section's canonical JSON encoding."""
    canonical = json.dumps(section, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


def compute_checksums(data):
    """The ``checksums`` section for a warehouse document.

    Call *after* the document is final (the meta section in particular —
    durable sessions stamp their WAL position into it first).
    """
    return {
        section: section_crc(data[section])
        for section in CHECKSUMMED_SECTIONS
        if section in data
    }


def verify_checksums(data, path=None):
    """Raise ``StorageError`` when a stored section checksum mismatches.

    Documents without a ``checksums`` section pass (pre-durability
    files); documents with one must match it exactly.
    """
    from ..errors import StorageError

    stored = data.get("checksums")
    if stored is None:
        return
    where = " in %s" % path if path is not None else ""
    for section, expected in stored.items():
        if section not in data:
            raise StorageError(
                "checksummed section %r is missing%s" % (section, where)
            )
        actual = section_crc(data[section])
        if actual != expected:
            raise StorageError(
                "checksum mismatch in section %r%s: stored %d, actual %d "
                "(truncated or bit-rotted file)"
                % (section, where, expected, actual)
            )
