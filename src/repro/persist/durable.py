"""Durable warehouse sessions: one directory, one checkpoint, one WAL.

:class:`DurableWarehouse` is the crash-safe way to run a dynamic
warehouse.  The directory layout is::

    <directory>/checkpoint.json    last atomic, checksummed full save
    <directory>/wal.log            mutations acknowledged since then

Every ``insert``/``delete`` that returns to the caller has already been
appended (and, per the fsync policy, synced) to the WAL by the DC-tree's
mutation sink; :meth:`checkpoint` folds the log into a fresh atomic
checkpoint and truncates it.  After a crash, :meth:`open` replays
checkpoint + WAL, validates the result, immediately re-checkpoints the
recovered state (log compaction) and resumes logging — acknowledged
mutations are never lost, unacknowledged ones never half-applied.

Root swaps (bulk loads) cannot be replayed record by record, so the
sink writes a *rebase* marker and checkpoints on the spot; recovery
refuses to replay past a marker whose checkpoint never landed — the
swap simply was not yet acknowledged.

The durability path shares no state with the simulated cost model: WAL
appends and checkpoint writes are real file I/O, invisible to the
:class:`~repro.storage.tracker.StorageTracker`, so all deterministic
counters are bit-identical with or without a session attached (the
regression bench enforces this).
"""

from __future__ import annotations

import os

from ..errors import StorageError
from .io import record_to_labels, save_warehouse
from .recovery import recover_warehouse
from .wal import OP_BATCH, OP_DELETE, OP_INSERT, OP_REBASE, WriteAheadLog


class WalSink:
    """Adapts a :class:`WriteAheadLog` to the DC-tree mutation-sink
    protocol (``record_insert`` / ``record_delete`` /
    ``record_insert_batch`` / ``record_rebase``).

    Records are logged as *label* paths (see
    :func:`~repro.persist.io.record_to_labels`): hierarchy IDs interned
    after the checkpoint mean nothing to a recovered hierarchy, labels
    always re-intern.
    """

    def __init__(self, wal, schema, on_rebase=None):
        self.wal = wal
        self.schema = schema
        self._on_rebase = on_rebase

    def record_insert(self, record):
        self.wal.append(OP_INSERT, record_to_labels(self.schema, record))

    def record_insert_batch(self, records):
        """Group-commit one acknowledged batch: a single atomic WAL
        record carrying every label path, hence one append — and at
        ``fsync_interval=1`` exactly one fsync — per batch.  A torn tail
        drops the whole batch, never a prefix of it."""
        self.wal.append(
            OP_BATCH,
            [record_to_labels(self.schema, record) for record in records],
        )

    def record_delete(self, record):
        self.wal.append(OP_DELETE, record_to_labels(self.schema, record))

    def record_rebase(self, n_records):
        self.wal.append(OP_REBASE, n_records)
        if self._on_rebase is not None:
            self._on_rebase()


class DurableWarehouse:
    """A crash-safe session over one warehouse directory.

    Build one with :meth:`create` (fresh warehouse) or :meth:`open`
    (recover an existing directory); mutate through :meth:`insert` /
    :meth:`insert_record` / :meth:`delete` or directly through
    :attr:`warehouse` — the tree-level sink logs either way.
    """

    CHECKPOINT_NAME = "checkpoint.json"
    WAL_NAME = "wal.log"

    def __init__(self, directory, warehouse, wal, faults=None, report=None):
        _require_dc_tree(warehouse)
        self.directory = os.fspath(directory)
        self.warehouse = warehouse
        self.wal = wal
        self.faults = faults
        #: RecoveryReport of the :meth:`open` that built this session
        #: (None for :meth:`create`).
        self.report = report
        warehouse.index.set_mutation_sink(
            WalSink(wal, warehouse.schema,
                    on_rebase=self._checkpoint_after_rebase)
        )
        if faults is not None:
            warehouse.index.tracker.faults = faults

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    @classmethod
    def checkpoint_path(cls, directory):
        return os.path.join(os.fspath(directory), cls.CHECKPOINT_NAME)

    @classmethod
    def wal_path(cls, directory):
        return os.path.join(os.fspath(directory), cls.WAL_NAME)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, directory, warehouse, faults=None):
        """Start a durable session over a fresh (or bulk-loaded)
        warehouse: write its initial checkpoint, then log from LSN 1.
        """
        _require_dc_tree(warehouse)
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        save_warehouse(
            warehouse, cls.checkpoint_path(directory),
            extra_meta={"wal_lsn": 0}, faults=faults,
        )
        wal = WriteAheadLog(
            cls.wal_path(directory),
            fsync_interval=warehouse.index.config.wal_fsync_interval,
            start_lsn=0, faults=faults,
            observability=warehouse.index.observability,
        )
        return cls(directory, warehouse, wal, faults=faults)

    @classmethod
    def open(cls, directory, config=None, faults=None):
        """Recover a directory (crash-safe) and resume the session.

        Replays checkpoint + WAL, validates, re-checkpoints the
        recovered state and truncates the log, so each open starts from
        a compact, trustworthy base.  Raises :class:`StorageError` when
        the checkpoint is unreadable or validation fails.
        """
        directory = os.fspath(directory)
        checkpoint = cls.checkpoint_path(directory)
        wal_file = cls.wal_path(directory)
        warehouse, report = recover_warehouse(
            checkpoint, wal_file, config=config, faults=faults
        )
        if warehouse is None:
            raise StorageError(
                "cannot recover %s: %s" % (directory, report.checkpoint_error)
            )
        if not report.validated:
            raise StorageError(
                "recovered warehouse failed validation: %s"
                % report.validation_error
            )
        _require_dc_tree(warehouse)
        # Log compaction: fold the replayed WAL into a fresh checkpoint
        # before accepting new traffic.  A crash in here is itself
        # recoverable — the old checkpoint+WAL are intact until the
        # atomic replace, and stale records after it are LSN-skipped.
        save_warehouse(
            warehouse, checkpoint,
            extra_meta={"wal_lsn": report.last_lsn}, faults=faults,
        )
        wal = WriteAheadLog(
            wal_file,
            fsync_interval=warehouse.index.config.wal_fsync_interval,
            start_lsn=report.last_lsn, faults=faults,
            observability=warehouse.index.observability,
        )
        wal.truncate()
        return cls(directory, warehouse, wal, faults=faults, report=report)

    # ------------------------------------------------------------------
    # mutation / lifecycle
    # ------------------------------------------------------------------

    def insert(self, dimension_values, measures):
        """Insert one cell from label tuples; durable once returned."""
        return self.warehouse.insert(dimension_values, measures)

    def insert_record(self, record):
        """Insert an already-built record; durable once returned."""
        return self.warehouse.insert_record(record)

    def insert_many(self, rows):
        """Insert many ``(dimension_values, measures)`` pairs as one
        group-committed batch: the in-memory apply amortizes page
        writes, and the whole batch lands in the WAL as one atomic
        record (one fsync per acknowledged batch at
        ``wal_fsync_interval=1``).  Durable once returned; a crash
        before the return loses the entire batch, never part of it."""
        return self.warehouse.insert_many(rows)

    def insert_records(self, records):
        """Batch variant of :meth:`insert_record` (see
        :meth:`insert_many` for the durability semantics)."""
        return self.warehouse.insert_records(records)

    def delete(self, record):
        """Delete one record; durable once returned."""
        self.warehouse.delete(record)

    def __len__(self):
        return len(self.warehouse)

    def checkpoint(self):
        """Fold the WAL into a fresh atomic checkpoint and truncate it."""
        obs = self.warehouse.index.observability
        if obs is None:
            return self._checkpoint_impl()
        with obs.span("checkpoint", directory=self.directory) as span:
            self._checkpoint_impl()
            span.set(wal_lsn=self.wal.last_lsn)
        obs.counter("checkpoints_total",
                    "Atomic checkpoints written by the session.").inc()

    def _checkpoint_impl(self):
        self.wal.sync()
        save_warehouse(
            self.warehouse, self.checkpoint_path(self.directory),
            extra_meta={"wal_lsn": self.wal.last_lsn}, faults=self.faults,
        )
        self.wal.truncate()

    def _checkpoint_after_rebase(self):
        # A root swap invalidates record-level replay; only a checkpoint
        # makes it durable, so one is taken before the swap is
        # acknowledged to the caller.
        self.checkpoint()

    def close(self):
        """Detach the sink and close the log (the WAL stays replayable)."""
        if self.warehouse is not None:
            self.warehouse.index.set_mutation_sink(None)
        if self.wal is not None:
            self.wal.close()
            self.wal = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def _require_dc_tree(warehouse):
    if warehouse.backend != "dc-tree":
        raise StorageError(
            "durable sessions require the dc-tree backend (its mutation "
            "sink feeds the WAL); got %r" % warehouse.backend
        )
