"""Crash recovery: last good checkpoint + WAL replay + validation.

:func:`recover_warehouse` rebuilds the warehouse a crashed process
would have acknowledged: load the checkpoint (integrity-checked — see
:func:`~repro.persist.io.read_warehouse_file`), replay every WAL record
the checkpoint does not already cover, and validate the result with the
tree's own :meth:`~repro.core.tree.DCTree.check_invariants` plus a
record-count and aggregate audit.  The whole run is summarized in a
structured :class:`RecoveryReport` (surfaced by ``python -m repro
recover`` and ``inspect``).

Replay is deterministic: the same checkpoint and WAL always produce the
same tree *and* the same tracker counters — recovery is just a sequence
of ordinary inserts/deletes, so nothing about the durability layer
perturbs the simulated cost model.
"""

from __future__ import annotations

import math
import os
import time

from ..errors import RecordNotFoundError, ReproError, StorageError
from ..workload.queries import query_from_labels
from . import wal as wal_mod
from .io import read_warehouse_file, record_from_labels, warehouse_from_dict


class RecoveryReport:
    """Structured account of one recovery run (all counters exact)."""

    def __init__(self, checkpoint_path, wal_path):
        self.checkpoint_path = str(checkpoint_path)
        self.wal_path = str(wal_path) if wal_path is not None else None
        self.checkpoint_ok = False
        self.checkpoint_error = None
        self.checkpoint_lsn = 0
        self.records_at_checkpoint = 0
        self.wal_records_seen = 0
        self.applied_inserts = 0
        self.applied_batches = 0
        self.applied_deletes = 0
        self.skipped_stale = 0
        self.failed_deletes = 0
        self.torn_tail = False
        self.wal_error = None
        self.stopped_at_rebase = False
        self.validated = False
        self.validation_error = None
        self.n_records = 0
        self.last_lsn = 0
        self.wal_bytes_scanned = 0
        self.checkpoint_age_seconds = None

    @property
    def ok(self):
        """Did recovery produce a validated warehouse?"""
        return self.checkpoint_ok and self.validated

    @property
    def applied_total(self):
        return self.applied_inserts + self.applied_deletes

    def to_dict(self):
        """The report as one plain dict (CLI/CI artifact friendly)."""
        return {
            slot: getattr(self, slot)
            for slot in (
                "checkpoint_path", "wal_path", "checkpoint_ok",
                "checkpoint_error", "checkpoint_lsn",
                "records_at_checkpoint", "wal_records_seen",
                "applied_inserts", "applied_batches", "applied_deletes",
                "skipped_stale",
                "failed_deletes", "torn_tail", "wal_error",
                "stopped_at_rebase", "validated", "validation_error",
                "n_records", "last_lsn", "wal_bytes_scanned",
                "checkpoint_age_seconds",
            )
        }

    def publish_metrics(self, registry, prefix="recovery"):
        """Export the audit as gauges into a metrics registry.

        The satellite contract of the observability layer: the recovery
        audit is queryable through the same registry as every other
        stat, not only through this report's bespoke fields.
        """
        gauges = (
            ("records_at_checkpoint", self.records_at_checkpoint,
             "Records in the checkpoint the replay started from."),
            ("checkpoint_lsn", self.checkpoint_lsn,
             "Last WAL LSN the checkpoint already covered."),
            ("wal_records_seen", self.wal_records_seen,
             "WAL records scanned during replay."),
            ("wal_bytes_scanned", self.wal_bytes_scanned,
             "WAL bytes scanned (through the last trustworthy record)."),
            ("applied_inserts", self.applied_inserts,
             "Inserts replayed onto the checkpoint (batched included)."),
            ("applied_batches", self.applied_batches,
             "Group-committed insert batches replayed."),
            ("applied_deletes", self.applied_deletes,
             "Deletes replayed onto the checkpoint."),
            ("skipped_stale", self.skipped_stale,
             "Stale records skipped (LSN covered by the checkpoint)."),
            ("failed_deletes", self.failed_deletes,
             "Replayed deletes that targeted absent records."),
            ("torn_tail", int(self.torn_tail),
             "1 when a torn tail was discarded."),
            ("stopped_at_rebase", int(self.stopped_at_rebase),
             "1 when replay stopped at an uncheckpointed rebase."),
            ("validated", int(self.validated),
             "1 when the recovered warehouse passed validation."),
            ("n_records", self.n_records,
             "Records in the recovered warehouse."),
            ("last_lsn", self.last_lsn,
             "Highest LSN known after recovery."),
        )
        for name, value, help_text in gauges:
            registry.gauge("%s_%s" % (prefix, name), help_text).set(value)
        if self.checkpoint_age_seconds is not None:
            registry.gauge(
                prefix + "_checkpoint_age_seconds",
                "Age of the checkpoint file at recovery time.",
            ).set(self.checkpoint_age_seconds)

    def describe(self):
        """Human-readable multi-line summary (the CLI's output)."""
        lines = ["recovery: %s" % ("OK" if self.ok else "FAILED")]
        if self.checkpoint_ok:
            lines.append(
                "checkpoint: %s (%d records, covers WAL through LSN %d)"
                % (self.checkpoint_path, self.records_at_checkpoint,
                   self.checkpoint_lsn)
            )
        else:
            lines.append(
                "checkpoint: %s UNREADABLE: %s"
                % (self.checkpoint_path, self.checkpoint_error)
            )
        lines.append(
            "wal: %s — %d record(s) / %d byte(s) scanned, %d insert(s) + "
            "%d delete(s) replayed, %d stale skipped"
            % (self.wal_path or "(none)", self.wal_records_seen,
               self.wal_bytes_scanned, self.applied_inserts,
               self.applied_deletes, self.skipped_stale)
        )
        if self.applied_batches:
            lines.append(
                "wal: %d group-committed batch(es) among the replayed "
                "inserts" % self.applied_batches
            )
        if self.torn_tail:
            lines.append(
                "wal: torn tail discarded (%s) — expected crash residue, "
                "only unacknowledged work lost" % self.wal_error
            )
        if self.stopped_at_rebase:
            lines.append(
                "wal: replay stopped at a rebase marker (bulk load whose "
                "checkpoint never completed; that load was not yet "
                "acknowledged)"
            )
        if self.failed_deletes:
            lines.append(
                "wal: %d delete(s) targeted absent records (skipped)"
                % self.failed_deletes
            )
        if self.validated:
            lines.append(
                "validated: %d record(s), invariants and aggregate audit "
                "hold" % self.n_records
            )
        elif self.checkpoint_ok:
            lines.append("validation FAILED: %s" % self.validation_error)
        return "\n".join(lines)


def _audit(warehouse, report):
    """Invariant + count + aggregate audit of the recovered warehouse."""
    expected = (
        report.records_at_checkpoint
        + report.applied_inserts - report.applied_deletes
    )
    if len(warehouse) != expected:
        raise StorageError(
            "recovered record count %d, checkpoint+WAL implies %d"
            % (len(warehouse), expected)
        )
    index = warehouse.index
    if hasattr(index, "check_invariants"):
        index.check_invariants()
    # Independent aggregate audit: the materialized totals must equal a
    # fold over the actual records (for the scan backend both sides walk
    # the records, which still cross-checks the count).
    count = warehouse.query("count") if len(warehouse) else 0
    if count != len(warehouse):
        raise StorageError(
            "aggregate COUNT says %s, warehouse holds %d records"
            % (count, len(warehouse))
        )
    for measure_index in range(warehouse.schema.n_measures):
        summary = warehouse.summary(measure=measure_index)
        fold = 0.0
        for record in warehouse.records_matching(
            query_from_labels(warehouse.schema, {})
        ):
            fold += record.measures[measure_index]
        if not math.isclose(summary.sum, fold, rel_tol=1e-9, abs_tol=1e-9):
            raise StorageError(
                "aggregate SUM of measure %d is %r, record fold is %r"
                % (measure_index, summary.sum, fold)
            )


def _replay_wal(warehouse, wal_path, report, faults):
    """Scan + replay the WAL onto the loaded checkpoint (report-driven)."""
    try:
        scan = wal_mod.read_wal(wal_path, faults=faults)
    except StorageError as error:
        scan = wal_mod.WalScan([], True, str(error), 0)
    report.torn_tail = scan.torn_tail
    report.wal_error = scan.error
    report.wal_bytes_scanned = scan.bytes_scanned
    for lsn, op, payload in scan.records:
        report.wal_records_seen += 1
        report.last_lsn = max(report.last_lsn, int(lsn))
        if lsn <= report.checkpoint_lsn:
            report.skipped_stale += 1
            continue
        if op == wal_mod.OP_REBASE:
            report.stopped_at_rebase = True
            break
        if op == wal_mod.OP_INSERT:
            warehouse.index.insert(
                record_from_labels(warehouse.schema, payload)
            )
            report.applied_inserts += 1
        elif op == wal_mod.OP_BATCH:
            # One atomic group commit: the record either survived the
            # crash whole (every insert replays, batched so the replayed
            # tracker charges match the original run) or was torn away
            # whole — read_wal never yields a prefix of it.
            records = [
                record_from_labels(warehouse.schema, labels)
                for labels in payload
            ]
            insert_batch = getattr(warehouse.index, "insert_batch", None)
            if insert_batch is not None:
                insert_batch(records)
            else:
                for record in records:
                    warehouse.index.insert(record)
            report.applied_inserts += len(records)
            report.applied_batches += 1
        elif op == wal_mod.OP_DELETE:
            try:
                warehouse.index.delete(
                    record_from_labels(warehouse.schema, payload)
                )
                report.applied_deletes += 1
            except RecordNotFoundError:
                report.failed_deletes += 1
        else:
            report.wal_error = "unknown WAL op %r at LSN %d" % (op, lsn)
            break


def recover_warehouse(checkpoint_path, wal_path=None, config=None,
                      faults=None):
    """Rebuild the warehouse from checkpoint + WAL; never raises on
    corruption.

    Returns ``(warehouse, report)``; the warehouse is ``None`` exactly
    when the checkpoint itself is unreadable (``report.checkpoint_error``
    says why).  WAL damage is never fatal: a torn tail or unreadable
    record ends replay at the last trustworthy mutation — precisely the
    acknowledged-durable prefix.
    """
    report = RecoveryReport(checkpoint_path, wal_path)
    try:
        data = read_warehouse_file(checkpoint_path, faults=faults)
        warehouse = warehouse_from_dict(data, config=config)
    except ReproError as error:
        report.checkpoint_error = str(error)
        return None, report
    except (KeyError, IndexError, TypeError, ValueError) as error:
        report.checkpoint_error = "%s: %s" % (type(error).__name__, error)
        return None, report
    report.checkpoint_ok = True
    report.records_at_checkpoint = len(warehouse)
    report.checkpoint_lsn = int(data["meta"].get("wal_lsn", 0))
    report.last_lsn = report.checkpoint_lsn
    try:
        report.checkpoint_age_seconds = max(
            0.0, time.time() - os.path.getmtime(checkpoint_path)
        )
    except OSError:
        report.checkpoint_age_seconds = None

    if wal_path is not None:
        obs = getattr(warehouse.index, "observability", None)
        if obs is not None:
            with obs.span("recovery.replay", wal=str(wal_path)) as span:
                _replay_wal(warehouse, wal_path, report, faults)
                span.set(applied=report.applied_total,
                         bytes_scanned=report.wal_bytes_scanned,
                         torn_tail=report.torn_tail)
        else:
            _replay_wal(warehouse, wal_path, report, faults)
        if obs is not None:
            report.publish_metrics(obs.registry)

    try:
        _audit(warehouse, report)
        report.validated = True
    except ReproError as error:
        report.validation_error = str(error)
    report.n_records = len(warehouse)
    return warehouse, report
