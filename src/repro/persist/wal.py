"""Write-ahead log for acknowledged warehouse mutations.

The checkpoint file makes a warehouse durable *up to the last save*; the
WAL makes every acknowledged ``insert``/``delete`` since then durable as
well.  The DC-tree's mutation sink (see
:meth:`~repro.core.tree.DCTree.set_mutation_sink`) appends one record
per acknowledged mutation; recovery replays the log on top of the last
good checkpoint.

On-disk format
--------------

::

    file   := header record*
    header := b"DCWAL01\\n"                      (8 bytes)
    record := length(u32 BE) crc32(u32 BE) payload
    payload:= UTF-8 JSON  [lsn, op, data]

``lsn`` is a monotone log sequence number (checkpoints remember the last
LSN they contain, so replay skips records a newer checkpoint already
covers).  ``op`` is ``"insert"``, ``"delete"``, ``"insert_batch"`` (one
group-committed batch of inserts in a single atomic record) or
``"rebase"`` (a root swap — bulk load — that a record-level log cannot
replay; recovery stops there and demands the checkpoint that the rebase
triggered).

Each record is length-prefixed and CRC-checksummed, so a torn tail —
the expected residue of a crash mid-append — is detected and cleanly
discarded: replay stops at the first record whose length or checksum
does not hold.  The file is opened unbuffered; an append either reaches
the OS entirely or (under fault injection) leaves exactly the torn
prefix a real crash would.

``fsync`` batching is configurable (``DCTreeConfig.wal_fsync_interval``):
1 syncs every append (strongest durability), N syncs every Nth append,
0 leaves syncing to the OS (fastest, loses at most the OS write-back
window on power failure — process death alone loses nothing).
"""

from __future__ import annotations

import json
import os
import struct
import zlib

from ..errors import StorageError
from ..storage import faults as faults_mod

#: File magic; 8 bytes so records start aligned.
WAL_HEADER = b"DCWAL01\n"

#: Per-record prefix: payload length + CRC32, both big-endian u32.
_PREFIX = struct.Struct(">II")

#: Operations a WAL record may carry.
OP_INSERT = "insert"
OP_DELETE = "delete"
OP_REBASE = "rebase"
#: One group-committed insert batch: the data is the *list* of the
#: batch's label paths inside a single length-prefixed, checksummed
#: record, so the batch is atomic on disk — a torn tail discards all of
#: it, never a prefix — and costs one append (hence one fsync at
#: ``fsync_interval=1``) per acknowledged batch.
OP_BATCH = "insert_batch"


def encode_record(lsn, op, data):
    """One record's bytes: length + CRC32 prefix, JSON payload."""
    payload = json.dumps([lsn, op, data]).encode("utf-8")
    return _PREFIX.pack(len(payload), zlib.crc32(payload)) + payload


class WriteAheadLog:
    """Append-only, checksummed mutation log on one file.

    Parameters
    ----------
    path:
        Log file; created (with header) when missing or empty.
    fsync_interval:
        Sync every Nth append; 0 disables explicit syncing.
    start_lsn:
        LSN of the last already-durable record (recovery hands the log
        back after replay so numbering continues seamlessly).
    faults:
        Optional :class:`~repro.storage.faults.FaultInjector` through
        which every write/fsync/truncate is routed.
    observability:
        Optional :class:`~repro.obs.Observability` bundle (normally the
        owning tree's): every append opens a ``wal.append`` span and
        feeds append/byte/fsync/truncate counters.  Purely
        observational — the byte stream and sync schedule are identical
        with it attached or not.
    """

    def __init__(self, path, fsync_interval=1, start_lsn=0, faults=None,
                 observability=None):
        if fsync_interval < 0:
            raise StorageError("fsync_interval must be >= 0")
        self.path = os.fspath(path)
        self.fsync_interval = fsync_interval
        self.faults = faults
        self.observability = observability
        self._lsn = start_lsn
        self._since_sync = 0
        self._handle = open(self.path, "ab", buffering=0)
        if self._handle.tell() == 0:
            faults_mod.write_through(
                faults, self._handle, "wal.header", WAL_HEADER
            )

    # ------------------------------------------------------------------

    @property
    def last_lsn(self):
        """LSN of the most recently appended (or replayed) record."""
        return self._lsn

    def append(self, op, data):
        """Append one mutation record; returns its LSN.

        The record is on its way to the OS when this returns (and
        fsynced per the batching policy) — appending *before* the caller
        acknowledges the mutation is what makes the mutation durable.
        """
        obs = self.observability
        if obs is None:
            return self._append_impl(op, data)
        with obs.span("wal.append", op=op) as span:
            lsn = self._append_impl(op, data)
            span.set(lsn=lsn)
        obs.counter("wal_appends_total", "WAL records appended by op.",
                    op=op).inc()
        return lsn

    def _append_impl(self, op, data):
        lsn = self._lsn + 1
        record = encode_record(lsn, op, data)
        faults_mod.write_through(self.faults, self._handle, "wal.append",
                                 record)
        if self.observability is not None:
            self.observability.counter(
                "wal_bytes_written_total", "Bytes appended to the WAL."
            ).inc(len(record))
        self._lsn = lsn
        self._since_sync += 1
        if self.fsync_interval and self._since_sync >= self.fsync_interval:
            self.sync()
        return lsn

    def sync(self):
        """Force appended records to stable storage."""
        faults_mod.op_through(self.faults, "wal.fsync")
        os.fsync(self._handle.fileno())
        self._since_sync = 0
        if self.observability is not None:
            self.observability.counter(
                "wal_fsyncs_total", "Explicit WAL fsyncs."
            ).inc()

    def truncate(self):
        """Drop every record (header stays) — called after a checkpoint.

        A crash *before* the truncate leaves stale records behind; their
        LSNs are at most the new checkpoint's, so replay skips them.
        """
        faults_mod.op_through(self.faults, "wal.truncate")
        self._handle.truncate(len(WAL_HEADER))
        self._since_sync = 0
        if self.observability is not None:
            self.observability.counter(
                "wal_truncates_total", "Post-checkpoint WAL truncations."
            ).inc()

    def close(self):
        if self._handle is not None:
            if self.fsync_interval and self._since_sync:
                self.sync()
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


class WalScan:
    """Result of :func:`read_wal`: the readable records plus diagnostics."""

    __slots__ = ("records", "torn_tail", "error", "bytes_scanned")

    def __init__(self, records, torn_tail, error, bytes_scanned):
        self.records = records
        self.torn_tail = torn_tail
        self.error = error
        self.bytes_scanned = bytes_scanned


def read_wal(path, faults=None):
    """Scan a WAL file; returns a :class:`WalScan`.

    Stops at the first incomplete or checksum-failing record (torn tail
    after a crash, or bit-rot) — everything before it is trustworthy,
    nothing after it is reachable.  A missing file scans as empty: a
    checkpoint with no log simply has nothing to replay.
    """
    try:
        with open(path, "rb") as handle:
            raw = faults_mod.read_through(faults, handle, "wal.read")
    except FileNotFoundError:
        return WalScan([], False, None, 0)
    except OSError as error:
        raise StorageError("cannot read WAL %s: %s" % (path, error))
    if not raw:
        return WalScan([], False, None, 0)
    if raw[:len(WAL_HEADER)] != WAL_HEADER:
        raise StorageError(
            "%s is not a WAL file (bad header %r)" % (path, raw[:8])
        )
    records = []
    offset = len(WAL_HEADER)
    total = len(raw)
    while offset < total:
        if offset + _PREFIX.size > total:
            return WalScan(
                records, True,
                "torn record prefix at byte %d of %d" % (offset, total),
                offset,
            )
        length, crc = _PREFIX.unpack_from(raw, offset)
        start = offset + _PREFIX.size
        end = start + length
        if end > total:
            return WalScan(
                records, True,
                "torn record payload at byte %d of %d (wanted %d bytes)"
                % (start, total, length),
                offset,
            )
        payload = raw[start:end]
        if zlib.crc32(payload) != crc:
            return WalScan(
                records, True,
                "checksum mismatch at byte %d of %d" % (offset, total),
                offset,
            )
        try:
            lsn, op, data = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            return WalScan(
                records, True,
                "unreadable payload at byte %d: %s" % (offset, error),
                offset,
            )
        records.append((lsn, op, data))
        offset = end
    return WalScan(records, False, None, offset)
