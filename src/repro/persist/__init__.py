"""Warehouse persistence: structure-preserving save/load for all backends,
plus the crash-safe durability layer (WAL, atomic checkpoints, recovery)."""

from .durable import DurableWarehouse, WalSink
from .format import FORMAT_VERSION
from .io import (
    load_warehouse,
    read_warehouse_file,
    save_warehouse,
    warehouse_from_dict,
    warehouse_to_dict,
)
from .recovery import RecoveryReport, recover_warehouse
from .wal import WriteAheadLog, read_wal

__all__ = [
    "DurableWarehouse",
    "FORMAT_VERSION",
    "RecoveryReport",
    "WalSink",
    "WriteAheadLog",
    "load_warehouse",
    "read_warehouse_file",
    "read_wal",
    "recover_warehouse",
    "save_warehouse",
    "warehouse_from_dict",
    "warehouse_to_dict",
]
