"""Warehouse persistence: structure-preserving save/load for all backends."""

from .format import FORMAT_VERSION
from .io import (
    load_warehouse,
    save_warehouse,
    warehouse_from_dict,
    warehouse_to_dict,
)

__all__ = [
    "FORMAT_VERSION",
    "load_warehouse",
    "save_warehouse",
    "warehouse_from_dict",
    "warehouse_to_dict",
]
