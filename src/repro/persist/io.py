"""Saving and loading warehouses (all three backends).

``save_warehouse`` writes a single JSON file *atomically*: the document
goes to a same-directory temp file, is fsynced, and replaces the target
with ``os.replace`` — a crash at any point leaves either the complete
old file or the complete new one, never a torn mixture.  Per-section
CRCs (see :mod:`repro.persist.format`) are embedded on save and verified
on load, so truncation and bit-rot are reported as a clean
:class:`~repro.errors.StorageError` instead of a deep deserialization
traceback.  ``load_warehouse`` restores a query-equivalent warehouse;
for the tree backends the exact structure is preserved — nodes,
MDSs/MBRs, supernode block counts, split histories and materialized
aggregates — so loading never re-splits and costs O(n) deserialization.

The dict-level functions (``warehouse_to_dict`` / ``warehouse_from_dict``)
are exposed for tests and for callers who want a different transport.
"""

from __future__ import annotations

import json
import math
import os

from ..config import DCTreeConfig, XTreeConfig
from ..core.mds import MDS
from ..core.node import DCDataNode, DCDirNode
from ..core.tree import DCTree
from ..cube.aggregation import AggregateVector
from ..cube.record import DataRecord
from ..cube.schema import CubeSchema, Dimension, Measure
from ..errors import ReproError, StorageError
from ..scan.table import FlatTable
from ..warehouse import Warehouse
from ..xtree.mbr import MBR
from ..storage import faults as faults_mod
from ..xtree.node import XDataNode, XDirNode
from ..xtree.tree import XTree
from . import format as fmt

# ----------------------------------------------------------------------
# schema & hierarchy sections
# ----------------------------------------------------------------------


def _schema_to_dict(schema):
    return {
        "dimensions": [
            {"name": dim.name, "levels": list(dim.level_names)}
            for dim in schema.dimensions
        ],
        "measures": [measure.name for measure in schema.measures],
    }


def _schema_from_dict(data):
    return CubeSchema(
        dimensions=[
            Dimension(entry["name"], tuple(entry["levels"]))
            for entry in data["dimensions"]
        ],
        measures=[Measure(name) for name in data["measures"]],
    )


def _hierarchies_to_list(schema):
    return [
        dim.hierarchy.dump_nodes() for dim in schema.dimensions
    ]


def _restore_hierarchies(schema, rows_per_dimension):
    if len(rows_per_dimension) != schema.n_dimensions:
        raise StorageError(
            "file has %d hierarchies, schema has %d dimensions"
            % (len(rows_per_dimension), schema.n_dimensions)
        )
    for dim, rows in zip(schema.dimensions, rows_per_dimension):
        dim.hierarchy.restore_nodes(rows)


# ----------------------------------------------------------------------
# shared leaf pieces
# ----------------------------------------------------------------------


def _record_to_list(record):
    return [[list(path) for path in record.paths], list(record.measures)]


def _record_from_list(data):
    paths, measures = data
    return DataRecord(
        tuple(tuple(path) for path in paths), tuple(measures)
    )


#: Public names for the checkpoint's record codec (raw ID paths — valid
#: only together with the hierarchy state saved alongside them).
record_to_list = _record_to_list
record_from_list = _record_from_list


def record_to_labels(schema, record):
    """Schema-independent record encoding: label paths plus measures.

    This is the WAL codec.  Hierarchy IDs are interned on first use, so
    a record inserted *after* a checkpoint carries IDs the checkpointed
    hierarchy has never seen; logging labels instead lets replay
    re-intern them through :meth:`~repro.cube.schema.CubeSchema.record`
    exactly like the original insert did.
    """
    paths = [
        [dim.hierarchy.label(value) for value in path]
        for dim, path in zip(schema.dimensions, record.paths)
    ]
    return [paths, list(record.measures)]


def record_from_labels(schema, data):
    """Rebuild a WAL-logged record against ``schema`` (interns labels)."""
    paths, measures = data
    return schema.record(tuple(tuple(path) for path in paths), measures)


def _aggregate_to_list(aggregate):
    rows = []
    for summary in aggregate.summaries:
        if summary.count == 0:
            rows.append([0.0, 0, None, None])
        else:
            rows.append([summary.sum, summary.count, summary.min,
                         summary.max])
    return rows


def _aggregate_from_list(rows):
    vector = AggregateVector(len(rows))
    for summary, (sum_, count, min_, max_) in zip(vector.summaries, rows):
        summary.sum = sum_
        summary.count = count
        summary.min = math.inf if min_ is None else min_
        summary.max = -math.inf if max_ is None else max_
    return vector


def _mds_to_list(mds):
    return [
        [sorted(mds.value_set(dim)), mds.level(dim)]
        for dim in range(mds.n_dimensions)
    ]


def _mds_from_list(rows):
    return MDS([set(values) for values, _level in rows],
               [level for _values, level in rows])


# ----------------------------------------------------------------------
# DC-tree
# ----------------------------------------------------------------------


def _dc_node_to_dict(node):
    base = {
        "blocks": node.n_blocks,
        "mds": _mds_to_list(node.mds),
        "agg": _aggregate_to_list(node.aggregate),
    }
    if node.is_leaf:
        base["type"] = fmt.DATA_NODE
        base["records"] = [_record_to_list(r) for r in node.records]
    else:
        base["type"] = fmt.DIR_NODE
        base["children"] = [_dc_node_to_dict(c) for c in node.children]
    return base


def _dc_node_from_dict(data, tree):
    mds = _mds_from_list(data["mds"])
    aggregate = _aggregate_from_list(data["agg"])
    if data["type"] == fmt.DATA_NODE:
        node = DCDataNode(
            mds, aggregate, tree.tracker.new_page_id(),
            records=[_record_from_list(r) for r in data["records"]],
        )
    elif data["type"] == fmt.DIR_NODE:
        node = DCDirNode(
            mds, aggregate, tree.tracker.new_page_id(),
            children=[_dc_node_from_dict(c, tree) for c in data["children"]],
        )
    else:
        raise StorageError("unknown node type %r" % (data.get("type"),))
    node.n_blocks = data["blocks"]
    return node


def _dc_config_to_dict(config):
    return {
        "dir_capacity": config.dir_capacity,
        "leaf_capacity": config.leaf_capacity,
        "min_fanout_fraction": config.min_fanout_fraction,
        "max_overlap_fraction": config.max_overlap_fraction,
        "split_algorithm": config.split_algorithm,
        "use_materialized_aggregates": config.use_materialized_aggregates,
        "capacity_mode": config.capacity_mode,
        "use_hot_path_caches": config.use_hot_path_caches,
        "use_result_cache": config.use_result_cache,
        "result_cache_capacity": config.result_cache_capacity,
        "wal_fsync_interval": config.wal_fsync_interval,
    }


def _dc_tree_to_dict(tree):
    return {
        "root": _dc_node_to_dict(tree.root),
        "config": _dc_config_to_dict(tree.config),
    }


def _dc_tree_from_dict(data, schema, config=None):
    if config is None and "config" in data:
        # Restore the saved configuration - capacities in particular must
        # match the stored structure (a node legal at dir_capacity 64 is
        # overfull at the default 16).
        config = DCTreeConfig(**data["config"])
    tree = DCTree(schema, config=config)
    root = _dc_node_from_dict(data["root"], tree)
    # Root swap = mutation: adopt_root keeps the result cache's version
    # discipline and notifies any attached durability sink.
    tree.adopt_root(root, root.aggregate.count)
    return tree


# ----------------------------------------------------------------------
# X-tree
# ----------------------------------------------------------------------


def _x_node_to_dict(node):
    base = {
        "blocks": node.n_blocks,
        "mbr": [list(node.mbr.lows), list(node.mbr.highs)],
        "history": sorted(node.split_history),
    }
    if node.is_leaf:
        base["type"] = fmt.DATA_NODE
        base["records"] = [_record_to_list(r) for _p, r in node.entries]
    else:
        base["type"] = fmt.DIR_NODE
        base["children"] = [_x_node_to_dict(c) for c in node.children]
    return base


def _x_node_from_dict(data, tree):
    mbr = MBR(data["mbr"][0], data["mbr"][1])
    if data["type"] == fmt.DATA_NODE:
        records = [_record_from_list(r) for r in data["records"]]
        node = XDataNode(
            mbr, tree.tracker.new_page_id(),
            entries=[(r.flat_point(), r) for r in records],
        )
    elif data["type"] == fmt.DIR_NODE:
        node = XDirNode(
            mbr, tree.tracker.new_page_id(),
            children=[_x_node_from_dict(c, tree) for c in data["children"]],
        )
    else:
        raise StorageError("unknown node type %r" % (data.get("type"),))
    node.n_blocks = data["blocks"]
    node.split_history = frozenset(data["history"])
    return node


def _x_config_to_dict(config):
    return {
        "dir_capacity": config.dir_capacity,
        "leaf_capacity": config.leaf_capacity,
        "min_fanout_fraction": config.min_fanout_fraction,
        "max_overlap_fraction": config.max_overlap_fraction,
    }


def _x_tree_to_dict(tree):
    return {
        "root": _x_node_to_dict(tree.root),
        "count": len(tree),
        "config": _x_config_to_dict(tree.config),
    }


def _x_tree_from_dict(data, schema, config=None):
    if config is None and "config" in data:
        config = XTreeConfig(**data["config"])
    tree = XTree(schema, config=config)
    tree._root = _x_node_from_dict(data["root"], tree)
    tree._n_records = data["count"]
    tree._root_empty = data["count"] == 0
    return tree


# ----------------------------------------------------------------------
# scan
# ----------------------------------------------------------------------


def _scan_to_dict(table):
    return {"records": [_record_to_list(r) for r in table.records()]}


def _scan_from_dict(data, schema):
    table = FlatTable(schema)
    for row in data["records"]:
        table.insert(_record_from_list(row))
    table.tracker.reset(clear_buffer=True)
    return table


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------


def warehouse_to_dict(warehouse):
    """The warehouse as one JSON-serializable dict."""
    if warehouse.backend == "dc-tree":
        index = _dc_tree_to_dict(warehouse.index)
    elif warehouse.backend == "x-tree":
        index = _x_tree_to_dict(warehouse.index)
    else:
        index = _scan_to_dict(warehouse.index)
    return {
        "meta": {
            "version": fmt.FORMAT_VERSION,
            "backend": warehouse.backend,
            "records": len(warehouse),
        },
        "schema": _schema_to_dict(warehouse.schema),
        "hierarchies": _hierarchies_to_list(warehouse.schema),
        "index": index,
    }


def warehouse_from_dict(data, config=None):
    """Restore a warehouse from :func:`warehouse_to_dict` output."""
    fmt.check_version(data.get("meta", {}))
    backend = data["meta"]["backend"]
    schema = _schema_from_dict(data["schema"])
    _restore_hierarchies(schema, data["hierarchies"])
    if backend == "dc-tree":
        index = _dc_tree_from_dict(data["index"], schema, config)
    elif backend == "x-tree":
        index = _x_tree_from_dict(data["index"], schema, config)
    elif backend == "scan":
        index = _scan_from_dict(data["index"], schema)
    else:
        raise StorageError("unknown backend %r in warehouse file" % backend)
    warehouse = Warehouse.wrap(index)
    if len(warehouse.index) != data["meta"]["records"]:
        raise StorageError(
            "record count mismatch: meta says %d, index holds %d"
            % (data["meta"]["records"], len(warehouse.index))
        )
    return warehouse


#: Checkpoint bytes are written in chunks so fault injection can tear a
#: save at page-like granularity, as a real crash would.
_SAVE_CHUNK_BYTES = 1 << 16


def _fsync_directory(dirpath):
    """Best-effort directory fsync so a rename itself is durable."""
    try:
        fd = os.open(dirpath or ".", os.O_RDONLY)
    except OSError:
        return  # platform without directory fds — nothing more we can do
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def save_warehouse(warehouse, path, extra_meta=None, faults=None):
    """Write the warehouse to ``path`` (JSON), atomically.

    The document — with ``extra_meta`` merged into its meta section and
    per-section CRCs embedded — is written to ``path + ".tmp"``, flushed
    and fsynced, then moved over ``path`` with ``os.replace``.  A crash
    at any point leaves the previous file intact; a leftover ``.tmp`` is
    overwritten by the next save.  ``faults`` optionally routes every
    write/fsync/rename through a fault injector (crash testing).
    """
    path = os.fspath(path)
    data = warehouse_to_dict(warehouse)
    if extra_meta:
        data["meta"].update(extra_meta)
    data["checksums"] = fmt.compute_checksums(data)
    payload = json.dumps(data).encode("utf-8")
    tmp_path = path + ".tmp"
    handle = open(tmp_path, "wb")
    try:
        for start in range(0, len(payload), _SAVE_CHUNK_BYTES):
            faults_mod.write_through(
                faults, handle, "checkpoint.write",
                payload[start:start + _SAVE_CHUNK_BYTES],
            )
        handle.flush()
        faults_mod.op_through(faults, "checkpoint.fsync")
        os.fsync(handle.fileno())
    finally:
        handle.close()
    faults_mod.op_through(faults, "checkpoint.replace")
    os.replace(tmp_path, path)
    _fsync_directory(os.path.dirname(path))


def read_warehouse_file(path, faults=None):
    """Read and integrity-check a warehouse file; returns the raw dict.

    Raises :class:`StorageError` — naming the path and byte offset —
    on unreadable, truncated or checksum-failing files, *before* any
    deserialization is attempted.  Recovery uses this to decide whether
    a checkpoint is trustworthy.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            raw = faults_mod.read_through(faults, handle, "checkpoint.read")
    except OSError as error:
        raise StorageError(
            "cannot read warehouse file %s: %s" % (path, error)
        )
    try:
        data = json.loads(raw.decode("utf-8"))
    except UnicodeDecodeError as error:
        raise StorageError(
            "corrupt warehouse file %s: undecodable UTF-8 at byte %d of %d"
            % (path, error.start, len(raw))
        )
    except json.JSONDecodeError as error:
        raise StorageError(
            "corrupt warehouse file %s: %s at byte %d of %d on disk "
            "(truncated or torn write?)" % (path, error.msg, error.pos,
                                            len(raw))
        )
    if not isinstance(data, dict):
        raise StorageError(
            "corrupt warehouse file %s: top level is %s, not an object"
            % (path, type(data).__name__)
        )
    fmt.verify_checksums(data, path)
    return data


def load_warehouse(path, config=None):
    """Read a warehouse back from ``path``.

    ``config`` optionally overrides the tree configuration of the loaded
    index (capacities must be compatible with the stored structure: a
    loaded node may exceed a smaller capacity until its next split).

    Every failure mode — missing file, truncation, bit-rot, missing or
    malformed fields — surfaces as a :class:`StorageError` naming the
    file, so callers (the CLI in particular) never see a raw
    ``JSONDecodeError``/``KeyError`` traceback.
    """
    data = read_warehouse_file(path)
    try:
        return warehouse_from_dict(data, config=config)
    except ReproError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as error:
        raise StorageError(
            "malformed warehouse file %s: %s: %s"
            % (path, type(error).__name__, error)
        )
