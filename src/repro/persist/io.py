"""Saving and loading warehouses (all three backends).

``save_warehouse`` writes a single JSON file; ``load_warehouse`` restores
a query-equivalent warehouse from it.  For the tree backends the exact
structure is preserved — nodes, MDSs/MBRs, supernode block counts,
split histories and materialized aggregates — so loading never re-splits
and costs O(n) deserialization.

The dict-level functions (``warehouse_to_dict`` / ``warehouse_from_dict``)
are exposed for tests and for callers who want a different transport.
"""

from __future__ import annotations

import json
import math

from ..config import DCTreeConfig, XTreeConfig
from ..core.mds import MDS
from ..core.node import DCDataNode, DCDirNode
from ..core.tree import DCTree
from ..cube.aggregation import AggregateVector
from ..cube.record import DataRecord
from ..cube.schema import CubeSchema, Dimension, Measure
from ..errors import StorageError
from ..scan.table import FlatTable
from ..warehouse import Warehouse
from ..xtree.mbr import MBR
from ..xtree.node import XDataNode, XDirNode
from ..xtree.tree import XTree
from . import format as fmt

# ----------------------------------------------------------------------
# schema & hierarchy sections
# ----------------------------------------------------------------------


def _schema_to_dict(schema):
    return {
        "dimensions": [
            {"name": dim.name, "levels": list(dim.level_names)}
            for dim in schema.dimensions
        ],
        "measures": [measure.name for measure in schema.measures],
    }


def _schema_from_dict(data):
    return CubeSchema(
        dimensions=[
            Dimension(entry["name"], tuple(entry["levels"]))
            for entry in data["dimensions"]
        ],
        measures=[Measure(name) for name in data["measures"]],
    )


def _hierarchies_to_list(schema):
    return [
        dim.hierarchy.dump_nodes() for dim in schema.dimensions
    ]


def _restore_hierarchies(schema, rows_per_dimension):
    if len(rows_per_dimension) != schema.n_dimensions:
        raise StorageError(
            "file has %d hierarchies, schema has %d dimensions"
            % (len(rows_per_dimension), schema.n_dimensions)
        )
    for dim, rows in zip(schema.dimensions, rows_per_dimension):
        dim.hierarchy.restore_nodes(rows)


# ----------------------------------------------------------------------
# shared leaf pieces
# ----------------------------------------------------------------------


def _record_to_list(record):
    return [[list(path) for path in record.paths], list(record.measures)]


def _record_from_list(data):
    paths, measures = data
    return DataRecord(
        tuple(tuple(path) for path in paths), tuple(measures)
    )


def _aggregate_to_list(aggregate):
    rows = []
    for summary in aggregate.summaries:
        if summary.count == 0:
            rows.append([0.0, 0, None, None])
        else:
            rows.append([summary.sum, summary.count, summary.min,
                         summary.max])
    return rows


def _aggregate_from_list(rows):
    vector = AggregateVector(len(rows))
    for summary, (sum_, count, min_, max_) in zip(vector.summaries, rows):
        summary.sum = sum_
        summary.count = count
        summary.min = math.inf if min_ is None else min_
        summary.max = -math.inf if max_ is None else max_
    return vector


def _mds_to_list(mds):
    return [
        [sorted(mds.value_set(dim)), mds.level(dim)]
        for dim in range(mds.n_dimensions)
    ]


def _mds_from_list(rows):
    return MDS([set(values) for values, _level in rows],
               [level for _values, level in rows])


# ----------------------------------------------------------------------
# DC-tree
# ----------------------------------------------------------------------


def _dc_node_to_dict(node):
    base = {
        "blocks": node.n_blocks,
        "mds": _mds_to_list(node.mds),
        "agg": _aggregate_to_list(node.aggregate),
    }
    if node.is_leaf:
        base["type"] = fmt.DATA_NODE
        base["records"] = [_record_to_list(r) for r in node.records]
    else:
        base["type"] = fmt.DIR_NODE
        base["children"] = [_dc_node_to_dict(c) for c in node.children]
    return base


def _dc_node_from_dict(data, tree):
    mds = _mds_from_list(data["mds"])
    aggregate = _aggregate_from_list(data["agg"])
    if data["type"] == fmt.DATA_NODE:
        node = DCDataNode(
            mds, aggregate, tree.tracker.new_page_id(),
            records=[_record_from_list(r) for r in data["records"]],
        )
    elif data["type"] == fmt.DIR_NODE:
        node = DCDirNode(
            mds, aggregate, tree.tracker.new_page_id(),
            children=[_dc_node_from_dict(c, tree) for c in data["children"]],
        )
    else:
        raise StorageError("unknown node type %r" % (data.get("type"),))
    node.n_blocks = data["blocks"]
    return node


def _dc_config_to_dict(config):
    return {
        "dir_capacity": config.dir_capacity,
        "leaf_capacity": config.leaf_capacity,
        "min_fanout_fraction": config.min_fanout_fraction,
        "max_overlap_fraction": config.max_overlap_fraction,
        "split_algorithm": config.split_algorithm,
        "use_materialized_aggregates": config.use_materialized_aggregates,
        "capacity_mode": config.capacity_mode,
        "use_hot_path_caches": config.use_hot_path_caches,
        "use_result_cache": config.use_result_cache,
        "result_cache_capacity": config.result_cache_capacity,
    }


def _dc_tree_to_dict(tree):
    return {
        "root": _dc_node_to_dict(tree.root),
        "config": _dc_config_to_dict(tree.config),
    }


def _dc_tree_from_dict(data, schema, config=None):
    if config is None and "config" in data:
        # Restore the saved configuration - capacities in particular must
        # match the stored structure (a node legal at dir_capacity 64 is
        # overfull at the default 16).
        config = DCTreeConfig(**data["config"])
    tree = DCTree(schema, config=config)
    tree._root = _dc_node_from_dict(data["root"], tree)
    tree._n_records = tree._root.aggregate.count
    # Root swap = mutation: keep the result cache's version discipline.
    tree.note_mutation()
    return tree


# ----------------------------------------------------------------------
# X-tree
# ----------------------------------------------------------------------


def _x_node_to_dict(node):
    base = {
        "blocks": node.n_blocks,
        "mbr": [list(node.mbr.lows), list(node.mbr.highs)],
        "history": sorted(node.split_history),
    }
    if node.is_leaf:
        base["type"] = fmt.DATA_NODE
        base["records"] = [_record_to_list(r) for _p, r in node.entries]
    else:
        base["type"] = fmt.DIR_NODE
        base["children"] = [_x_node_to_dict(c) for c in node.children]
    return base


def _x_node_from_dict(data, tree):
    mbr = MBR(data["mbr"][0], data["mbr"][1])
    if data["type"] == fmt.DATA_NODE:
        records = [_record_from_list(r) for r in data["records"]]
        node = XDataNode(
            mbr, tree.tracker.new_page_id(),
            entries=[(r.flat_point(), r) for r in records],
        )
    elif data["type"] == fmt.DIR_NODE:
        node = XDirNode(
            mbr, tree.tracker.new_page_id(),
            children=[_x_node_from_dict(c, tree) for c in data["children"]],
        )
    else:
        raise StorageError("unknown node type %r" % (data.get("type"),))
    node.n_blocks = data["blocks"]
    node.split_history = frozenset(data["history"])
    return node


def _x_config_to_dict(config):
    return {
        "dir_capacity": config.dir_capacity,
        "leaf_capacity": config.leaf_capacity,
        "min_fanout_fraction": config.min_fanout_fraction,
        "max_overlap_fraction": config.max_overlap_fraction,
    }


def _x_tree_to_dict(tree):
    return {
        "root": _x_node_to_dict(tree.root),
        "count": len(tree),
        "config": _x_config_to_dict(tree.config),
    }


def _x_tree_from_dict(data, schema, config=None):
    if config is None and "config" in data:
        config = XTreeConfig(**data["config"])
    tree = XTree(schema, config=config)
    tree._root = _x_node_from_dict(data["root"], tree)
    tree._n_records = data["count"]
    tree._root_empty = data["count"] == 0
    return tree


# ----------------------------------------------------------------------
# scan
# ----------------------------------------------------------------------


def _scan_to_dict(table):
    return {"records": [_record_to_list(r) for r in table.records()]}


def _scan_from_dict(data, schema):
    table = FlatTable(schema)
    for row in data["records"]:
        table.insert(_record_from_list(row))
    table.tracker.reset(clear_buffer=True)
    return table


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------


def warehouse_to_dict(warehouse):
    """The warehouse as one JSON-serializable dict."""
    if warehouse.backend == "dc-tree":
        index = _dc_tree_to_dict(warehouse.index)
    elif warehouse.backend == "x-tree":
        index = _x_tree_to_dict(warehouse.index)
    else:
        index = _scan_to_dict(warehouse.index)
    return {
        "meta": {
            "version": fmt.FORMAT_VERSION,
            "backend": warehouse.backend,
            "records": len(warehouse),
        },
        "schema": _schema_to_dict(warehouse.schema),
        "hierarchies": _hierarchies_to_list(warehouse.schema),
        "index": index,
    }


def warehouse_from_dict(data, config=None):
    """Restore a warehouse from :func:`warehouse_to_dict` output."""
    fmt.check_version(data.get("meta", {}))
    backend = data["meta"]["backend"]
    schema = _schema_from_dict(data["schema"])
    _restore_hierarchies(schema, data["hierarchies"])
    if backend == "dc-tree":
        index = _dc_tree_from_dict(data["index"], schema, config)
    elif backend == "x-tree":
        index = _x_tree_from_dict(data["index"], schema, config)
    elif backend == "scan":
        index = _scan_from_dict(data["index"], schema)
    else:
        raise StorageError("unknown backend %r in warehouse file" % backend)
    warehouse = Warehouse.wrap(index)
    if len(warehouse.index) != data["meta"]["records"]:
        raise StorageError(
            "record count mismatch: meta says %d, index holds %d"
            % (data["meta"]["records"], len(warehouse.index))
        )
    return warehouse


def save_warehouse(warehouse, path):
    """Write the warehouse to ``path`` (JSON)."""
    with open(path, "w") as handle:
        json.dump(warehouse_to_dict(warehouse), handle)


def load_warehouse(path, config=None):
    """Read a warehouse back from ``path``.

    ``config`` optionally overrides the tree configuration of the loaded
    index (capacities must be compatible with the stored structure: a
    loaded node may exceed a smaller capacity until its next split).
    """
    with open(path) as handle:
        data = json.load(handle)
    return warehouse_from_dict(data, config=config)
