"""Aggregate vectors materialized in DC-tree directory entries.

The paper materializes "the values of the measure attributes" per MDS and
notes that the range-query algorithm uses SUM but "any other aggregation,
e.g. AVERAGE, would have to be treated accordingly".  We materialize a small
*vector* of algebraic summaries per measure — (sum, count, min, max) — from
which SUM, COUNT, AVG, MIN and MAX range queries can all be answered.

SUM and COUNT are fully invertible, so deletions subtract in O(1).  MIN and
MAX are only *semi*-invertible: removing the current extremum invalidates
the summary, which the tree repairs by recomputing the affected path from
its children (see ``DCTree.delete``).  :meth:`MeasureSummary.subtract_value`
reports whether such a repair is needed.
"""

from __future__ import annotations

import math

from ..errors import QueryError

#: Aggregation operators supported by range queries.
SUPPORTED_AGGREGATES = ("sum", "count", "avg", "min", "max")


class MeasureSummary:
    """Algebraic summary of one measure over a set of records."""

    __slots__ = ("sum", "count", "min", "max")

    def __init__(self, sum_=0.0, count=0, min_=math.inf, max_=-math.inf):
        self.sum = sum_
        self.count = count
        self.min = min_
        self.max = max_

    @classmethod
    def of_value(cls, value):
        """Summary of a single measure value."""
        return cls(value, 1, value, value)

    def copy(self):
        return MeasureSummary(self.sum, self.count, self.min, self.max)

    def is_empty(self):
        return self.count == 0

    def add_value(self, value):
        """Fold one measure value into the summary."""
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add_summary(self, other):
        """Fold another summary into this one."""
        self.sum += other.sum
        self.count += other.count
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def subtract_value(self, value):
        """Remove one value; return True if min/max need recomputation."""
        self.sum -= value
        self.count -= 1
        if self.count == 0:
            self.min = math.inf
            self.max = -math.inf
            return False
        return value <= self.min or value >= self.max

    def aggregate(self, op):
        """Evaluate ``op`` over this summary.

        Empty summaries yield the operator's neutral result: 0 for SUM and
        COUNT, ``None`` for AVG, MIN and MAX.
        """
        if op not in SUPPORTED_AGGREGATES:
            raise QueryError(
                "unsupported aggregate %r (supported: %s)"
                % (op, ", ".join(SUPPORTED_AGGREGATES))
            )
        if op == "sum":
            return self.sum
        if op == "count":
            return self.count
        if self.count == 0:
            return None
        if op == "avg":
            return self.sum / self.count
        if op == "min":
            return self.min
        return self.max

    def __eq__(self, other):
        if not isinstance(other, MeasureSummary):
            return NotImplemented
        return (
            math.isclose(self.sum, other.sum, abs_tol=1e-9)
            and self.count == other.count
            and self.min == other.min
            and self.max == other.max
        )

    def __repr__(self):
        return "MeasureSummary(sum=%g, count=%d, min=%g, max=%g)" % (
            self.sum,
            self.count,
            self.min,
            self.max,
        )


class AggregateVector:
    """One :class:`MeasureSummary` per measure of the cube."""

    __slots__ = ("summaries",)

    def __init__(self, n_measures):
        self.summaries = tuple(MeasureSummary() for _ in range(n_measures))

    @classmethod
    def of_record(cls, record):
        """Vector summarizing a single record."""
        vector = cls(len(record.measures))
        vector.add_record(record)
        return vector

    @property
    def count(self):
        """Number of records folded in (identical across measures)."""
        return self.summaries[0].count if self.summaries else 0

    def copy(self):
        clone = AggregateVector(0)
        clone.summaries = tuple(s.copy() for s in self.summaries)
        return clone

    def clear(self):
        for summary in self.summaries:
            summary.sum = 0.0
            summary.count = 0
            summary.min = math.inf
            summary.max = -math.inf

    def add_record(self, record):
        for summary, value in zip(self.summaries, record.measures):
            summary.add_value(value)

    def add_vector(self, other):
        for mine, theirs in zip(self.summaries, other.summaries):
            mine.add_summary(theirs)

    def subtract_record(self, record):
        """Remove one record; return True if any min/max went stale."""
        stale = False
        for summary, value in zip(self.summaries, record.measures):
            if summary.subtract_value(value):
                stale = True
        return stale

    def aggregate(self, op, measure_index=0):
        """Evaluate ``op`` for the measure at ``measure_index``."""
        return self.summaries[measure_index].aggregate(op)

    def __eq__(self, other):
        if not isinstance(other, AggregateVector):
            return NotImplemented
        return self.summaries == other.summaries

    def __repr__(self):
        return "AggregateVector(%r)" % (list(self.summaries),)


class StreamingAggregator:
    """Accumulates query results record-by-record (scan & leaf paths).

    Both baselines and the DC-tree's partial-overlap leaf path fold
    individual records; the DC-tree's containment path folds whole
    :class:`AggregateVector` instances.  This helper hides the difference
    and finally evaluates the requested operator.
    """

    __slots__ = ("_summary", "_op", "_measure_index")

    def __init__(self, op, measure_index=0):
        if op not in SUPPORTED_AGGREGATES:
            raise QueryError(
                "unsupported aggregate %r (supported: %s)"
                % (op, ", ".join(SUPPORTED_AGGREGATES))
            )
        self._summary = MeasureSummary()
        self._op = op
        self._measure_index = measure_index

    def copy(self):
        """Independent clone (exact — summaries copy field by field).

        The result cache hands out aggregator copies so callers can keep
        merging groups without poisoning the memoized originals.
        """
        clone = StreamingAggregator(self._op, self._measure_index)
        clone._summary = self._summary.copy()
        return clone

    def add_record(self, record):
        self._summary.add_value(record.measures[self._measure_index])

    def add_vector(self, vector):
        self._summary.add_summary(vector.summaries[self._measure_index])

    def add_summary(self, summary):
        self._summary.add_summary(summary)

    @property
    def count(self):
        return self._summary.count

    @property
    def summary(self):
        """The underlying :class:`MeasureSummary` (for merging groups)."""
        return self._summary

    @property
    def op(self):
        return self._op

    def result(self):
        """Final value of the aggregation."""
        return self._summary.aggregate(self._op)
