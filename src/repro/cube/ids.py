"""Level-tagged 32-bit attribute-value IDs.

Section 3.1 of the paper: "An ID is represented by a 32-bit integer. The
highest four bits define the height of an ID in the concept hierarchy of its
dimension to distinguish IDs from different levels."

This module implements exactly that encoding.  The remaining 28 bits hold a
counter that is allocated per ``(dimension, level)`` in insertion order,
which is what the paper's conversion of a range MDS into a range MBR for the
X-tree relies on (the counter order *is* the artificial total order).
"""

from __future__ import annotations

from ..errors import HierarchyError, IdSpaceExhaustedError

#: Number of bits reserved for the hierarchy level.
LEVEL_BITS = 4
#: Number of bits left for the per-level counter.
COUNTER_BITS = 32 - LEVEL_BITS
#: Highest encodable hierarchy level (the root/ALL level must fit here).
MAX_LEVEL = (1 << LEVEL_BITS) - 1
#: Highest encodable counter value.
MAX_COUNTER = (1 << COUNTER_BITS) - 1

#: Counter conventionally used for the unique ALL value of a dimension.
ALL_COUNTER = 0


def make_id(level, counter):
    """Pack ``level`` and ``counter`` into a 32-bit attribute ID.

    >>> make_id(2, 5)
    536870917
    >>> hex(make_id(2, 5))
    '0x20000005'
    """
    if not 0 <= level <= MAX_LEVEL:
        raise HierarchyError(
            "hierarchy level %r out of range [0, %d]" % (level, MAX_LEVEL)
        )
    if not 0 <= counter <= MAX_COUNTER:
        raise IdSpaceExhaustedError(
            "counter %r out of range [0, %d] at level %d"
            % (counter, MAX_COUNTER, level)
        )
    return (level << COUNTER_BITS) | counter


def level_of(attr_id):
    """Return the hierarchy level encoded in ``attr_id``.

    The level is the distance from the leaves of the concept hierarchy
    (leaves have level 0, Definition 1 of the paper).
    """
    return attr_id >> COUNTER_BITS


def counter_of(attr_id):
    """Return the per-level counter encoded in ``attr_id``."""
    return attr_id & MAX_COUNTER


def split_id(attr_id):
    """Return ``(level, counter)`` for ``attr_id``."""
    return attr_id >> COUNTER_BITS, attr_id & MAX_COUNTER


def is_valid_id(attr_id):
    """Return True if ``attr_id`` fits the 32-bit encoding."""
    return isinstance(attr_id, int) and 0 <= attr_id <= 0xFFFFFFFF


class IdAllocator:
    """Allocates sequential counters for one dimension, one level at a time.

    The allocator never reuses counters; deleting a value from a hierarchy
    leaves a hole in the counter space, which is harmless (the counters only
    need to be unique, plus monotone within a level for the X-tree's total
    ordering).
    """

    def __init__(self):
        self._next = {}

    def allocate(self, level):
        """Return a fresh ID at ``level``; raise when the level is full."""
        counter = self._next.get(level, 0)
        if counter > MAX_COUNTER:
            raise IdSpaceExhaustedError(
                "no IDs left at hierarchy level %d" % level
            )
        self._next[level] = counter + 1
        return make_id(level, counter)

    def allocated_count(self, level):
        """Number of IDs handed out so far at ``level``."""
        return self._next.get(level, 0)
