"""Dynamic concept hierarchies (Definition 1 of the paper).

A concept hierarchy for a dimension is a tree whose nodes are the attribute
values of that dimension, whose root is the special value ALL, and whose
edges represent the is-a relationship.  Leaves have hierarchy level 0; the
level of an inner value is its distance from the leaves.

The paper stores hierarchies "by means of dictionaries that store the ID of
the father for each ID" and manages them *dynamically*: every inserted data
record carries one string value per functional attribute and the hierarchy
assigns (or reuses) a level-tagged 32-bit ID for each of them.  This module
implements that behaviour, plus the navigation operations the DC-tree needs
(ancestor at a level, descendants at a level, enumeration of a level).

Values are identified by their *path*, not by their label alone: the same
label may legally occur under different parents (e.g. TPC-D market segments
repeat under every nation, Fig. 9 of the paper).
"""

from __future__ import annotations

from .. import hotpath
from ..errors import HierarchyError
from . import ids as ids_mod


class ConceptHierarchy:
    """One dynamic concept hierarchy, i.e. one dimension's value tree.

    Parameters
    ----------
    name:
        Dimension name, e.g. ``"Customer"``.
    level_names:
        Names of the functional attributes ordered from the *leaf* level
        upwards, e.g. ``("Customer", "MktSegment", "Nation", "Region")``.
        ALL is implicit and sits one level above the last name.
    """

    def __init__(self, name, level_names):
        if not level_names:
            raise HierarchyError("a dimension needs at least one level")
        if len(level_names) > ids_mod.MAX_LEVEL:
            raise HierarchyError(
                "dimension %r has %d levels; at most %d are encodable"
                % (name, len(level_names), ids_mod.MAX_LEVEL)
            )
        self.name = name
        self.level_names = tuple(level_names)
        self._allocator = ids_mod.IdAllocator()
        self._parent = {}
        self._children = {}
        self._label = {}
        self._child_by_label = {}
        self._level_values = {}
        self._descendant_cache = {}
        # Flattened ancestor tables: per ID the tuple of its ancestors from
        # itself up to ALL, so ancestor() is a single indexed lookup.  A
        # value's ancestry is fixed at creation (hierarchies only ever grow
        # downwards), so the tables never need invalidation — only the
        # descendant cache does.
        self._ancestor_table = {}
        self.all_id = self._new_node(self.top_level, "ALL", parent=None)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    @property
    def top_level(self):
        """Hierarchy level of ALL (= number of functional attributes)."""
        return len(self.level_names)

    @property
    def n_attributes(self):
        """Number of functional attributes (levels below ALL)."""
        return len(self.level_names)

    def level_name(self, level):
        """Name of the functional attribute at ``level`` ('ALL' on top)."""
        if level == self.top_level:
            return "ALL"
        if not 0 <= level < self.top_level:
            raise HierarchyError(
                "level %r out of range for dimension %r" % (level, self.name)
            )
        return self.level_names[level]

    def __len__(self):
        """Total number of values in the hierarchy, including ALL."""
        return len(self._label)

    def __contains__(self, attr_id):
        return attr_id in self._label

    # ------------------------------------------------------------------
    # dynamic maintenance
    # ------------------------------------------------------------------

    def insert_path(self, values):
        """Insert (or look up) one root-to-leaf value path; return its IDs.

        ``values`` is ordered from the highest functional attribute down to
        the leaf, e.g. ``("EUROPE", "GERMANY", "BUILDING", "Customer#42")``.
        Missing hierarchy nodes are created on the fly (dynamic maintenance,
        §3.1).  Returns a tuple of IDs ordered the same way.
        """
        if len(values) != self.n_attributes:
            raise HierarchyError(
                "dimension %r expects %d attribute values, got %d: %r"
                % (self.name, self.n_attributes, len(values), values)
            )
        path = []
        parent = self.all_id
        level = self.top_level - 1
        for value in values:
            key = (parent, value)
            child = self._child_by_label.get(key)
            if child is None:
                child = self._new_node(level, value, parent)
            path.append(child)
            parent = child
            level -= 1
        return tuple(path)

    def lookup_path(self, values):
        """Like :meth:`insert_path` but never creates nodes.

        Returns ``None`` when the path does not exist.
        """
        if len(values) != self.n_attributes:
            raise HierarchyError(
                "dimension %r expects %d attribute values, got %d"
                % (self.name, self.n_attributes, len(values))
            )
        path = []
        parent = self.all_id
        for value in values:
            child = self._child_by_label.get((parent, value))
            if child is None:
                return None
            path.append(child)
            parent = child
        return tuple(path)

    def _new_node(self, level, label, parent):
        attr_id = self._allocator.allocate(level)
        self._parent[attr_id] = parent
        self._children[attr_id] = []
        self._label[attr_id] = label
        self._level_values.setdefault(level, []).append(attr_id)
        if parent is None:
            self._ancestor_table[attr_id] = (attr_id,)
        else:
            self._ancestor_table[attr_id] = \
                (attr_id,) + self._ancestor_table[parent]
            self._children[parent].append(attr_id)
            self._child_by_label[(parent, label)] = attr_id
            self._invalidate_ancestor_caches(attr_id)
        return attr_id

    def _invalidate_ancestor_caches(self, attr_id):
        for node in self._ancestor_table[attr_id]:
            self._descendant_cache.pop(node, None)

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------

    def parent(self, attr_id):
        """Father ID of ``attr_id`` (None for ALL)."""
        try:
            return self._parent[attr_id]
        except KeyError:
            raise HierarchyError(
                "unknown ID %r in dimension %r" % (attr_id, self.name)
            ) from None

    def children(self, attr_id):
        """Direct sons of ``attr_id`` (tuple, allocation order)."""
        try:
            return tuple(self._children[attr_id])
        except KeyError:
            raise HierarchyError(
                "unknown ID %r in dimension %r" % (attr_id, self.name)
            ) from None

    def label(self, attr_id):
        """Human-readable label of ``attr_id``."""
        try:
            return self._label[attr_id]
        except KeyError:
            raise HierarchyError(
                "unknown ID %r in dimension %r" % (attr_id, self.name)
            ) from None

    def level_of(self, attr_id):
        """Hierarchy level of ``attr_id`` (decoded from the ID itself)."""
        if attr_id not in self._label:
            raise HierarchyError(
                "unknown ID %r in dimension %r" % (attr_id, self.name)
            )
        return ids_mod.level_of(attr_id)

    def ancestor(self, attr_id, level):
        """Ancestor of ``attr_id`` at ``level`` (may be ``attr_id`` itself).

        This realizes the partial ordering of Definition 1:
        ``a <= ancestor(a, level)`` for every value ``a``.  O(1): one
        lookup in the flattened ancestor table built at insertion time.
        """
        try:
            ancestors = self._ancestor_table[attr_id]
        except KeyError:
            raise HierarchyError(
                "unknown ID %r in dimension %r" % (attr_id, self.name)
            ) from None
        own_level = ids_mod.level_of(attr_id)
        offset = level - own_level
        if offset < 0:
            raise HierarchyError(
                "cannot take ancestor at level %d of a level-%d value"
                % (level, own_level)
            )
        if offset >= len(ancestors):
            raise HierarchyError(
                "level %r out of range for dimension %r" % (level, self.name)
            )
        if not hotpath.enabled():
            # Legacy parent walk, kept so the ablation benchmark can price
            # the flattened tables.
            node = attr_id
            for _ in range(offset):
                node = self._parent[node]
            return node
        return ancestors[offset]

    def ancestors_of(self, attr_id):
        """All ancestors from ``attr_id`` itself up to ALL (a tuple).

        ``ancestors_of(a)[k]`` is the ancestor at ``level_of(a) + k``.
        """
        try:
            return self._ancestor_table[attr_id]
        except KeyError:
            raise HierarchyError(
                "unknown ID %r in dimension %r" % (attr_id, self.name)
            ) from None

    def is_descendant_or_self(self, a, b):
        """Partial ordering test ``a <= b`` (Definition 1)."""
        level_a = self.level_of(a)
        level_b = ids_mod.level_of(b)
        if level_a > level_b:
            return False
        return self.ancestor(a, level_b) == b

    def descendants_at_level(self, attr_id, level):
        """All descendants of ``attr_id`` at exactly ``level`` (frozenset).

        ``descendants_at_level(x, level_of(x))`` is ``{x}``.  Results are
        cached; the cache is invalidated along the ancestor path whenever a
        new value is inserted below it.
        """
        own_level = self.level_of(attr_id)
        if level > own_level:
            raise HierarchyError(
                "descendants at level %d of a level-%d value do not exist"
                % (level, own_level)
            )
        if level == own_level:
            return frozenset((attr_id,))
        cache = self._descendant_cache.setdefault(attr_id, {})
        cached = cache.get(level)
        if cached is not None:
            return cached
        frontier = [attr_id]
        for _ in range(own_level - level):
            next_frontier = []
            for node in frontier:
                next_frontier.extend(self._children[node])
            frontier = next_frontier
        result = frozenset(frontier)
        cache[level] = result
        return result

    def count_descendants_at_level(self, attr_id, level):
        """``len(descendants_at_level(...))`` without building new sets."""
        return len(self.descendants_at_level(attr_id, level))

    def values_at_level(self, level):
        """All IDs currently allocated at ``level``, in allocation order.

        Allocation order is the artificial total order the paper uses to
        convert MDS-based range queries into MBR-based ones for the X-tree.
        """
        return tuple(self._level_values.get(level, ()))

    def n_values_at_level(self, level):
        """Number of values currently known at ``level``."""
        return len(self._level_values.get(level, ()))

    # ------------------------------------------------------------------
    # persistence support
    # ------------------------------------------------------------------

    def dump_nodes(self):
        """All nodes as ``[id, parent, label]`` rows, allocation order.

        ALL is included (parent ``None``); the row order is the counter
        order per level interleaved by creation, which
        :meth:`restore_nodes` relies on to realign the ID allocator.
        """
        rows = []
        for level in sorted(self._level_values, reverse=True):
            for attr_id in self._level_values[level]:
                rows.append(
                    [attr_id, self._parent[attr_id], self._label[attr_id]]
                )
        return rows

    def restore_nodes(self, rows):
        """Rebuild the hierarchy from :meth:`dump_nodes` output.

        Only valid on a freshly constructed hierarchy (it still has just
        its ALL node).  IDs are restored verbatim, so records saved
        alongside the hierarchy stay valid.
        """
        if len(self) != 1:
            raise HierarchyError(
                "restore_nodes needs a fresh hierarchy, this one has %d values"
                % len(self)
            )
        for attr_id, parent, label in rows:
            level = ids_mod.level_of(attr_id)
            if parent is None:
                if attr_id != self.all_id:
                    raise HierarchyError(
                        "root row %r does not match the ALL id" % attr_id
                    )
                continue
            if parent not in self._label:
                raise HierarchyError(
                    "row %r references unknown parent %r" % (attr_id, parent)
                )
            self._parent[attr_id] = parent
            self._children[attr_id] = []
            self._label[attr_id] = label
            self._level_values.setdefault(level, []).append(attr_id)
            # Rows arrive top-down, so the parent's table already exists.
            self._ancestor_table[attr_id] = \
                (attr_id,) + self._ancestor_table[parent]
            self._children[parent].append(attr_id)
            self._child_by_label[(parent, label)] = attr_id
            counter = ids_mod.counter_of(attr_id)
            if counter >= self._allocator.allocated_count(level):
                self._allocator._next[level] = counter + 1
        self._descendant_cache.clear()

    def path_labels(self, attr_id):
        """Labels from the top functional attribute down to ``attr_id``."""
        labels = []
        node = attr_id
        while node is not None and node != self.all_id:
            labels.append(self._label[node])
            node = self._parent[node]
        labels.reverse()
        return tuple(labels)

    def __repr__(self):
        return "ConceptHierarchy(%r, levels=%r, values=%d)" % (
            self.name,
            list(self.level_names),
            len(self),
        )
