"""Cube schemata: dimensions, hierarchy schemata, measures (Definition 2).

A data cube ``D ⊆ D_1 × ... × D_d × R^m`` consists of *d* dimensions, each
organized by a hierarchy schema, and *m* measures.  A :class:`CubeSchema`
bundles the dimensions (each owning one dynamic
:class:`~repro.cube.hierarchy.ConceptHierarchy`) with the measure
definitions and acts as the factory for :class:`~repro.cube.record.DataRecord`
instances.
"""

from __future__ import annotations

from ..errors import SchemaError
from .hierarchy import ConceptHierarchy
from .record import DataRecord


class Dimension:
    """One cube dimension: a hierarchy schema plus its concept hierarchy.

    Parameters
    ----------
    name:
        Dimension name, e.g. ``"Customer"``.
    level_names:
        Functional-attribute names from the leaf level upwards (see
        :class:`~repro.cube.hierarchy.ConceptHierarchy`).
    """

    def __init__(self, name, level_names):
        self.name = name
        self.hierarchy = ConceptHierarchy(name, level_names)

    @property
    def level_names(self):
        return self.hierarchy.level_names

    @property
    def top_level(self):
        return self.hierarchy.top_level

    @property
    def n_attributes(self):
        return self.hierarchy.n_attributes

    def __repr__(self):
        return "Dimension(%r, levels=%r)" % (self.name, list(self.level_names))


class Measure:
    """A dependent attribute of the cube (e.g. Extended Price)."""

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return "Measure(%r)" % self.name


class CubeSchema:
    """Schema of a data cube: ordered dimensions plus ordered measures.

    The schema is the single authority for converting user-facing label
    tuples into level-tagged ID paths, so every index built over the same
    schema instance sees identical IDs (a precondition for comparing the
    DC-tree against the X-tree and the sequential scan on equal footing).
    """

    def __init__(self, dimensions, measures):
        if not dimensions:
            raise SchemaError("a cube needs at least one dimension")
        if not measures:
            raise SchemaError("a cube needs at least one measure")
        names = [dim.name for dim in dimensions]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate dimension names: %r" % names)
        measure_names = [m.name for m in measures]
        if len(set(measure_names)) != len(measure_names):
            raise SchemaError("duplicate measure names: %r" % measure_names)
        self.dimensions = tuple(dimensions)
        self.measures = tuple(measures)
        self._dim_index = {dim.name: i for i, dim in enumerate(dimensions)}
        self._measure_index = {m.name: i for i, m in enumerate(measures)}

    @property
    def n_dimensions(self):
        return len(self.dimensions)

    @property
    def n_measures(self):
        return len(self.measures)

    @property
    def n_flat_attributes(self):
        """Total number of functional attributes across all dimensions.

        This is the dimensionality of the flattened space the X-tree indexes
        (13 for the paper's TPC-D cube, Fig. 10).
        """
        return sum(dim.n_attributes for dim in self.dimensions)

    def flat_offset(self, dim_index):
        """Index of ``dim_index``'s first attribute in the flattened space."""
        return sum(
            dim.n_attributes for dim in self.dimensions[:dim_index]
        )

    def flat_position(self, dim_index, level):
        """Flattened-space index of the attribute at ``level`` of a dimension.

        Flat points (and hence the X-tree's dimensions, Fig. 10) order each
        dimension's attributes from the highest functional attribute down
        to the leaf, matching :meth:`DataRecord.flat_point`.
        """
        n_attributes = self.dimensions[dim_index].n_attributes
        if not 0 <= level < n_attributes:
            raise SchemaError(
                "level %r out of range for dimension %r"
                % (level, self.dimensions[dim_index].name)
            )
        return self.flat_offset(dim_index) + (n_attributes - 1 - level)

    def dimension_index(self, name):
        """Position of the dimension called ``name``."""
        try:
            return self._dim_index[name]
        except KeyError:
            raise SchemaError("unknown dimension %r" % name) from None

    def measure_index(self, name):
        """Position of the measure called ``name``."""
        try:
            return self._measure_index[name]
        except KeyError:
            raise SchemaError("unknown measure %r" % name) from None

    def hierarchy(self, dim_index):
        """Concept hierarchy of the dimension at ``dim_index``."""
        return self.dimensions[dim_index].hierarchy

    def record(self, dimension_values, measures):
        """Build a :class:`DataRecord` from label tuples.

        ``dimension_values`` is one tuple of attribute-value labels per
        dimension, ordered from the highest functional attribute down to the
        leaf (e.g. ``("EUROPE", "GERMANY", "BUILDING", "Customer#42")``).
        New labels are inserted into the concept hierarchies on the fly.
        """
        if len(dimension_values) != self.n_dimensions:
            raise SchemaError(
                "expected %d dimension value tuples, got %d"
                % (self.n_dimensions, len(dimension_values))
            )
        measures = tuple(float(x) for x in measures)
        if len(measures) != self.n_measures:
            raise SchemaError(
                "expected %d measures, got %d" % (self.n_measures, len(measures))
            )
        paths = tuple(
            dim.hierarchy.insert_path(values)
            for dim, values in zip(self.dimensions, dimension_values)
        )
        return DataRecord(paths, measures)

    def record_from_ids(self, id_paths, measures):
        """Build a :class:`DataRecord` from already-assigned ID paths."""
        if len(id_paths) != self.n_dimensions:
            raise SchemaError(
                "expected %d ID paths, got %d" % (self.n_dimensions, len(id_paths))
            )
        for dim, path in zip(self.dimensions, id_paths):
            if len(path) != dim.n_attributes:
                raise SchemaError(
                    "dimension %r expects %d IDs per path, got %d"
                    % (dim.name, dim.n_attributes, len(path))
                )
        measures = tuple(float(x) for x in measures)
        if len(measures) != self.n_measures:
            raise SchemaError(
                "expected %d measures, got %d" % (self.n_measures, len(measures))
            )
        return DataRecord(tuple(tuple(p) for p in id_paths), measures)

    def describe(self, record):
        """Human-readable rendering of ``record`` under this schema."""
        parts = []
        for dim, path in zip(self.dimensions, record.paths):
            labels = "/".join(dim.hierarchy.label(v) for v in path)
            parts.append("%s=%s" % (dim.name, labels))
        for measure, value in zip(self.measures, record.measures):
            parts.append("%s=%g" % (measure.name, value))
        return ", ".join(parts)

    def __repr__(self):
        return "CubeSchema(dims=%r, measures=%r)" % (
            [d.name for d in self.dimensions],
            [m.name for m in self.measures],
        )
