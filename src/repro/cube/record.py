"""Data records of a data cube (Definition 2).

A record carries, for every dimension, the complete root-to-leaf ID path
through the concept hierarchy (one level-tagged ID per functional attribute)
plus the measure values.  Keeping the full path on the record makes both
index families cheap to feed:

* the DC-tree reads ``value_at_level`` to maintain MDSs at arbitrary
  relevant levels without hierarchy lookups on the hot path, and
* the X-tree uses the flattened path (13 attributes for the paper's TPC-D
  cube, Fig. 10) directly as a point in its totally ordered space.
"""

from __future__ import annotations

from . import ids as ids_mod


class DataRecord:
    """One immutable cube cell: ID paths per dimension plus measures.

    ``paths[i]`` is ordered from the *highest* functional attribute of
    dimension ``i`` down to the leaf, i.e. ``paths[i][0]`` has the highest
    level and ``paths[i][-1]`` has level 0.
    """

    __slots__ = ("paths", "measures")

    def __init__(self, paths, measures):
        self.paths = paths
        self.measures = measures

    def leaf_value(self, dim_index):
        """Level-0 ID of the record in dimension ``dim_index``."""
        return self.paths[dim_index][-1]

    def value_at_level(self, dim_index, level):
        """The record's ancestor ID at ``level`` in dimension ``dim_index``.

        Works without touching the hierarchy because the full path is
        stored: the path entry for level ``l`` sits ``l`` positions before
        the leaf.  ``level`` must be between 0 and the dimension's highest
        functional attribute; use the hierarchy's ``all_id`` for ALL.
        """
        path = self.paths[dim_index]
        return path[len(path) - 1 - level]

    def flat_point(self):
        """All attribute IDs of the record as one flat tuple.

        Concatenates the per-dimension paths in schema order; this is the
        point the X-tree indexes (Fig. 10 of the paper).
        """
        point = []
        for path in self.paths:
            point.extend(path)
        return tuple(point)

    def __eq__(self, other):
        if not isinstance(other, DataRecord):
            return NotImplemented
        return self.paths == other.paths and self.measures == other.measures

    def __hash__(self):
        return hash((self.paths, self.measures))

    def __repr__(self):
        dims = []
        for path in self.paths:
            dims.append(
                "/".join(
                    "L%d#%d" % ids_mod.split_id(attr_id) for attr_id in path
                )
            )
        return "DataRecord(%s | %s)" % (
            "; ".join(dims),
            ", ".join("%g" % m for m in self.measures),
        )
