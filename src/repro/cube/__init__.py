"""Data-cube substrate: IDs, concept hierarchies, schemata, records.

This package implements the data model of Section 3.1 of the paper:
level-tagged 32-bit attribute IDs, dynamic concept hierarchies with a
partial ordering, cube schemata with dimensions and measures, and the data
records the indexes ingest.
"""

from .aggregation import (
    SUPPORTED_AGGREGATES,
    AggregateVector,
    MeasureSummary,
    StreamingAggregator,
)
from .hierarchy import ConceptHierarchy
from .ids import counter_of, level_of, make_id, split_id
from .record import DataRecord
from .schema import CubeSchema, Dimension, Measure

__all__ = [
    "SUPPORTED_AGGREGATES",
    "AggregateVector",
    "ConceptHierarchy",
    "CubeSchema",
    "DataRecord",
    "Dimension",
    "Measure",
    "MeasureSummary",
    "StreamingAggregator",
    "counter_of",
    "level_of",
    "make_id",
    "split_id",
]
