"""Warehouse operation modes: batch updates, partitioning/retention."""

from .batch import BatchWarehouse, MaintenanceStats, WarehouseOfflineError
from .partitioned import PartitionedWarehouse

__all__ = [
    "BatchWarehouse",
    "MaintenanceStats",
    "PartitionedWarehouse",
    "WarehouseOfflineError",
]
