"""Partitioned warehouses: one DC-tree per partition-key value.

Production warehouses partition their fact data — almost always by time
— so that (a) queries touching one period only open that period's index,
and (b) retention is an O(1) partition drop instead of millions of
deletes.  :class:`PartitionedWarehouse` provides exactly that on top of
the DC-tree: records route to the partition keyed by their value at one
chosen ``(dimension, level)`` (e.g. ``Time.Year``); range queries fan
out only to partitions whose key overlaps the query's range in that
dimension; every partition is an ordinary, fully dynamic
:class:`~repro.core.tree.DCTree` over the *shared* schema.
"""

from __future__ import annotations

from ..core.tree import DCTree
from ..cube.aggregation import StreamingAggregator
from ..errors import QueryError, SchemaError
from ..workload.queries import RangeQuery, query_from_labels


class PartitionedWarehouse:
    """A warehouse split into per-key DC-tree partitions.

    Parameters
    ----------
    schema:
        The shared cube schema.
    partition_dim:
        Name of the partitioning dimension (e.g. ``"Time"``).
    partition_level:
        Name of the level whose values key the partitions (e.g.
        ``"Year"``) — must be a functional attribute of that dimension.
    config:
        Optional :class:`~repro.config.DCTreeConfig` applied to every
        partition.
    """

    def __init__(self, schema, partition_dim, partition_level, config=None):
        self.schema = schema
        self.config = config
        self._dim_index = schema.dimension_index(partition_dim)
        dimension = schema.dimensions[self._dim_index]
        try:
            self._level = dimension.level_names.index(partition_level)
        except ValueError:
            raise SchemaError(
                "dimension %r has no level %r (levels: %s)"
                % (partition_dim, partition_level,
                   ", ".join(dimension.level_names))
            ) from None
        self._hierarchy = dimension.hierarchy
        self._partitions = {}

    # ------------------------------------------------------------------
    # partition management
    # ------------------------------------------------------------------

    def _key_of(self, record):
        return record.value_at_level(self._dim_index, self._level)

    def _partition_for(self, key, create=False):
        partition = self._partitions.get(key)
        if partition is None and create:
            partition = DCTree(self.schema, config=self.config)
            self._partitions[key] = partition
        return partition

    @property
    def partition_keys(self):
        """Current partition-key IDs (see :meth:`partition_labels`)."""
        return tuple(sorted(self._partitions))

    def partition_labels(self):
        """``{label: record count}`` per live partition."""
        return {
            self._hierarchy.label(key): len(tree)
            for key, tree in self._partitions.items()
        }

    def drop_partition(self, label):
        """Drop every partition labelled ``label``; returns records freed.

        This is the retention operation: constant-time unlink instead of
        record-by-record deletion.
        """
        keys = [
            key for key in self._partitions
            if self._hierarchy.label(key) == label
        ]
        if not keys:
            raise QueryError("no partition labelled %r" % (label,))
        freed = 0
        for key in keys:
            freed += len(self._partitions.pop(key))
        return freed

    def __len__(self):
        return sum(len(tree) for tree in self._partitions.values())

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def insert(self, dimension_values, measures):
        record = self.schema.record(dimension_values, measures)
        return self.insert_record(record)

    def insert_record(self, record):
        self._partition_for(self._key_of(record), create=True).insert(record)
        return record

    def insert_many(self, rows):
        """Insert many ``(dimension_values, measures)`` pairs batched.

        Records are grouped by partition key (preserving arrival order
        within each partition) and each group goes through its
        partition's :meth:`~repro.core.tree.DCTree.insert_batch`, so the
        amortized write charging applies per partition.  Returns the
        stored records in arrival order.
        """
        records = [
            self.schema.record(dimension_values, measures)
            for dimension_values, measures in rows
        ]
        self.insert_records(records)
        return records

    def insert_records(self, records):
        """Insert already-built records, batched per partition."""
        records = list(records)
        groups = {}
        for record in records:
            groups.setdefault(self._key_of(record), []).append(record)
        for key, group in groups.items():
            self._partition_for(key, create=True).insert_batch(group)
        return records

    def delete(self, record):
        partition = self._partition_for(self._key_of(record))
        if partition is None:
            from ..errors import RecordNotFoundError

            raise RecordNotFoundError(
                "record's partition does not exist: %r" % (record,)
            )
        partition.delete(record)
        if len(partition) == 0:
            del self._partitions[self._key_of(record)]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def query(self, op="sum", measure=0, where=None):
        """Label-based aggregate over all relevant partitions."""
        range_query = query_from_labels(self.schema, where or {})
        return self.execute(range_query, op=op, measure=measure)

    def execute(self, range_query, op="sum", measure=0):
        """Fan a prepared :class:`RangeQuery` out over the partitions.

        Only partitions whose key can hold records inside the query's
        range in the partitioning dimension are opened.
        """
        if not isinstance(range_query, RangeQuery):
            raise SchemaError(
                "expected a RangeQuery, got %r" % type(range_query).__name__
            )
        aggregator = StreamingAggregator(
            op,
            self.schema.measure_index(measure)
            if isinstance(measure, str) else measure,
        )
        for key, tree in self._partitions.items():
            if not self._key_overlaps(key, range_query.mds):
                continue
            aggregator.add_summary(
                tree.range_summary(range_query.mds, measure=measure)
            )
        return aggregator.result()

    def partitions_touched(self, range_query):
        """How many partitions the fan-out would open (pruning metric)."""
        return sum(
            1 for key in self._partitions
            if self._key_overlaps(key, range_query.mds)
        )

    def _key_overlaps(self, key, range_mds):
        """Can records under partition ``key`` fall inside the range?"""
        query_level = range_mds.level(self._dim_index)
        query_set = range_mds.value_set(self._dim_index)
        if query_level >= self._hierarchy.top_level:
            return True
        if query_level >= self._level:
            return (
                self._hierarchy.ancestor(key, query_level) in query_set
            )
        return any(
            self._hierarchy.ancestor(value, self._level) == key
            for value in query_set
        )

    def __repr__(self):
        return "PartitionedWarehouse(partitions=%d, records=%d)" % (
            len(self._partitions), len(self),
        )
