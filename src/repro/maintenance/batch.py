"""The conventional bulk-update warehouse the paper argues against.

Section 1: "Updates are collected and applied to the data warehouse
periodically in a batch mode, e.g., each night. [...] This approach of
bulk incremental updates, however, has two drawbacks: (1) while the
average runtime for one update is small, the total runtime for the whole
batch of updates is rather large — bulk incremental updates require a
considerable time window where the data warehouse is not available for
OLAP; (2) the contents of the data warehouse is not always up to date."

:class:`BatchWarehouse` wraps any backend with exactly that regime so the
two drawbacks become measurable: updates queue until the next maintenance
window; queries meanwhile read stale contents (staleness is recorded per
query); during a window the warehouse is offline and the downtime is
recorded.  The `motivation` bench compares it against a plain dynamic
:class:`~repro.warehouse.Warehouse` on the same update/query stream.
"""

from __future__ import annotations

import time

from ..errors import ReproError
from ..warehouse import Warehouse


class WarehouseOfflineError(ReproError):
    """A query arrived while a maintenance window was in progress."""


class MaintenanceStats:
    """What the batch regime cost, measured over one run."""

    def __init__(self):
        #: Per-query number of updates the answer did not yet reflect.
        self.staleness_samples = []
        #: Per-window (n_updates, wall_seconds, simulated_seconds).
        self.windows = []
        #: Queries rejected because they arrived during a window.
        self.queries_rejected = 0

    @property
    def n_windows(self):
        return len(self.windows)

    @property
    def total_downtime_seconds(self):
        return sum(wall for _n, wall, _sim in self.windows)

    @property
    def total_simulated_downtime(self):
        return sum(sim for _n, _wall, sim in self.windows)

    @property
    def updates_applied(self):
        return sum(n for n, _wall, _sim in self.windows)

    @property
    def mean_staleness(self):
        if not self.staleness_samples:
            return 0.0
        return sum(self.staleness_samples) / len(self.staleness_samples)

    @property
    def max_staleness(self):
        return max(self.staleness_samples, default=0)

    def __repr__(self):
        return (
            "MaintenanceStats(windows=%d, downtime=%.3fs, "
            "mean_staleness=%.1f, max_staleness=%d)"
            % (self.n_windows, self.total_downtime_seconds,
               self.mean_staleness, self.max_staleness)
        )


class BatchWarehouse:
    """A warehouse operated in the classic collect-then-bulk-load mode.

    Parameters
    ----------
    schema, backend, config, storage_config:
        Forwarded to the underlying :class:`Warehouse`.
    window_every:
        Automatically run a maintenance window once this many updates
        are pending (``None`` = only when :meth:`run_maintenance_window`
        is called explicitly — the "nightly" policy driven by the
        caller).
    """

    def __init__(self, schema, backend="dc-tree", config=None,
                 storage_config=None, window_every=None):
        self._warehouse = Warehouse(schema, backend, config, storage_config)
        self.window_every = window_every
        self._pending = []
        self._in_window = False
        self.stats = MaintenanceStats()

    # -- update side -----------------------------------------------------

    def submit_insert(self, dimension_values, measures):
        """Queue one insert; it is NOT visible until the next window."""
        record = self._warehouse.schema.record(dimension_values, measures)
        self.submit_insert_record(record)
        return record

    def submit_insert_record(self, record):
        self._pending.append(("insert", record))
        self._maybe_auto_window()

    def submit_delete(self, record):
        """Queue one delete; it is NOT applied until the next window."""
        self._pending.append(("delete", record))
        self._maybe_auto_window()

    def _maybe_auto_window(self):
        if self.window_every and len(self._pending) >= self.window_every:
            self.run_maintenance_window()

    @property
    def pending_updates(self):
        """Updates submitted but not yet visible (drawback 2)."""
        return len(self._pending)

    # -- maintenance window ------------------------------------------------

    def run_maintenance_window(self):
        """Apply every pending update; the warehouse is offline meanwhile.

        Returns ``(n_updates, wall_seconds)``.  The simulated downtime
        (page I/O of the whole batch) is recorded in :attr:`stats`.
        """
        self._in_window = True
        tracker = self._warehouse.tracker
        before = tracker.snapshot()
        start = time.perf_counter()
        batch, self._pending = self._pending, []
        # Consecutive inserts apply as one amortized batch (the window IS
        # a batch regime, so it benefits directly from insert_batch's
        # once-per-touched-node write charging); deletes flush the run.
        run = []
        for kind, record in batch:
            if kind == "insert":
                run.append(record)
                continue
            if run:
                self._warehouse.insert_records(run)
                run = []
            self._warehouse.delete(record)
        if run:
            self._warehouse.insert_records(run)
        wall = time.perf_counter() - start
        delta = tracker.snapshot() - before
        self._in_window = False
        self.stats.windows.append(
            (len(batch), wall, delta.simulated_seconds())
        )
        return len(batch), wall

    # -- query side ---------------------------------------------------------

    def query(self, op="sum", measure=0, where=None):
        """Answer from the *loaded* contents (possibly stale).

        Raises :class:`WarehouseOfflineError` during a window (drawback
        1); otherwise records how many submitted updates the answer does
        not reflect (drawback 2) and delegates to the backend.
        """
        if self._in_window:
            self.stats.queries_rejected += 1
            raise WarehouseOfflineError(
                "maintenance window in progress; OLAP unavailable"
            )
        self.stats.staleness_samples.append(len(self._pending))
        return self._warehouse.query(op=op, measure=measure, where=where)

    def execute(self, range_query, op="sum", measure=0):
        """Prepared-query variant of :meth:`query` (same staleness rules)."""
        if self._in_window:
            self.stats.queries_rejected += 1
            raise WarehouseOfflineError(
                "maintenance window in progress; OLAP unavailable"
            )
        self.stats.staleness_samples.append(len(self._pending))
        return self._warehouse.execute(range_query, op=op, measure=measure)

    def __len__(self):
        """Loaded (visible) records — pending updates excluded."""
        return len(self._warehouse)

    @property
    def warehouse(self):
        """The underlying (stale) warehouse."""
        return self._warehouse

    def __repr__(self):
        return "BatchWarehouse(loaded=%d, pending=%d, %r)" % (
            len(self), self.pending_updates, self.stats,
        )
