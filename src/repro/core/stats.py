"""Structural statistics of a DC-tree (Fig. 13 of the paper).

The paper studies the average node size (number of entries) of the two
highest tree levels below the root: splits near the root run out of
attribute values to separate, so supernodes accumulate there and the
average entry count of the second-highest level grows with the data set
(≈2.5× the regular directory capacity at 30k records), while the highest
level stabilizes around ~15 entries.
"""

from __future__ import annotations

from collections import defaultdict


class LevelStats:
    """Aggregated statistics for one depth of the tree (root = depth 0)."""

    __slots__ = ("depth", "n_nodes", "n_supernodes", "n_entries", "n_blocks")

    def __init__(self, depth):
        self.depth = depth
        self.n_nodes = 0
        self.n_supernodes = 0
        self.n_entries = 0
        self.n_blocks = 0

    @property
    def avg_entries(self):
        """Average number of entries per node at this depth."""
        return self.n_entries / self.n_nodes if self.n_nodes else 0.0

    @property
    def avg_blocks(self):
        """Average number of blocks per node (supernode growth factor)."""
        return self.n_blocks / self.n_nodes if self.n_nodes else 0.0

    def __repr__(self):
        return (
            "LevelStats(depth=%d, nodes=%d, supernodes=%d, avg_entries=%.2f)"
            % (self.depth, self.n_nodes, self.n_supernodes, self.avg_entries)
        )


class TreeStats:
    """Complete structural profile of a DC-tree (or X-tree)."""

    def __init__(self, levels, n_records, height):
        self.levels = levels
        self.n_records = n_records
        self.height = height

    @property
    def n_nodes(self):
        return sum(stats.n_nodes for stats in self.levels)

    @property
    def n_supernodes(self):
        return sum(stats.n_supernodes for stats in self.levels)

    def level(self, depth):
        """Statistics of one depth (root = 0)."""
        return self.levels[depth]

    def highest_below_root(self):
        """Fig. 13's 'highest level of tree' (depth 1), None if too shallow."""
        return self.levels[1] if len(self.levels) > 1 else None

    def second_highest_below_root(self):
        """Fig. 13's '2nd highest level of tree' (depth 2)."""
        return self.levels[2] if len(self.levels) > 2 else None

    def __repr__(self):
        return "TreeStats(height=%d, nodes=%d, records=%d)" % (
            self.height,
            self.n_nodes,
            self.n_records,
        )


def collect_stats(tree):
    """Profile any tree exposing ``root`` with ``is_leaf``/``children``.

    Works for both the DC-tree and the X-tree (their node protocols are
    intentionally aligned).  No I/O is charged — statistics gathering is
    an offline analysis, not part of the measured workloads.
    """
    per_depth = defaultdict(lambda: None)
    n_records = 0
    max_depth = 0
    stack = [(tree.root, 0)]
    while stack:
        node, depth = stack.pop()
        max_depth = max(max_depth, depth)
        stats = per_depth[depth]
        if stats is None:
            stats = LevelStats(depth)
            per_depth[depth] = stats
        stats.n_nodes += 1
        stats.n_entries += node.entry_count
        stats.n_blocks += node.n_blocks
        if node.is_supernode:
            stats.n_supernodes += 1
        if node.is_leaf:
            n_records += node.entry_count
        else:
            for child in node.children:
                stack.append((child, depth + 1))
    levels = [per_depth[d] for d in range(max_depth + 1)]
    return TreeStats(levels, n_records, max_depth + 1)


def collect_cache_stats(tree):
    """Result-cache counters of a DC-tree, or ``None``.

    Returns the :class:`~repro.core.result_cache.ResultCacheStats`
    snapshot of ``tree``'s query-result cache — hits, misses, evictions,
    invalidations, occupancy — or ``None`` when the tree has no cache
    attached (``use_result_cache=False``) or is a backend without one
    (X-tree, scan).  Like :func:`collect_stats`, reading the counters is
    offline analysis and charges nothing.
    """
    cache = getattr(tree, "result_cache", None)
    return cache.stats() if cache is not None else None
