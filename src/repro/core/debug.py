"""Human-readable tree dumps and structure digests (debug/test aids).

``dump_tree`` renders a DC-tree or X-tree as an indented outline with one
line per node: kind, entry count, supernode blocks, and a compact
description of the node's MDS (with labels resolved through the concept
hierarchies) or MBR.  Handy in tests, notebooks and bug reports.

``structure_digest`` condenses an index's *complete* structure — node
shapes, MDS/MBR extents, aggregates and in-order leaf records — into one
SHA-256 hex string, so "these two indexes are bit-identical" is a single
string comparison.  The batch-insert differential suite and the
regression bench use it to prove batched and serial insertion build the
same tree.
"""

from __future__ import annotations

import hashlib

# Moved to the telemetry package; re-exported for backward compatibility.
from ..obs.metrics import describe_result_cache  # noqa: F401


def structure_digest(index):
    """SHA-256 hex digest of an index's full structure and contents.

    Covers, per node in depth-first child order: depth, kind
    (leaf/dir), entry count, supernode block count, the MDS digest (or
    MBR extents for an X-tree node) and the aggregate vector — and, for
    leaves, every record (flat ID point + measures) in storage order.
    Page IDs are deliberately excluded so two trees built through
    different allocation histories can still compare equal.  A
    :class:`~repro.scan.table.FlatTable` digests as its record sequence.

    Two indexes over the *same schema instance* compare equal iff they
    are structurally identical (IDs are interned per hierarchy, so
    digests are only meaningful within one schema's ID space).
    """
    h = hashlib.sha256()
    root = getattr(index, "root", None)
    if root is None:
        for record in index.records():
            h.update(_record_bytes(record))
        return h.hexdigest()
    stack = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        kind = b"leaf" if node.is_leaf else b"dir"
        h.update(
            b"N|%d|%s|%d|%d|" % (depth, kind, node.entry_count, node.n_blocks)
        )
        if hasattr(node, "mds"):
            h.update(node.mds.digest().encode())
            h.update(repr(node.aggregate).encode())
        else:
            h.update(repr((node.mbr.lows, node.mbr.highs)).encode())
        if node.is_leaf:
            # DC leaves store records; X-tree leaves (point, record) pairs.
            entries = getattr(node, "records", None)
            if entries is None:
                entries = [record for _point, record in node.entries]
            for record in entries:
                h.update(_record_bytes(record))
        else:
            # Reversed so the depth-first pop visits children in order.
            for child in reversed(node.children):
                stack.append((child, depth + 1))
    return h.hexdigest()


def _record_bytes(record):
    point = getattr(record, "flat_point", None)
    if point is not None:
        return b"R|" + repr((point(), tuple(record.measures))).encode()
    return b"R|" + repr(record).encode()


def dump_tree(tree, max_depth=None, max_values=4, stream=None):
    """Render ``tree`` as text; returns the string (and writes ``stream``).

    Parameters
    ----------
    tree:
        A :class:`~repro.core.tree.DCTree` or
        :class:`~repro.xtree.tree.XTree`.
    max_depth:
        Deepest level to render (``None`` = everything; 0 = root only).
    max_values:
        Per-dimension cap on rendered MDS values before eliding.
    """
    lines = []
    hierarchies = getattr(tree, "hierarchies", None)
    _dump_node(tree.root, 0, max_depth, max_values, hierarchies, lines)
    text = "\n".join(lines)
    if stream is not None:
        stream.write(text + "\n")
    return text


def _dump_node(node, depth, max_depth, max_values, hierarchies, lines):
    indent = "  " * depth
    kind = "leaf" if node.is_leaf else "dir"
    super_tag = " SUPER[%d blocks]" % node.n_blocks if node.is_supernode else ""
    if hasattr(node, "mds"):
        description = _describe_mds(node.mds, hierarchies, max_values)
        extra = " sum=%.6g" % node.aggregate.aggregate("sum")
    else:
        description = _describe_mbr(node.mbr)
        extra = ""
    lines.append(
        "%s%s(%d)%s %s%s"
        % (indent, kind, node.entry_count, super_tag, description, extra)
    )
    if node.is_leaf:
        return
    if max_depth is not None and depth >= max_depth:
        lines.append("%s  ... (%d children)" % (indent, len(node.children)))
        return
    for child in node.children:
        _dump_node(child, depth + 1, max_depth, max_values, hierarchies,
                   lines)


def _describe_mds(mds, hierarchies, max_values):
    parts = []
    for dim in range(mds.n_dimensions):
        level = mds.level(dim)
        hierarchy = hierarchies[dim] if hierarchies else None
        values = sorted(mds.value_set(dim))
        if hierarchy is not None:
            if level >= hierarchy.top_level:
                parts.append("*")
                continue
            labels = sorted(hierarchy.label(v) for v in values)
        else:
            labels = [str(v) for v in values]
        shown = labels[:max_values]
        if len(labels) > max_values:
            shown.append("...%d" % len(labels))
        level_name = (
            hierarchy.level_name(level) if hierarchy else "L%d" % level
        )
        parts.append("%s{%s}" % (level_name, ",".join(shown)))
    return "[" + " | ".join(parts) + "]"


def _describe_mbr(mbr):
    sides = []
    for low, high in zip(mbr.lows, mbr.highs):
        if low == high:
            sides.append(str(low))
        else:
            sides.append("%d..%d" % (low, high))
    return "[" + " | ".join(sides) + "]"
