"""The DC-tree: MDS algebra, nodes, hierarchy split, tree, statistics."""

from .mds import (
    MDS,
    contains,
    covers_record,
    extension,
    operation_cost,
    overlap,
    overlaps,
    union_cardinality,
)
from .node import DCDataNode, DCDirNode
from .result_cache import ResultCache, ResultCacheStats
from .split import (
    SplitPlan,
    choose_seeds,
    compute_group_mds,
    hierarchy_split,
    linear_split,
    plan_node_split,
)
from .stats import LevelStats, TreeStats, collect_cache_stats, collect_stats
from .tree import DCTree

__all__ = [
    "DCDataNode",
    "DCDirNode",
    "DCTree",
    "LevelStats",
    "MDS",
    "ResultCache",
    "ResultCacheStats",
    "SplitPlan",
    "TreeStats",
    "choose_seeds",
    "collect_cache_stats",
    "collect_stats",
    "compute_group_mds",
    "contains",
    "covers_record",
    "extension",
    "hierarchy_split",
    "linear_split",
    "operation_cost",
    "overlap",
    "overlaps",
    "plan_node_split",
    "union_cardinality",
]
