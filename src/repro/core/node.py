"""DC-tree nodes: data nodes, directory nodes, supernodes.

Both node kinds carry their own MDS and materialized aggregate vector.
Conceptually these belong to the *entry* referencing the node from its
parent (that is where they are stored on disk), but keeping them on the
node object avoids duplication; the I/O accounting still charges entry
inspection to the parent page because algorithms only call
``tracker.access_node`` when they actually descend into a child.

A node whose entry count exceeds its capacity and that cannot be split in
a balanced, low-overlap way becomes a **supernode**: ``n_blocks`` grows
beyond 1 and the node keeps absorbing entries until ``capacity × n_blocks``
is exceeded, at which point a split is attempted again (§4.2).
"""

from __future__ import annotations

from ..storage import page as page_mod


class _Node:
    """State shared by data and directory nodes."""

    __slots__ = ("mds", "aggregate", "page_id", "n_blocks")

    def __init__(self, mds, aggregate, page_id):
        self.mds = mds
        self.aggregate = aggregate
        self.page_id = page_id
        self.n_blocks = 1

    @property
    def is_supernode(self):
        return self.n_blocks > 1


class DCDataNode(_Node):
    """A leaf of the DC-tree, holding data records."""

    __slots__ = ("records",)

    is_leaf = True

    def __init__(self, mds, aggregate, page_id, records=None):
        super().__init__(mds, aggregate, page_id)
        self.records = records if records is not None else []

    @property
    def entry_count(self):
        return len(self.records)

    def byte_size(self, n_flat_attributes, n_measures):
        """Approximate on-disk size of this node."""
        return (
            page_mod.NODE_HEADER_BYTES
            + len(self.records)
            * page_mod.dc_record_bytes(n_flat_attributes, n_measures)
        )

    def __repr__(self):
        return "DCDataNode(records=%d, blocks=%d, mds=%r)" % (
            len(self.records),
            self.n_blocks,
            self.mds,
        )


class DCDirNode(_Node):
    """An inner node of the DC-tree, holding child nodes."""

    __slots__ = ("children",)

    is_leaf = False

    def __init__(self, mds, aggregate, page_id, children=None):
        super().__init__(mds, aggregate, page_id)
        self.children = children if children is not None else []

    @property
    def entry_count(self):
        return len(self.children)

    def byte_size(self, n_flat_attributes, n_measures):
        """Approximate on-disk size: one (MDS, aggregates, pointer) entry
        per child (the children's MDSs are stored *here*, in the directory)."""
        total = page_mod.NODE_HEADER_BYTES
        for child in self.children:
            total += page_mod.dc_directory_entry_bytes(child.mds, n_measures)
        return total

    def __repr__(self):
        return "DCDirNode(children=%d, blocks=%d, mds=%r)" % (
            len(self.children),
            self.n_blocks,
            self.mds,
        )
