"""The hierarchy split (Figures 5 and 6 of the paper).

Splitting a DC-tree node proceeds in two stages:

1. :func:`plan_node_split` (Fig. 5) iterates over the dimensions in order
   of decreasing relevant level.  For each candidate dimension it adapts
   the entry MDSs to the node's MDS — trying the node's own level first
   and then one concept-hierarchy level deeper ("the relevant level ...
   may be decreased by one"; mandatory when the node's value set in that
   dimension is a singleton) — runs the hierarchy split, and accepts the
   first partitioning that is balanced and has acceptably low overlap in
   the split dimension.  If no dimension yields one, the node becomes
   (or grows as) a supernode — the caller's job.

2. :func:`hierarchy_split` (Fig. 6) is a quadratic-split variant that
   exploits the partial ordering: seeds are the pair with the largest
   covering MDS; each round picks the remaining MDS whose two candidate
   groups differ most in *split-dimension enlargement* and inserts it
   into the group sharing the most split-dimension values with it
   (§4.3), tie-broken by least resulting inter-group overlap, extension
   sum, volume sum, then the smaller group.

A cheaper single-pass :func:`linear_split` implements the paper's
future-work suggestion of a sub-quadratic split and is exposed through
``DCTreeConfig.split_algorithm = "linear"`` for the `abl-split` ablation.
"""

from __future__ import annotations

from . import mds as mds_mod
from .mds import MDS


class SplitPlan:
    """Outcome of a successful split attempt.

    ``groups`` holds two lists of entry indices; ``levels`` the relevant
    levels the resulting nodes must use (the node's levels, with the split
    dimension possibly decreased by one); ``split_dimension`` the dimension
    the split was performed along; ``cpu_units`` the work spent planning.
    """

    __slots__ = ("groups", "levels", "split_dimension", "cpu_units")

    def __init__(self, groups, levels, split_dimension, cpu_units):
        self.groups = groups
        self.levels = levels
        self.split_dimension = split_dimension
        self.cpu_units = cpu_units


def plan_node_split(node_mds, n_entries, adapt_entries, config, hierarchies):
    """Try to split a node's entries; return a :class:`SplitPlan` or None.

    ``adapt_entries(levels)`` must return the node's entry MDSs adapted to
    exactly ``levels`` — the tree supplies it because down-adaptation (an
    entry whose relevant level sits *above* the split target) requires
    reading the entry's subtree, which only the tree can do and charge for.

    ``None`` means no dimension admitted a balanced, low-overlap split and
    the node must become a supernode (Fig. 5, last line).
    """
    min_group = max(2, int(config.min_fanout_fraction * n_entries))
    cpu_units = 0
    for dim in _dimension_order(node_mds):
        for target_levels in _adaptation_attempts(node_mds, dim):
            adapted = adapt_entries(target_levels)
            cpu_units += sum(m.size() for m in adapted)
            if config.split_algorithm == "linear":
                groups, work = linear_split(
                    adapted, dim, hierarchies, min_group
                )
            else:
                groups, work = hierarchy_split(
                    adapted, dim, hierarchies, min_group
                )
            cpu_units += work
            if min(len(groups[0]), len(groups[1])) < min_group:
                continue
            if not _overlap_acceptable(groups, adapted, dim, config,
                                       hierarchies):
                continue
            return SplitPlan(groups, target_levels, dim, cpu_units)
    return None


def _dimension_order(node_mds):
    """Dimensions ordered by decreasing relevant level (Fig. 5).

    Ties are broken towards the dimension with the larger value set, which
    offers more distinct values to separate, then by index for
    determinism.
    """
    dims = range(node_mds.n_dimensions)
    return sorted(
        dims,
        key=lambda d: (-node_mds.level(d), -node_mds.cardinality(d), d),
    )


def _adaptation_attempts(node_mds, split_dim):
    """Level configurations to try for a split along ``split_dim``.

    All dimensions use the node's relevant level (the node MDS "is the
    best choice for the adaption", §4.2).  In the split dimension "the
    relevant level ... may be decreased by one": a singleton value set
    cannot be partitioned at its own level but its children in the
    concept hierarchy can (the Europe → {Germany, France, ...} example of
    §3.2), and even a multi-value set whose values co-occur in every
    entry may only separate one level further down — so both levels are
    attempted, the coarser one first.
    """
    attempts = []
    levels = list(node_mds.levels)
    if node_mds.cardinality(split_dim) > 1:
        attempts.append(list(levels))
    if levels[split_dim] > 0:
        refined = list(levels)
        refined[split_dim] -= 1
        attempts.append(refined)
    return attempts


def _overlap_acceptable(groups, adapted, split_dim, config, hierarchies):
    """Fig. 5's "overlap is not too high" test on the two groups.

    The hierarchy split works "to obtain two groups with disjunct
    attribute values in the split dimension" (§4.3); the acceptance test
    accordingly judges the split dimension's separation — the shared
    fraction of the smaller group's value set there.  (The full
    product-form overlap of Definition 4 is useless as a criterion in a
    warehouse: sibling subtrees legitimately share most values of the
    non-split dimensions, which drives the product ratio to ~1 for every
    conceivable split.)
    """
    mds_a = compute_group_mds((adapted[i] for i in groups[0]),
                              adapted[groups[0][0]].levels, hierarchies)
    mds_b = compute_group_mds((adapted[i] for i in groups[1]),
                              adapted[groups[1][0]].levels, hierarchies)
    set_a = mds_a.value_set(split_dim)
    set_b = mds_b.value_set(split_dim)
    shared = len(set_a & set_b)
    if shared == 0:
        return True
    smaller = min(len(set_a), len(set_b))
    return shared <= config.max_overlap_fraction * smaller


def compute_group_mds(mdss, levels, hierarchies):
    """Cover of ``mdss`` at exactly ``levels`` (levels must dominate)."""
    group = MDS.empty(levels)
    for m in mdss:
        group.add_mds(m, hierarchies)
    return group


# ----------------------------------------------------------------------
# quadratic hierarchy split (Fig. 6)
# ----------------------------------------------------------------------


def choose_seeds(mdss, hierarchies):
    """Pick the two seed entries: the pair with the largest covering MDS.

    Returns ``(i, j, cpu_units)``.  The size of a pair's cover is the sum
    over dimensions of the union cardinalities, computed without
    materializing the cover.
    """
    best = None
    best_size = -1
    cpu_units = 0
    n = len(mdss)
    for i in range(n):
        for j in range(i + 1, n):
            size = 0
            for dim in range(mdss[i].n_dimensions):
                size += mds_mod.union_cardinality(
                    mdss[i], mdss[j], dim, hierarchies
                )
            cpu_units += mds_mod.operation_cost(mdss[i], mdss[j])
            if size > best_size:
                best_size = size
                best = (i, j)
    return best[0], best[1], cpu_units


def hierarchy_split(mdss, split_dim, hierarchies, min_group=2):
    """Fig. 6: quadratic split of ``mdss`` along ``split_dim``.

    ``mdss`` must already be adapted to common levels.  Returns
    ``((group_a, group_b), cpu_units)`` where the groups are lists of
    indices into ``mdss``.  Like Guttman's quadratic split (which Fig. 6
    is explicitly based on), remaining entries are assigned wholesale to
    a group that needs all of them to reach ``min_group``.
    """
    seed_a, seed_b, cpu_units = choose_seeds(mdss, hierarchies)
    group_a, group_b = [seed_a], [seed_b]
    mds_a = mdss[seed_a].copy()
    mds_b = mdss[seed_b].copy()
    remaining = [i for i in range(len(mdss)) if i not in (seed_a, seed_b)]

    while remaining:
        if len(group_a) + len(remaining) <= min_group:
            group_a.extend(remaining)
            break
        if len(group_b) + len(remaining) <= min_group:
            group_b.extend(remaining)
            break
        chosen_pos = None
        chosen_diff = -1
        for pos, idx in enumerate(remaining):
            candidate = mdss[idx]
            enlargement_a = _enlargement(mds_a, candidate, split_dim)
            enlargement_b = _enlargement(mds_b, candidate, split_dim)
            cpu_units += 2 * candidate.cardinality(split_dim)
            diff = abs(enlargement_a - enlargement_b)
            if diff > chosen_diff:
                chosen_diff = diff
                chosen_pos = pos
        idx = remaining.pop(chosen_pos)
        target_a = _prefer_group_a(
            mds_a, mds_b, mdss[idx], group_a, group_b, split_dim, hierarchies
        )
        cpu_units += mds_mod.operation_cost(mds_a, mds_b)
        if target_a:
            group_a.append(idx)
            mds_a.add_mds(mdss[idx], hierarchies)
        else:
            group_b.append(idx)
            mds_b.add_mds(mdss[idx], hierarchies)
    return (group_a, group_b), cpu_units


def linear_split(mdss, split_dim, hierarchies, min_group=2):
    """Single-pass split (future-work ablation): linear seed choice, then
    the remaining entries are assigned in input order with Fig. 6's group
    criterion.  Returns the same shape as :func:`hierarchy_split`."""
    seed_a = 0
    seed_b = None
    worst_similarity = None
    cpu_units = 0
    base = mdss[seed_a].value_set(split_dim)
    for idx in range(1, len(mdss)):
        other = mdss[idx].value_set(split_dim)
        union = len(base | other)
        similarity = len(base & other) / union if union else 1.0
        cpu_units += len(base) + len(other)
        if worst_similarity is None or similarity < worst_similarity:
            worst_similarity = similarity
            seed_b = idx
    if seed_b is None:
        seed_b = len(mdss) - 1
    group_a, group_b = [seed_a], [seed_b]
    mds_a = mdss[seed_a].copy()
    mds_b = mdss[seed_b].copy()
    remaining = [i for i in range(len(mdss)) if i not in (seed_a, seed_b)]
    for position, idx in enumerate(remaining):
        left = len(remaining) - position
        if len(group_a) + left <= min_group:
            group_a.extend(remaining[position:])
            break
        if len(group_b) + left <= min_group:
            group_b.extend(remaining[position:])
            break
        target_a = _prefer_group_a(
            mds_a, mds_b, mdss[idx], group_a, group_b, split_dim, hierarchies
        )
        cpu_units += mds_mod.operation_cost(mds_a, mds_b)
        if target_a:
            group_a.append(idx)
            mds_a.add_mds(mdss[idx], hierarchies)
        else:
            group_b.append(idx)
            mds_b.add_mds(mdss[idx], hierarchies)
    return (group_a, group_b), cpu_units


def _enlargement(group_mds, candidate, split_dim):
    """Growth of the group's split-dimension value set if it absorbed
    ``candidate`` (both already at common levels)."""
    group_set = group_mds.value_set(split_dim)
    return len(candidate.value_set(split_dim) - group_set)


def _prefer_group_a(mds_a, mds_b, candidate, group_a, group_b, split_dim,
                    hierarchies):
    """Fig. 6's insertion criterion.

    §4.3: the algorithm "selects a group such that the new MDS and the MDS
    of the group share as many attribute values as possible in the split
    dimension" — that is the primary criterion and what drives the groups
    towards disjoint split-dimension value sets.  Remaining ties fall to
    the least resulting inter-group overlap, then extension sum, volume
    sum, and finally the smaller group (balance).
    """
    shared_a = len(
        candidate.value_set(split_dim) & mds_a.value_set(split_dim)
    )
    shared_b = len(
        candidate.value_set(split_dim) & mds_b.value_set(split_dim)
    )
    if shared_a != shared_b:
        return shared_a > shared_b

    enlarged_a = mds_a.copy()
    enlarged_a.add_mds(candidate, hierarchies)
    enlarged_b = mds_b.copy()
    enlarged_b.add_mds(candidate, hierarchies)

    overlap_if_a = mds_mod.overlap(enlarged_a, mds_b, hierarchies)
    overlap_if_b = mds_mod.overlap(mds_a, enlarged_b, hierarchies)
    if overlap_if_a != overlap_if_b:
        return overlap_if_a < overlap_if_b

    extension_if_a = enlarged_a.size() + mds_b.size()
    extension_if_b = mds_a.size() + enlarged_b.size()
    if extension_if_a != extension_if_b:
        return extension_if_a < extension_if_b

    volume_if_a = enlarged_a.volume() + mds_b.volume()
    volume_if_b = mds_a.volume() + enlarged_b.volume()
    if volume_if_a != volume_if_b:
        return volume_if_a < volume_if_b

    return len(group_a) <= len(group_b)
