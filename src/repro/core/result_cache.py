"""Versioned query-result cache for range-query and group-by answers.

The DC-tree's headline win is answering *contained* range queries from
materialized directory aggregates without descending; on a repeated OLAP
workload the natural next step is to not descend at all.  This module
memoizes full ``range_query`` / ``group_by_aggregators`` answers keyed on

* the **canonical query digest** — per dimension the ``(frozen value-set,
  relevant level)`` pair of the query MDS (:attr:`~repro.core.mds.MDS.entries`,
  order-insensitive and collision-free by construction) plus the operator
  and measure index, and
* the tree's **monotone ``tree_version`` counter**, bumped by every
  ``insert``, ``delete``, bulk load and maintenance operation — so a stale
  answer can never be served, mirroring the invalidation discipline of the
  versioned MDS adaptation memos.

The cache is **counter-invisible**: a hit replays the page-access trace
and CPU units recorded when the answer was first computed (see
:meth:`~repro.storage.tracker.StorageTracker.replay`), so the simulated
cost model, the buffer-pool evolution and every deterministic tracker
counter are bit-identical with the cache on or off.  Only wall-clock time
changes — which is what ``python -m repro.bench regression`` prices with
its repeated-query (Zipfian re-ask) phase.

Entries are LRU-bounded (``DCTreeConfig.result_cache_capacity``); the
whole layer is gated by ``DCTreeConfig.use_result_cache`` and the global
``repro.hotpath`` ablation switch.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import SchemaError


class CachedAnswer:
    """One memoized answer plus the charges its recomputation would make."""

    __slots__ = ("value", "trace", "cpu_units")

    def __init__(self, value, trace, cpu_units):
        self.value = value
        self.trace = trace
        self.cpu_units = cpu_units


class ResultCacheStats:
    """Immutable snapshot of a cache's counters (for stats/debug/CLI)."""

    __slots__ = ("hits", "misses", "evictions", "invalidations", "size", "capacity")

    def __init__(self, hits, misses, evictions, invalidations, size, capacity):
        self.hits = hits
        self.misses = misses
        self.evictions = evictions
        self.invalidations = invalidations
        self.size = size
        self.capacity = capacity

    @property
    def lookups(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        """Fraction of lookups answered from the cache (0.0 when idle)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def __repr__(self):
        return (
            "ResultCacheStats(hits=%d, misses=%d, evictions=%d, "
            "invalidations=%d, size=%d/%d)"
            % (
                self.hits,
                self.misses,
                self.evictions,
                self.invalidations,
                self.size,
                self.capacity,
            )
        )


class ResultCache:
    """LRU cache of full query answers, invalidated by tree version.

    The cache remembers the ``tree_version`` it was last consistent with;
    any lookup under a different version flushes every entry first (one
    *invalidation* event, however many entries were dropped).  Keys are
    built by the tree from the canonical query digest; values are
    :class:`CachedAnswer` instances whose stored trace is replayed through
    the tracker on every hit.
    """

    __slots__ = (
        "_entries",
        "_capacity",
        "_seen_version",
        "hits",
        "misses",
        "evictions",
        "invalidations",
    )

    def __init__(self, capacity=128):
        if capacity < 1:
            raise SchemaError("result-cache capacity must be at least 1")
        self._entries = OrderedDict()
        self._capacity = capacity
        self._seen_version = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def __len__(self):
        return len(self._entries)

    @property
    def capacity(self):
        return self._capacity

    def stats(self):
        """Current counters as an immutable :class:`ResultCacheStats`."""
        return ResultCacheStats(
            self.hits,
            self.misses,
            self.evictions,
            self.invalidations,
            len(self._entries),
            self._capacity,
        )

    # ------------------------------------------------------------------
    # cache protocol
    # ------------------------------------------------------------------

    def _sync_version(self, tree_version):
        """Flush everything memoized under a different tree version."""
        if self._seen_version != tree_version:
            if self._entries:
                self._entries.clear()
                self.invalidations += 1
            self._seen_version = tree_version

    def fetch(self, key, tree_version, tracker):
        """Look up ``key``; replay its charges and return the entry on a hit.

        Returns the :class:`CachedAnswer` (whose ``value`` may itself be
        ``None`` — e.g. AVG over an empty range) or ``None`` on a miss.
        """
        self._sync_version(tree_version)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        tracker.replay(entry.trace, entry.cpu_units)
        return entry

    def peek(self, key, tree_version):
        """Look up ``key`` with fetch semantics but *without* the replay.

        Counts the hit/miss and refreshes the LRU position exactly like
        :meth:`fetch`, but leaves the tracker untouched.  The EXPLAIN
        path uses this: it recomputes the traversal (to profile it) and
        the recomputation makes the very charges the replay would have —
        so deterministic counters stay bit-identical with ``fetch``.
        """
        self._sync_version(tree_version)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, key, tree_version, value, trace, cpu_units):
        """Memoize one freshly computed answer, evicting LRU overflow."""
        self._sync_version(tree_version)
        self._entries[key] = CachedAnswer(value, trace, cpu_units)
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self):
        """Drop every entry without touching the counters."""
        self._entries.clear()

    def publish_metrics(self, registry, prefix="result_cache"):
        """Export the counters as gauges into a metrics registry."""
        stats = self.stats()
        registry.gauge(prefix + "_hits",
                       "Lookups answered from the cache.").set(stats.hits)
        registry.gauge(prefix + "_misses",
                       "Lookups that had to compute.").set(stats.misses)
        registry.gauge(prefix + "_evictions",
                       "Entries dropped by the LRU bound.").set(stats.evictions)
        registry.gauge(prefix + "_invalidations",
                       "Version-change flush events.").set(stats.invalidations)
        registry.gauge(prefix + "_size",
                       "Entries currently memoized.").set(stats.size)
        registry.gauge(prefix + "_capacity",
                       "LRU capacity bound.").set(stats.capacity)
        registry.gauge(prefix + "_hit_rate",
                       "hits / lookups (0 when idle).").set(stats.hit_rate)

    def __repr__(self):
        return "ResultCache(%r)" % (self.stats(),)
