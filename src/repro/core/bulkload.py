"""Bulk loading a DC-tree from a full record set.

The paper loads its test cube from a flat insert file one record at a
time; production systems bulk-load the initial cube.  This module builds
the tree bottom-up in one pass over the data by *hierarchy partitioning*:
starting from ``(ALL, ..., ALL)``, records are recursively partitioned
along the dimension with the highest relevant level (ties towards more
distinct values, exactly like the dynamic split's dimension order),
descending one concept level whenever a single value cannot be divided —
the same top-down level refinement the dynamic hierarchy split performs,
but without ever producing an intermediate overflow.

The result obeys every DC-tree invariant (coverage, minimality, level
monotonicity, capacities) and is immediately updatable with ordinary
:meth:`~repro.core.tree.DCTree.insert` / ``delete`` calls.  Compared to
record-at-a-time insertion the bulk build touches each page once instead
of once per covered record, which the `abl-bulkload` bench quantifies.
"""

from __future__ import annotations

from ..cube.aggregation import AggregateVector
from .mds import MDS
from .node import DCDataNode, DCDirNode
from .tree import DCTree


def bulk_load(schema, records, config=None, tracker=None,
              storage_config=None):
    """Build a :class:`DCTree` over ``records`` in one bottom-up pass.

    Returns a fully consistent, dynamic tree.  ``records`` may be any
    iterable; it is materialized once.
    """
    tree = DCTree(schema, config=config, tracker=tracker,
                  storage_config=storage_config)
    records = list(records)
    if not records:
        return tree
    loader = _BulkLoader(tree)
    top_levels = [h.top_level for h in tree.hierarchies]
    root = loader.build(records, top_levels)
    # The root swap is a mutation like any other: adopt_root bumps the
    # tree version (so the result cache can never serve an answer from
    # before the load) and notifies any attached durability sink.
    tree.adopt_root(root, len(records))
    return tree


class _BulkLoader:
    """One bulk-load run; holds the tree context."""

    def __init__(self, tree):
        self.tree = tree
        self.config = tree.config
        self.schema = tree.schema
        self.hierarchies = tree.hierarchies
        self.tracker = tree.tracker

    # ------------------------------------------------------------------

    def build(self, records, levels):
        """Build the subtree for ``records`` described at ``levels``."""
        if len(records) <= self.config.leaf_capacity:
            return self._make_leaf(records, levels)
        partition = self._partition(records, levels)
        if partition is None:
            # Indivisible: identical cell coordinates.  One (super)leaf.
            return self._make_leaf(records, levels)
        buckets, child_levels = partition
        children = [self.build(bucket, list(child_levels))
                    for bucket in buckets]
        return self._assemble(children, levels)

    # ------------------------------------------------------------------
    # partitioning
    # ------------------------------------------------------------------

    def _partition(self, records, levels):
        """Split ``records`` along the best dimension.

        Returns ``(buckets, child_levels)`` or None when the records are
        identical in every dimension down to the leaves.  Dimension order
        and the descend-one-level rule mirror the dynamic split (Fig. 5).
        """
        order = sorted(
            range(self.schema.n_dimensions),
            key=lambda d: (-levels[d], d),
        )
        for dim in order:
            for level in self._attempt_levels(records, dim, levels[dim]):
                groups = self._group_by_value(records, dim, level)
                if len(groups) < 2:
                    continue
                child_levels = list(levels)
                child_levels[dim] = level
                return self._pack_buckets(groups), child_levels
        return None

    def _attempt_levels(self, records, dim, level):
        """Levels to try for ``dim``: the current one, then one deeper."""
        attempts = []
        if level < self.hierarchies[dim].top_level:
            attempts.append(level)
        if level > 0:
            attempts.append(level - 1)
        return attempts

    def _group_by_value(self, records, dim, level):
        groups = {}
        for record in records:
            groups.setdefault(
                record.value_at_level(dim, level), []
            ).append(record)
        self.tracker.cpu(len(records))
        return groups

    def _pack_buckets(self, groups):
        """Pack value groups into at most ``dir_capacity`` buckets.

        Greedy balanced first-fit on record counts, largest groups first:
        keeps sibling subtrees similar in size without splitting any
        value group across buckets (so siblings stay disjoint in the
        split dimension — the property the dynamic split also aims for).
        The bucket count targets well-filled data nodes: never more
        buckets than needed for each to feed at least one full leaf.
        """
        capacity = self.config.dir_capacity
        ordered = sorted(groups.values(), key=len, reverse=True)
        total = sum(len(group) for group in ordered)
        full_leaves = -(-total // self.config.leaf_capacity)
        n_buckets = min(capacity, len(ordered), max(2, full_leaves))
        buckets = [[] for _ in range(n_buckets)]
        sizes = [0] * n_buckets
        for group in ordered:
            target = sizes.index(min(sizes))
            buckets[target].extend(group)
            sizes[target] += len(group)
        return [bucket for bucket in buckets if bucket]

    # ------------------------------------------------------------------
    # node assembly
    # ------------------------------------------------------------------

    def _make_leaf(self, records, levels):
        mds = MDS.empty(levels)
        aggregate = AggregateVector(self.schema.n_measures)
        node = DCDataNode(
            mds, aggregate, self.tracker.new_page_id(), records=list(records)
        )
        for record in records:
            mds.add_record(record, self.hierarchies)
            aggregate.add_record(record)
        node.n_blocks = self._blocks_for(
            len(records), self.config.leaf_capacity
        )
        self.tracker.cpu(len(records) * self.schema.n_flat_attributes)
        self.tracker.access_node(node.page_id, node.n_blocks)
        self.tracker.write_node(node.page_id, node.n_blocks)
        return node

    def _assemble(self, children, levels):
        """Stack ``children`` under directory nodes at ``levels``.

        More than ``dir_capacity`` children (possible when a recursive
        build returns splits of splits) are grouped into intermediate
        directory nodes first.
        """
        capacity = self.config.dir_capacity
        while len(children) > capacity:
            grouped = []
            for start in range(0, len(children), capacity):
                grouped.append(
                    self._make_dir(children[start:start + capacity], levels)
                )
            children = grouped
        if len(children) == 1:
            return children[0]
        return self._make_dir(children, levels)

    def _make_dir(self, children, levels):
        mds = MDS.empty(levels)
        aggregate = AggregateVector(self.schema.n_measures)
        node = DCDirNode(
            mds, aggregate, self.tracker.new_page_id(), children=list(children)
        )
        for child in children:
            self.tree._extend_with_child(mds, child)
            aggregate.add_vector(child.aggregate)
        node.n_blocks = self._blocks_for(
            len(children), self.config.dir_capacity
        )
        self.tracker.cpu(len(children) * self.schema.n_dimensions)
        self.tracker.access_node(node.page_id, node.n_blocks)
        self.tracker.write_node(node.page_id, node.n_blocks)
        return node

    @staticmethod
    def _blocks_for(n_entries, capacity):
        return max(1, -(-n_entries // capacity))
