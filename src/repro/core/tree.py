"""The DC-tree: a fully dynamic index structure for data cubes (§3–4).

The tree is X-tree-shaped — hierarchical directory, supernodes when no
good split exists — but replaces MBRs by MDSs, exploits the partial
ordering of the concept hierarchies, and materializes aggregate measures
in every directory entry so range queries can stop at contained entries.

Public operations:

* :meth:`DCTree.insert` / :meth:`DCTree.delete` — single-record dynamic
  updates (the paper's motivation: no nightly bulk-update window).
* :meth:`DCTree.range_query` — aggregation (SUM/COUNT/AVG/MIN/MAX) over a
  range MDS, Fig. 7's algorithm.
* :meth:`DCTree.range_records` — the matching records themselves.
* :meth:`DCTree.check_invariants` — deep structural audit used by tests.
"""

from __future__ import annotations

import time

from .. import hotpath
from ..config import DCTreeConfig
from ..cube.aggregation import AggregateVector, StreamingAggregator
from ..errors import QueryError, RecordNotFoundError, TreeError
from ..obs import ExplainResult, Observability, ProfileSession, QueryProfile
from ..storage import page as page_mod
from ..storage.tracker import StorageTracker
from . import mds as mds_mod
from . import split as split_mod
from .mds import MDS
from .node import DCDataNode, DCDirNode
from .result_cache import ResultCache


class _BatchState:
    """Deferred charges of one open :meth:`DCTree.insert_batch`.

    Tracks the pages the batch dirties — in first-touch order, keeping
    the widest write observed per page — plus which of them took a path
    MDS/aggregate fold, so the flush charges ``write_node`` once and the
    fold CPU once per touched node instead of once per record.  Pages
    freed mid-batch (split sources) are dropped: a write-back buffer
    never flushes a page that died before the flush point.
    """

    __slots__ = ("pending",)

    def __init__(self):
        # page_id -> [n_pages, took_path_fold] (insertion-ordered, so the
        # flush replays writes deterministically in first-touch order).
        self.pending = {}

    def touch(self, page_id, n_pages=1):
        """Note a deferred page write (splice, split, root growth)."""
        entry = self.pending.get(page_id)
        if entry is None:
            self.pending[page_id] = [n_pages, False]
        elif n_pages > entry[0]:
            entry[0] = n_pages

    def extend(self, page_id):
        """Note a deferred path MDS/aggregate fold plus its page write."""
        entry = self.pending.get(page_id)
        if entry is None:
            self.pending[page_id] = [1, True]
        else:
            entry[1] = True

    def discard(self, page_id):
        """Forget a page freed before the flush (nothing left to write)."""
        self.pending.pop(page_id, None)


class DCTree:
    """A DC-tree over one :class:`~repro.cube.schema.CubeSchema`.

    Parameters
    ----------
    schema:
        The cube schema; its concept hierarchies are shared with the tree.
    config:
        A :class:`~repro.config.DCTreeConfig` (defaults apply otherwise).
    tracker:
        Optional externally owned :class:`StorageTracker` (lets experiments
        share a buffer pool); the tree creates a private one by default.
    """

    def __init__(self, schema, config=None, tracker=None, storage_config=None):
        self.schema = schema
        self.config = config if config is not None else DCTreeConfig()
        self.hierarchies = tuple(d.hierarchy for d in schema.dimensions)
        if tracker is not None:
            self.tracker = tracker
        else:
            self.tracker = StorageTracker(storage_config)
        self._n_records = 0
        self._root = self._new_data_node(MDS.all_mds(self.hierarchies))
        self._tree_version = 0
        self._batch = None
        self._mutation_sink = None
        self._result_cache = (
            ResultCache(self.config.result_cache_capacity)
            if self.config.use_result_cache else None
        )
        # Telemetry is strictly observational: spans and metrics read the
        # tracker, never charge it, so every deterministic counter is
        # bit-identical with observability on or off.
        self._obs = Observability() if self.config.observability else None
        self._profile = None

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------

    def __len__(self):
        return self._n_records

    @property
    def root(self):
        """The root node (read-only use, e.g. by the statistics module)."""
        return self._root

    @property
    def tree_version(self):
        """Monotone counter bumped by every mutation of the tree.

        The result cache keys memoized answers on it; *every* mutator
        entry point — :meth:`insert`, :meth:`delete`, bulk loading, and
        the maintenance paths built on them — must call
        :meth:`note_mutation` so a stale answer can never be served.
        """
        return self._tree_version

    @property
    def result_cache(self):
        """The attached :class:`ResultCache` (None when disabled)."""
        return self._result_cache

    @property
    def observability(self):
        """The attached :class:`~repro.obs.Observability` (None when off)."""
        return self._obs

    def note_mutation(self):
        """Bump :attr:`tree_version` (call after any structural change)."""
        self._tree_version += 1

    @property
    def mutation_sink(self):
        """The attached durability sink (None when the tree is volatile)."""
        return self._mutation_sink

    def set_mutation_sink(self, sink):
        """Attach a durability sink; pass ``None`` to detach.

        The sink rides next to the :attr:`tree_version` bump: every
        *acknowledged* mutator notifies it before returning —
        ``record_insert(record)`` / ``record_delete(record)`` after the
        in-memory apply succeeds, ``record_rebase(n_records)`` on a
        wholesale root swap (:meth:`adopt_root`).  A write-ahead log
        (see :class:`repro.persist.durable.DurableWarehouse`) is the
        intended sink; anything with those three methods works.
        """
        self._mutation_sink = sink

    def adopt_root(self, root, n_records):
        """Install a new root wholesale (bulk load, deserialization).

        Bumps the version like any mutation and notifies the durability
        sink with a *rebase*: a record-level log cannot replay a root
        swap, so the sink must checkpoint (the WAL marks the spot and
        recovery refuses to replay past it without that checkpoint).
        """
        self._root = root
        self._n_records = n_records
        self.note_mutation()
        if self._mutation_sink is not None:
            self._mutation_sink.record_rebase(n_records)

    def _active_result_cache(self):
        """The cache, when both the config and the global switch allow it."""
        if self._result_cache is not None and hotpath.enabled():
            return self._result_cache
        return None

    def height(self):
        """Number of levels, counting the root as 1."""
        levels = 1
        node = self._root
        while not node.is_leaf:
            levels += 1
            node = node.children[0]
        return levels

    def records(self):
        """Iterate over all records (no I/O accounting; test/debug aid)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.records
            else:
                stack.extend(node.children)

    def byte_size(self):
        """Approximate on-disk footprint of the whole tree in bytes."""
        n_flat = self.schema.n_flat_attributes
        n_measures = self.schema.n_measures
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += node.byte_size(n_flat, n_measures)
            if not node.is_leaf:
                stack.extend(node.children)
        return total

    def page_count(self):
        """Pages occupied at the configured page size."""
        page_size = self.tracker.config.page_size
        n_flat = self.schema.n_flat_attributes
        n_measures = self.schema.n_measures
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += page_mod.pages_for(
                node.byte_size(n_flat, n_measures), page_size
            )
            if not node.is_leaf:
                stack.extend(node.children)
        return total

    # ------------------------------------------------------------------
    # insertion (Fig. 4)
    # ------------------------------------------------------------------

    def insert(self, record):
        """Insert one data record, keeping the index fully up to date.

        When a durability sink is attached, the mutation is logged after
        the in-memory apply and before this method returns — returning
        IS the acknowledgement, so an acknowledged insert is always
        recoverable and a crash mid-insert loses only the unacknowledged
        one.
        """
        if self._obs is None:
            return self._insert_impl(record)
        with self._obs.span("insert") as span:
            self._insert_impl(record)
            span.set(tree_version=self._tree_version,
                     records=self._n_records)
        self._obs.counter("dctree_inserts_total",
                          "Records inserted.").inc()

    def _insert_impl(self, record):
        self.note_mutation()
        # Dynamic hierarchy maintenance (§3.1): assigning/looking up the
        # level-tagged ID of each of the record's attribute values.
        self.tracker.cpu(2 * self.schema.n_flat_attributes)
        split_result = self._insert_into(self._root, record)
        if split_result is not None:
            self._grow_root(split_result)
        self._n_records += 1
        if self._mutation_sink is not None:
            self._mutation_sink.record_insert(record)

    def insert_batch(self, records):
        """Insert many records, charging writes once per touched node.

        The descent is record-by-record — the same node accesses, the
        same choose-subtree decisions and the same split points as
        serial :meth:`insert` — so the resulting tree is structurally
        identical and every *read* counter matches bit-for-bit.  What a
        batch amortizes is the write-through charging: the per-path-node
        MDS/aggregate fold CPU and the ``write_node`` page write are
        coalesced per touched node and charged once at the flush that
        ends the batch, so batched page writes are at most (usually far
        below) the serial count.  Splits and supernode growth still run
        at their serial points; only their page writes join the flush.

        Semantics the rest of the stack relies on (and tests pin down):

        * :attr:`tree_version` bumps ONCE per batch, at batch start —
          the result cache invalidates once, not per record.
        * A durability sink is notified once, after the in-memory apply,
          via ``record_insert_batch(records)`` when it has one (the WAL
          group-commits the batch as one atomic record: one fsync per
          acknowledged batch) or by per-record ``record_insert`` calls
          otherwise.  Returning IS the acknowledgement; a crash
          mid-batch loses the whole unacknowledged batch and nothing
          else.

        Returns the number of records inserted.
        """
        records = list(records)
        if not records:
            return 0
        if self._batch is not None:
            raise TreeError("insert_batch cannot be nested")
        if self._obs is None:
            self._insert_batch_impl(records)
            return len(records)
        with self._obs.span("insert_batch", records=len(records)) as span:
            pages_written = self._insert_batch_impl(records)
            span.set(tree_version=self._tree_version,
                     pages_written=pages_written)
        self._obs.counter(
            "dctree_batch_inserts_total", "Batches inserted."
        ).inc()
        self._obs.counter(
            "dctree_batch_records_total",
            "Records inserted through batches.",
        ).inc(len(records))
        self._obs.registry.histogram(
            "dctree_batch_pages_per_record",
            "Amortized pages written per batched record.",
        ).observe(pages_written / len(records))
        return len(records)

    def _insert_batch_impl(self, records):
        # One version bump acknowledges the whole batch: the result
        # cache (keyed on tree_version) flushes exactly once, and
        # readers observe the batch atomically.
        self.note_mutation()
        batch = self._batch = _BatchState()
        try:
            for record in records:
                self.tracker.cpu(2 * self.schema.n_flat_attributes)
                split_result = self._insert_into(self._root, record)
                if split_result is not None:
                    self._grow_root(split_result)
                self._n_records += 1
            pages_written = self._flush_batch(batch)
        finally:
            self._batch = None
        if self._mutation_sink is not None:
            record_batch = getattr(
                self._mutation_sink, "record_insert_batch", None
            )
            if record_batch is not None:
                record_batch(records)
            else:
                for record in records:
                    self._mutation_sink.record_insert(record)
        return pages_written

    def _flush_batch(self, batch):
        """Charge the batch's coalesced folds and page writes.

        Pages flush in first-touch order with the widest write observed,
        so the charge sequence is deterministic; returns pages written.
        """
        n_flat = self.schema.n_flat_attributes
        pages_written = 0
        for page_id, (n_pages, extended) in batch.pending.items():
            if extended:
                self.tracker.cpu(n_flat)
            self.tracker.write_node(page_id, n_pages)
            pages_written += n_pages
        return pages_written

    def _charge_node_write(self, page_id, n_pages=1):
        """Charge a page write now, or defer it to the open batch."""
        if self._batch is None:
            self.tracker.write_node(page_id, n_pages)
        else:
            self._batch.touch(page_id, n_pages)

    def _free_node(self, page_id, n_blocks):
        """Free a node's pages, dropping any write still pending on them."""
        if self._batch is not None:
            self._batch.discard(page_id)
        self.tracker.free_node(page_id, n_blocks)

    def _insert_into(self, node, record):
        """Recursive insert; returns a (left, right) pair on split."""
        self.tracker.access_node(node.page_id, node.n_blocks)
        node.mds.add_record(record, self.hierarchies)
        node.aggregate.add_record(record)
        # The materialized measures of the paper make every insert dirty
        # every node on its path.  Serial inserts charge the fold CPU and
        # the write-through page write per record; an open batch defers
        # both to its flush, once per touched node.
        if self._batch is None:
            self.tracker.cpu(self.schema.n_flat_attributes)
            self.tracker.write_node(node.page_id)
        else:
            self._batch.extend(node.page_id)
        if node.is_leaf:
            node.records.append(record)
            if self._overfull(node):
                return self._split_or_grow(node)
            return None
        child, position = self._choose_subtree(node, record)
        child_split = self._insert_into(child, record)
        if child_split is not None:
            node.children[position:position + 1] = list(child_split)
            # The node is already pinned by this descent (accessed and
            # charged above); the splice only dirties it again.
            self._charge_node_write(node.page_id)
            if self._overfull(node):
                return self._split_or_grow(node)
        return None

    def _choose_subtree(self, node, record):
        """Pick the son the record descends into; returns (child, position).

        Criteria (in order): least growth of the child's MDS size, least
        resulting volume, fewest entries.  A child that already covers the
        record therefore always wins.  The record's value at each
        (dimension, level) pair is resolved once per insert, not once per
        child — siblings overwhelmingly share relevant levels.
        """
        if self._obs is None:
            return self._choose_subtree_impl(node, record)
        with self._obs.span(
            "choose_subtree", node=node.page_id,
            fanout=len(node.children),
        ) as span:
            child, position = self._choose_subtree_impl(node, record)
            span.set(child=child.page_id, position=position)
            return child, position

    def _choose_subtree_impl(self, node, record):
        best = None
        best_key = None
        best_position = 0
        value_at = {}
        n_dimensions = self.schema.n_dimensions
        hierarchies = self.hierarchies
        for position, child in enumerate(node.children):
            growth = 0
            volume = 1
            child_mds = child.mds
            for dim in range(n_dimensions):
                level = child_mds.level(dim)
                value = value_at.get((dim, level))
                if value is None:
                    hierarchy = hierarchies[dim]
                    if level >= hierarchy.top_level:
                        value = hierarchy.all_id
                    else:
                        value = record.value_at_level(dim, level)
                    value_at[(dim, level)] = value
                cardinality = child_mds.cardinality(dim)
                if value not in child_mds.value_set(dim):
                    growth += 1
                    cardinality += 1
                volume *= cardinality
            key = (growth, volume, child.entry_count)
            if best_key is None or key < best_key:
                best_key = key
                best = child
                best_position = position
        self.tracker.cpu(len(node.children) * n_dimensions)
        return best, best_position

    def _grow_root(self, split_pair):
        """Install a new root above a split root (tree grows by one level)."""
        old_mds = self._root.mds
        new_root = DCDirNode(
            MDS(
                [set(old_mds.value_set(d)) for d in range(old_mds.n_dimensions)],
                old_mds.levels,
            ),
            self._aggregate_of_nodes(split_pair),
            self.tracker.new_page_id(),
            children=list(split_pair),
        )
        self._root = new_root
        self.tracker.access_node(new_root.page_id, new_root.n_blocks)
        self._charge_node_write(new_root.page_id)

    # ------------------------------------------------------------------
    # splitting (Fig. 5) and supernode management
    # ------------------------------------------------------------------

    def _capacity(self, node):
        base = (
            self.config.leaf_capacity if node.is_leaf
            else self.config.dir_capacity
        )
        return base * node.n_blocks

    def _overfull(self, node):
        """Has the node outgrown its blocks (per the capacity mode)?"""
        if self.config.capacity_mode == "entries":
            return node.entry_count > self._capacity(node)
        page_size = self.tracker.config.page_size
        return node.byte_size(
            self.schema.n_flat_attributes, self.schema.n_measures
        ) > page_size * node.n_blocks

    def _blocks_needed(self, node):
        """Blocks a freshly materialized node occupies."""
        if self.config.capacity_mode == "entries":
            base = (
                self.config.leaf_capacity if node.is_leaf
                else self.config.dir_capacity
            )
            return max(1, -(-node.entry_count // base))
        return page_mod.pages_for(
            node.byte_size(
                self.schema.n_flat_attributes, self.schema.n_measures
            ),
            self.tracker.config.page_size,
        )

    def _split_or_grow(self, node):
        """Split the overfull node or grow it into/as a supernode.

        Returns a (left, right) node pair on success, None when the node
        became (or stays) a supernode.
        """
        if self._obs is None:
            return self._split_or_grow_impl(node)
        kind = "leaf" if node.is_leaf else "dir"
        with self._obs.span(
            "hierarchy_split", node=node.page_id, kind=kind,
            entries=node.entry_count, mds=node.mds.digest()[:12],
        ) as span:
            pair = self._split_or_grow_impl(node)
            if pair is None:
                span.set(outcome="supernode", n_blocks=node.n_blocks)
                self._obs.counter(
                    "dctree_supernode_growths_total",
                    "Overfull nodes that grew a block instead of splitting.",
                    kind=kind,
                ).inc()
            else:
                span.set(outcome="split",
                         sizes=[n.entry_count for n in pair])
                self._obs.counter(
                    "dctree_splits_total", "Successful node splits.",
                    kind=kind,
                ).inc()
            return pair

    def _split_or_grow_impl(self, node):
        if node.is_leaf:
            adapt = self._make_record_adapter(node.records)
            n_entries = len(node.records)
        else:
            adapt = self._make_entry_adapter(node.children)
            n_entries = len(node.children)
        plan = split_mod.plan_node_split(
            node.mds, n_entries, adapt, self.config, self.hierarchies
        )
        if plan is None:
            node.n_blocks += 1
            return None
        self.tracker.cpu(plan.cpu_units)
        if node.is_leaf:
            pair = self._materialize_leaf_split(node, plan)
        else:
            pair = self._materialize_dir_split(node, plan)
        self._free_node(node.page_id, node.n_blocks)
        return pair

    def _make_record_adapter(self, records):
        """Adapter producing record MDSs at arbitrary target levels."""

        def adapt(levels):
            return [
                MDS.for_record(record, levels, self.hierarchies)
                for record in records
            ]

        return adapt

    def _make_entry_adapter(self, children):
        """Adapter producing child-entry MDSs at arbitrary target levels.

        When a child's relevant level in some dimension lies *above* the
        requested level (possible when the node split descends a concept
        level the child never descended), the child's actual values at the
        requested level are collected from its subtree — charged as real
        node accesses, as a disk-resident implementation would pay them.
        """

        def adapt(levels):
            adapted = []
            for child in children:
                sets = []
                for dim, level in enumerate(levels):
                    if child.mds.level(dim) <= level:
                        sets.append(
                            child.mds.adapted_set(
                                dim, level, self.hierarchies[dim]
                            )
                        )
                    else:
                        sets.append(self._collect_values(child, dim, level))
                adapted.append(MDS(sets, levels))
            return adapted

        return adapt

    def _collect_values(self, node, dim, level):
        """Actual values at ``level`` in ``dim`` occurring under ``node``."""
        hierarchy = self.hierarchies[dim]
        if level >= hierarchy.top_level:
            return {hierarchy.all_id}
        values = set()
        stack = [node]
        while stack:
            current = stack.pop()
            self.tracker.access_node(current.page_id, current.n_blocks)
            if current.is_leaf:
                for record in current.records:
                    values.add(record.value_at_level(dim, level))
                self.tracker.cpu(len(current.records))
            else:
                for child in current.children:
                    if child.mds.level(dim) <= level:
                        values.update(
                            child.mds.adapted_set(dim, level, hierarchy)
                        )
                    else:
                        stack.append(child)
                self.tracker.cpu(len(current.children))
        return values

    def _materialize_leaf_split(self, node, plan):
        groups = plan.groups
        pair = []
        for group in groups:
            records = [node.records[i] for i in group]
            new_node = self._new_data_node(
                MDS.empty(plan.levels), records=records
            )
            for record in records:
                new_node.mds.add_record(record, self.hierarchies)
                new_node.aggregate.add_record(record)
            new_node.n_blocks = self._blocks_needed(new_node)
            pair.append(new_node)
        self.tracker.cpu(len(node.records) * self.schema.n_dimensions)
        for new_node in pair:
            self.tracker.access_node(new_node.page_id, new_node.n_blocks)
            self._charge_node_write(new_node.page_id, new_node.n_blocks)
        return tuple(pair)

    def _materialize_dir_split(self, node, plan):
        groups = plan.groups
        pair = []
        for group in groups:
            children = [node.children[i] for i in group]
            for child in children:
                self._refine_child_levels(child, plan.levels)
            group_mds = MDS.empty(plan.levels)
            for child in children:
                self._extend_with_child(group_mds, child)
            new_node = DCDirNode(
                group_mds,
                self._aggregate_of_nodes(children),
                self.tracker.new_page_id(),
                children=children,
            )
            new_node.n_blocks = self._blocks_needed(new_node)
            pair.append(new_node)
        self.tracker.cpu(len(node.children) * self.schema.n_dimensions)
        for new_node in pair:
            self.tracker.access_node(new_node.page_id, new_node.n_blocks)
            self._charge_node_write(new_node.page_id, new_node.n_blocks)
        return tuple(pair)

    def _refine_child_levels(self, child, levels):
        """Deepen a child whose MDS is coarser than the split target.

        A hierarchy split may descend one concept level past a child that
        never descended there itself; the child's exact value set at the
        target level was already collected for the grouping, so the
        child's own MDS is refined to it — children stay at least as
        specific as their parents.
        """
        for dim, level in enumerate(levels):
            if child.mds.level(dim) > level:
                child.mds.refine_dimension(
                    dim, self._collect_values(child, dim, level), level
                )

    def _extend_with_child(self, group_mds, child):
        """Fold a child's value sets into a group MDS being built."""
        for dim in range(group_mds.n_dimensions):
            level = group_mds.level(dim)
            if child.mds.level(dim) <= level:
                group_mds.update_values(
                    dim,
                    child.mds.adapted_set(dim, level, self.hierarchies[dim]),
                )
            else:
                group_mds.update_values(
                    dim, self._collect_values(child, dim, level)
                )

    def _aggregate_of_nodes(self, nodes):
        aggregate = AggregateVector(self.schema.n_measures)
        for node in nodes:
            aggregate.add_vector(node.aggregate)
        return aggregate

    def _new_data_node(self, mds, records=None):
        return DCDataNode(
            mds,
            AggregateVector(self.schema.n_measures),
            self.tracker.new_page_id(),
            records=records,
        )

    # ------------------------------------------------------------------
    # range queries (Fig. 7)
    # ------------------------------------------------------------------

    def _classify_entry(self, range_mds, entry_mds, check_containment=True):
        """DISJOINT/PARTIAL/CONTAINED classification of one directory entry.

        With ``use_hot_path_caches`` on, this is the fused single-pass
        :func:`~repro.core.mds.classify` (each dimension adapted exactly
        once, memoized); otherwise the legacy ``overlaps`` + ``contains``
        call pair.  Either way one :func:`~repro.core.mds.operation_cost`
        charge is made — the cost model prices the *logical* comparison,
        so simulated times stay comparable across the ablation.
        """
        self.tracker.cpu(mds_mod.operation_cost(range_mds, entry_mds))
        if self.config.use_hot_path_caches:
            return mds_mod.classify(
                range_mds, entry_mds, self.hierarchies, check_containment
            )
        if not mds_mod.overlaps(range_mds, entry_mds, self.hierarchies):
            return mds_mod.DISJOINT
        if check_containment and mds_mod.contains(
            range_mds, entry_mds, self.hierarchies
        ):
            return mds_mod.CONTAINED
        return mds_mod.PARTIAL

    def range_query(self, range_mds, op="sum", measure=0, explain=False):
        """Aggregate ``op`` of one measure over the cells in ``range_mds``.

        ``measure`` may be an index or a measure name.  Uses the
        materialized aggregates of contained directory entries unless the
        configuration disables them (ablation `abl-measures`).  MIN and
        MAX additionally run branch-and-bound over the stored extrema
        (the optimization of Ho et al., the paper's reference [6]): a
        partially overlapping subtree whose stored bound cannot improve
        the current best is pruned without being read.

        With ``explain=True`` the answer comes back as an
        :class:`~repro.obs.ExplainResult` carrying a per-level
        :class:`~repro.obs.QueryProfile` whose page/CPU totals reconcile
        exactly with the tracker delta of the call.  Charges are
        bit-identical to the plain call (see :meth:`_explained`).
        """
        if self._obs is None:
            return self._range_query_entry(range_mds, op, measure, explain)
        with self._obs.span("range_query", op=op) as span:
            result = self._range_query_entry(range_mds, op, measure, explain)
            span.set(mds=range_mds.digest()[:12],
                     tree_version=self._tree_version)
            return result

    def _range_query_entry(self, range_mds, op, measure, explain):
        measure_index = self._measure_index(measure)
        self._check_query_mds(range_mds)
        # use_materialized_aggregates changes the traversal (and therefore
        # the charged trace), so it is part of the memo identity: flipping
        # the ablation knob mid-life must recompute, not replay.
        key = ("range", range_mds.cache_key(), op, measure_index,
               self.config.use_materialized_aggregates)
        if explain:
            return self._explained(
                "range_query", op, measure_index, key,
                lambda: self._range_query_computed(
                    range_mds, op, measure_index
                ),
            )
        cache = self._active_result_cache()
        if cache is None:
            return self._range_query_computed(range_mds, op, measure_index)
        entry = cache.fetch(key, self._tree_version, self.tracker)
        if entry is not None:
            return entry.value
        with self.tracker.trace_accesses() as trace:
            cpu_before = self.tracker.cpu_units
            value = self._range_query_computed(range_mds, op, measure_index)
            cpu_units = self.tracker.cpu_units - cpu_before
        cache.store(key, self._tree_version, value, trace, cpu_units)
        return value

    def _explained(self, kind, op, measure_index, cache_key, compute,
                   store_value=None):
        """Run ``compute`` under a :class:`ProfileSession`; return both.

        Charging is bit-identical to the unprofiled call: on a cache miss
        the computation runs under the same access trace and stores the
        same entry; on a *hit* the traversal is recomputed instead of
        replayed — the stored trace was recorded at this very tree
        version, so recomputing makes exactly the charges the replay
        would have (the cache's counter-invisibility invariant), while
        giving the profiler a real traversal to attribute.
        """
        profile = QueryProfile(
            kind, op, measure_index, self._tree_version
        )
        cache = self._active_result_cache()
        cached = None
        if cache is None:
            profile.cache_outcome = "disabled"
        else:
            cached = cache.peek(cache_key, self._tree_version)
            profile.cache_outcome = "hit" if cached is not None else "miss"
        started = time.perf_counter()
        profile.before = self.tracker.snapshot()
        session = ProfileSession(profile, self.tracker)
        self._profile = session
        try:
            if cache is not None and cached is None:
                with self.tracker.trace_accesses() as trace:
                    cpu_before = self.tracker.cpu_units
                    value = compute()
                    cpu_units = self.tracker.cpu_units - cpu_before
                cache.store(
                    cache_key, self._tree_version,
                    value if store_value is None else store_value(value),
                    trace, cpu_units,
                )
            else:
                value = compute()
        finally:
            self._profile = None
            session.finish()
            profile.after = self.tracker.snapshot()
            profile.wall_seconds = time.perf_counter() - started
        if self._obs is not None:
            self._obs.counter(
                "dctree_explains_total",
                "Profiled (EXPLAIN) queries by kind.", kind=kind,
            ).inc()
        return ExplainResult(value, profile)

    def _range_query_computed(self, range_mds, op, measure_index):
        """The actual Fig. 7 traversal behind :meth:`range_query`."""
        if op in ("min", "max") and self.config.use_materialized_aggregates:
            return self._range_extremum(range_mds, op, measure_index)
        aggregator = StreamingAggregator(op, measure_index)
        self._query_node(self._root, range_mds, aggregator)
        return aggregator.result()

    def _range_extremum(self, range_mds, op, measure_index):
        """Branch-and-bound range-MAX/MIN (reference [6] style)."""
        sign = 1.0 if op == "max" else -1.0
        best = self._extremum_node(
            self._root, range_mds, sign, measure_index, None
        )
        return best

    def _extremum_node(self, node, range_mds, sign, measure_index, best,
                       depth=0):
        self.tracker.access_node(node.page_id, node.n_blocks)
        profile = self._profile
        if profile is not None:
            profile.visit(depth, node.n_blocks)
        if node.is_leaf:
            self.tracker.cpu(len(node.records) * self.schema.n_dimensions)
            for record in node.records:
                if mds_mod.covers_record(range_mds, record, self.hierarchies):
                    value = record.measures[measure_index]
                    if best is None or sign * value > sign * best:
                        best = value
            if profile is not None:
                profile.scanned(depth, len(node.records))
                profile.charge_cpu(depth)
            return best
        candidates = []
        for child in node.children:
            outcome = self._classify_entry(range_mds, child.mds)
            if profile is not None:
                profile.classified(depth, outcome)
                profile.charge_cpu(depth)
            if outcome == mds_mod.DISJOINT:
                continue
            summary = child.aggregate.summaries[measure_index]
            if summary.count == 0:
                continue
            bound = summary.max if sign > 0 else summary.min
            contained = outcome == mds_mod.CONTAINED
            candidates.append((sign * bound, contained, bound, child))
        # Most promising bound first maximizes subsequent pruning.
        candidates.sort(key=lambda item: item[0], reverse=True)
        for signed_bound, contained, bound, child in candidates:
            if best is not None and signed_bound <= sign * best:
                break  # no remaining subtree can improve the best
            if contained:
                best = bound
                if profile is not None:
                    profile.aggregate_hit(depth)
            else:
                best = self._extremum_node(
                    child, range_mds, sign, measure_index, best, depth + 1
                )
        return best

    def range_count(self, range_mds):
        """Number of records inside ``range_mds``."""
        return self.range_query(range_mds, op="count")

    def range_summary(self, range_mds, measure=0):
        """All supported aggregates of one measure in a single pass.

        Returns a :class:`~repro.cube.aggregation.MeasureSummary` — sum,
        count, min and max together for the price of one traversal (the
        materialized vectors hold all four, Fig. 7's algorithm is
        aggregate-agnostic).
        """
        measure_index = self._measure_index(measure)
        self._check_query_mds(range_mds)
        aggregator = StreamingAggregator("sum", measure_index)
        self._query_node(self._root, range_mds, aggregator)
        return aggregator.summary.copy()

    def estimate_count(self, range_mds, max_depth=1):
        """Cheap cardinality estimate from the directory only.

        Descends at most ``max_depth`` levels; fully contained entries
        contribute their exact counts, partially overlapping entries are
        prorated by the fraction of their MDS volume the query covers
        (uniformity assumption — the classic optimizer trade of accuracy
        for I/O).  ``max_depth=0`` inspects only the root's entries.
        """
        self._check_query_mds(range_mds)
        return self._estimate_node(self._root, range_mds, max_depth)

    def _estimate_node(self, node, range_mds, depth_budget):
        self.tracker.access_node(node.page_id, node.n_blocks)
        if node.is_leaf:
            self.tracker.cpu(len(node.records) * self.schema.n_dimensions)
            return float(
                sum(
                    1 for record in node.records
                    if mds_mod.covers_record(range_mds, record,
                                             self.hierarchies)
                )
            )
        estimate = 0.0
        for child in node.children:
            outcome = self._classify_entry(range_mds, child.mds)
            if outcome == mds_mod.DISJOINT:
                continue
            if outcome == mds_mod.CONTAINED:
                estimate += child.aggregate.count
            elif depth_budget > 0:
                estimate += self._estimate_node(
                    child, range_mds, depth_budget - 1
                )
            else:
                fraction = self._overlap_fraction(range_mds, child.mds)
                estimate += child.aggregate.count * fraction
        return estimate

    def _overlap_fraction(self, range_mds, entry_mds):
        """Estimated fraction of the entry's records inside the range.

        Per dimension: the covered share of the entry's value set,
        expanded to the *query's* level when the query is more specific
        (upward adaptation would wildly overestimate — 25 % of the days
        adapt up to *all* months).  Dimensions multiply (independence
        assumption).
        """
        fraction = 1.0
        for dim in range(range_mds.n_dimensions):
            hierarchy = self.hierarchies[dim]
            query_level = range_mds.level(dim)
            entry_level = entry_mds.level(dim)
            query_set = range_mds.value_set(dim)
            if query_level >= entry_level:
                # Inspecting the entry means lifting each of its stored
                # values; charge those, not the (possibly collapsed)
                # adapted set.
                self.tracker.cpu(entry_mds.cardinality(dim))
                entry_set = entry_mds.adapted_set(dim, query_level, hierarchy)
                covered = len(entry_set & query_set)
                total = len(entry_set)
            else:
                covered = 0
                total = 0
                for value in entry_mds.value_set(dim):
                    descendants = hierarchy.descendants_at_level(
                        value, query_level
                    )
                    self.tracker.cpu(len(descendants))
                    covered += len(descendants & query_set)
                    total += len(descendants)
            if total == 0:
                return 0.0
            fraction *= covered / total
            if fraction == 0.0:
                return 0.0
        return fraction

    def range_records(self, range_mds):
        """The records inside ``range_mds`` (always descends to leaves)."""
        self._check_query_mds(range_mds)
        result = []
        self._collect_records(self._root, range_mds, result)
        return result

    def _query_node(self, node, range_mds, aggregator, depth=0):
        self.tracker.access_node(node.page_id, node.n_blocks)
        profile = self._profile
        if profile is not None:
            profile.visit(depth, node.n_blocks)
        if node.is_leaf:
            self.tracker.cpu(len(node.records) * self.schema.n_dimensions)
            for record in node.records:
                if mds_mod.covers_record(range_mds, record, self.hierarchies):
                    aggregator.add_record(record)
            if profile is not None:
                profile.scanned(depth, len(node.records))
                profile.charge_cpu(depth)
            return
        use_aggregates = self.config.use_materialized_aggregates
        for child in node.children:
            outcome = self._classify_entry(
                range_mds, child.mds, check_containment=use_aggregates
            )
            if profile is not None:
                profile.classified(depth, outcome)
                profile.charge_cpu(depth)
            if outcome == mds_mod.DISJOINT:
                continue
            if outcome == mds_mod.CONTAINED:
                aggregator.add_vector(child.aggregate)
                if profile is not None:
                    profile.aggregate_hit(depth)
            else:
                self._query_node(child, range_mds, aggregator, depth + 1)

    def _collect_records(self, node, range_mds, result):
        self.tracker.access_node(node.page_id, node.n_blocks)
        if node.is_leaf:
            self.tracker.cpu(len(node.records) * self.schema.n_dimensions)
            for record in node.records:
                if mds_mod.covers_record(range_mds, record, self.hierarchies):
                    result.append(record)
            return
        for child in node.children:
            outcome = self._classify_entry(
                range_mds, child.mds, check_containment=False
            )
            if outcome != mds_mod.DISJOINT:
                self._collect_records(child, range_mds, result)

    def _measure_index(self, measure):
        if isinstance(measure, str):
            return self.schema.measure_index(measure)
        if not 0 <= measure < self.schema.n_measures:
            raise QueryError("measure index %r out of range" % (measure,))
        return measure

    def _check_query_mds(self, range_mds):
        if range_mds.n_dimensions != self.schema.n_dimensions:
            raise QueryError(
                "query has %d dimensions, cube has %d"
                % (range_mds.n_dimensions, self.schema.n_dimensions)
            )
        if range_mds.is_empty():
            raise QueryError("query MDS has an empty dimension")

    # ------------------------------------------------------------------
    # group-by (roll-up along one concept hierarchy)
    # ------------------------------------------------------------------

    def group_by(self, dim_index, level, op="sum", measure=0,
                 range_mds=None, explain=False):
        """Aggregate per value at ``level`` of dimension ``dim_index``.

        Returns ``{attr_id: aggregate}`` for every value with at least
        one record (inside ``range_mds``, when given).  One traversal:
        a subtree whose MDS maps to a *single* group and lies fully
        inside the range contributes its materialized aggregate without
        being read; everything else descends.

        With ``explain=True`` returns an
        :class:`~repro.obs.ExplainResult` over the finished group dict.
        """
        groups = self.group_by_aggregators(
            dim_index, level, op, measure, range_mds, explain=explain
        )
        if explain:
            finished = {
                value: aggregator.result()
                for value, aggregator in groups.value.items()
            }
            return ExplainResult(finished, groups.profile)
        return {
            value: aggregator.result() for value, aggregator in groups.items()
        }

    def group_by_aggregators(self, dim_index, level, op="sum", measure=0,
                             range_mds=None, explain=False):
        """Like :meth:`group_by` but returns the live aggregators.

        Callers that need to merge groups further (e.g. by label — TPC-D
        market segments repeat under every nation) combine the underlying
        summaries instead of the finished scalars.
        """
        if self._obs is None:
            return self._group_by_entry(
                dim_index, level, op, measure, range_mds, explain
            )
        with self._obs.span(
            "group_by", dim=dim_index, level=level, op=op,
        ) as span:
            result = self._group_by_entry(
                dim_index, level, op, measure, range_mds, explain
            )
            span.set(tree_version=self._tree_version)
            return result

    def _group_by_entry(self, dim_index, level, op, measure, range_mds,
                        explain):
        measure_index = self._measure_index(measure)
        if not 0 <= dim_index < self.schema.n_dimensions:
            raise QueryError("dimension index %r out of range" % (dim_index,))
        hierarchy = self.hierarchies[dim_index]
        if not 0 <= level < hierarchy.top_level:
            raise QueryError(
                "group-by level %r out of range for dimension %d"
                % (level, dim_index)
            )
        if range_mds is None:
            range_mds = MDS.all_mds(self.hierarchies)
        else:
            self._check_query_mds(range_mds)
        key = (
            "groupby", dim_index, level, op, measure_index,
            range_mds.cache_key(),
            self.config.use_materialized_aggregates,
        )
        if explain:
            return self._explained(
                "group_by", op, measure_index, key,
                lambda: self._group_by_computed(
                    dim_index, level, op, measure_index, range_mds
                ),
                store_value=lambda groups: {
                    value: aggregator.copy()
                    for value, aggregator in groups.items()
                },
            )
        cache = self._active_result_cache()
        if cache is None:
            return self._group_by_computed(
                dim_index, level, op, measure_index, range_mds
            )
        entry = cache.fetch(key, self._tree_version, self.tracker)
        if entry is not None:
            # Hand out copies: callers merge groups onwards (e.g. by
            # label) and must not mutate the memoized aggregators.
            return {
                value: aggregator.copy()
                for value, aggregator in entry.value.items()
            }
        with self.tracker.trace_accesses() as trace:
            cpu_before = self.tracker.cpu_units
            groups = self._group_by_computed(
                dim_index, level, op, measure_index, range_mds
            )
            cpu_units = self.tracker.cpu_units - cpu_before
        cache.store(
            key, self._tree_version,
            {value: aggregator.copy() for value, aggregator in groups.items()},
            trace, cpu_units,
        )
        return groups

    def _group_by_computed(self, dim_index, level, op, measure_index,
                           range_mds):
        """The actual one-pass roll-up behind :meth:`group_by_aggregators`."""
        groups = {}
        self._group_node(
            self._root, dim_index, level, op, measure_index, range_mds,
            groups,
        )
        return groups

    def _group_node(self, node, dim_index, level, op, measure_index,
                    range_mds, groups, depth=0):
        self.tracker.access_node(node.page_id, node.n_blocks)
        profile = self._profile
        if profile is not None:
            profile.visit(depth, node.n_blocks)
        hierarchy = self.hierarchies[dim_index]
        if node.is_leaf:
            self.tracker.cpu(len(node.records) * self.schema.n_dimensions)
            for record in node.records:
                if mds_mod.covers_record(range_mds, record, self.hierarchies):
                    value = record.value_at_level(dim_index, level)
                    self._group_for(value, op, measure_index, groups) \
                        .add_record(record)
            if profile is not None:
                profile.scanned(depth, len(node.records))
                profile.charge_cpu(depth)
            return
        use_aggregates = self.config.use_materialized_aggregates
        for child in node.children:
            single_group = None
            if child.mds.level(dim_index) <= level:
                lifted = child.mds.adapted_set(dim_index, level, hierarchy)
                if len(lifted) == 1:
                    single_group = next(iter(lifted))
            outcome = self._classify_entry(
                range_mds, child.mds,
                check_containment=use_aggregates and single_group is not None,
            )
            if profile is not None:
                profile.classified(depth, outcome)
                profile.charge_cpu(depth)
            if outcome == mds_mod.DISJOINT:
                continue
            if outcome == mds_mod.CONTAINED:
                self._group_for(single_group, op, measure_index, groups) \
                    .add_vector(child.aggregate)
                if profile is not None:
                    profile.aggregate_hit(depth)
            else:
                self._group_node(
                    child, dim_index, level, op, measure_index, range_mds,
                    groups, depth + 1,
                )

    @staticmethod
    def _group_for(value, op, measure_index, groups):
        aggregator = groups.get(value)
        if aggregator is None:
            aggregator = StreamingAggregator(op, measure_index)
            groups[value] = aggregator
        return aggregator

    # ------------------------------------------------------------------
    # deletion (the 'fully dynamic' complement of insert)
    # ------------------------------------------------------------------

    def delete(self, record):
        """Remove one record (by value); raise if it is not indexed.

        Aggregates are subtracted along the deletion path; stale MIN/MAX
        summaries and the path's MDSs are recomputed bottom-up so coverage
        *and* minimality keep holding.  Empty nodes are unlinked,
        underflowing nodes are condensed (their contents reinserted, as in
        the R-tree), shrunk supernodes give blocks back, and a root
        directory left with a single child is collapsed.
        """
        if self._obs is None:
            return self._delete_impl(record)
        with self._obs.span("delete") as span:
            self._delete_impl(record)
            span.set(tree_version=self._tree_version,
                     records=self._n_records)
        self._obs.counter("dctree_deletes_total",
                          "Records deleted.").inc()

    def _delete_impl(self, record):
        self.note_mutation()
        orphans = []
        if not self._delete_from(self._root, record, orphans):
            raise RecordNotFoundError("record not found: %r" % (record,))
        self._n_records -= 1
        self._collapse_root()
        for orphan in orphans:
            self._reinsert(orphan)
        if self._mutation_sink is not None:
            self._mutation_sink.record_delete(record)

    def _collapse_root(self):
        root = self._root
        if not root.is_leaf and len(root.children) == 1:
            self._root = root.children[0]
            self._free_node(root.page_id, root.n_blocks)

    def _reinsert(self, record):
        """Insert without touching the record count (condense support)."""
        self.tracker.cpu(2 * self.schema.n_flat_attributes)
        split_result = self._insert_into(self._root, record)
        if split_result is not None:
            self._grow_root(split_result)

    def _delete_from(self, node, record, orphans):
        self.tracker.access_node(node.page_id, node.n_blocks)
        if node.is_leaf:
            try:
                node.records.remove(record)
            except ValueError:
                return False
            self._recompute_leaf_summary(node)
            self.tracker.write_node(node.page_id)
            return True
        for child in node.children:
            self.tracker.cpu(self.schema.n_dimensions)
            if not mds_mod.covers_record(child.mds, record, self.hierarchies):
                continue
            if self._delete_from(child, record, orphans):
                self._handle_underflow(node, child, orphans)
                self._recompute_dir_summary(node)
                self.tracker.write_node(node.page_id)
                return True
        return False

    def _handle_underflow(self, parent, child, orphans):
        """Unlink empty/underfull children; shrink shrunken supernodes."""
        if child.entry_count == 0:
            parent.children.remove(child)
            self._free_node(child.page_id, child.n_blocks)
            return
        if child.is_supernode:
            while child.n_blocks > 1 and not self._needs_blocks(
                child, child.n_blocks - 1
            ):
                child.n_blocks -= 1
            return
        min_fanout = (
            self.config.min_leaf_fanout() if child.is_leaf
            else self.config.min_dir_fanout()
        )
        if child.entry_count < min_fanout and len(parent.children) > 1:
            parent.children.remove(child)
            self._collect_orphans(child, orphans)

    def _needs_blocks(self, node, n_blocks):
        """Would the node overflow if shrunk to ``n_blocks`` blocks?"""
        if self.config.capacity_mode == "entries":
            base = (
                self.config.leaf_capacity if node.is_leaf
                else self.config.dir_capacity
            )
            return node.entry_count > base * n_blocks
        page_size = self.tracker.config.page_size
        return node.byte_size(
            self.schema.n_flat_attributes, self.schema.n_measures
        ) > page_size * n_blocks

    def _collect_orphans(self, node, orphans):
        """Gather every record under ``node`` and free its pages."""
        stack = [node]
        while stack:
            current = stack.pop()
            self.tracker.access_node(current.page_id, current.n_blocks)
            self._free_node(current.page_id, current.n_blocks)
            if current.is_leaf:
                orphans.extend(current.records)
            else:
                stack.extend(current.children)

    def _recompute_leaf_summary(self, node):
        node.aggregate.clear()
        for dim in range(node.mds.n_dimensions):
            node.mds.clear_dimension(dim)
        for record in node.records:
            node.aggregate.add_record(record)
            node.mds.add_record(record, self.hierarchies)
        self.tracker.cpu(len(node.records) * self.schema.n_dimensions)

    def _recompute_dir_summary(self, node):
        node.aggregate.clear()
        for dim in range(node.mds.n_dimensions):
            node.mds.clear_dimension(dim)
        for child in node.children:
            node.aggregate.add_vector(child.aggregate)
            self._extend_with_child(node.mds, child)
        self.tracker.cpu(len(node.children) * self.schema.n_dimensions)

    # ------------------------------------------------------------------
    # invariants (test support)
    # ------------------------------------------------------------------

    def check_invariants(self):
        """Audit the whole tree; raise :class:`TreeError` on any violation.

        Checks per node: MDS levels within bounds and dominated by the
        parent's, exact coverage *and* minimality of the MDS, aggregate
        consistency with the subtree, capacity respected, and supernode
        bookkeeping.  Returns the total number of records seen.
        """
        total = self._check_node(self._root, parent_levels=None)
        if total != self._n_records:
            raise TreeError(
                "record count mismatch: tree says %d, traversal found %d"
                % (self._n_records, total)
            )
        return total

    def _check_node(self, node, parent_levels):
        mds = node.mds
        for dim in range(mds.n_dimensions):
            level = mds.level(dim)
            top = self.hierarchies[dim].top_level
            if not 0 <= level <= top:
                raise TreeError("level %d out of range in dim %d" % (level, dim))
            if parent_levels is not None and level > parent_levels[dim]:
                raise TreeError(
                    "child level %d exceeds parent level %d in dim %d"
                    % (level, parent_levels[dim], dim)
                )
        if self._overfull(node):
            raise TreeError(
                "node overfull: %d entries in %d block(s)"
                % (node.entry_count, node.n_blocks)
            )
        if node.n_blocks < 1:
            raise TreeError("node with %d blocks" % node.n_blocks)

        expected = AggregateVector(self.schema.n_measures)
        total = 0
        observed_sets = [set() for _ in range(mds.n_dimensions)]
        if node.is_leaf:
            for record in node.records:
                expected.add_record(record)
                total += 1
                for dim in range(mds.n_dimensions):
                    level = mds.level(dim)
                    hierarchy = self.hierarchies[dim]
                    if level >= hierarchy.top_level:
                        observed_sets[dim].add(hierarchy.all_id)
                    else:
                        observed_sets[dim].add(
                            record.value_at_level(dim, level)
                        )
        else:
            if not node.children:
                raise TreeError("directory node without children")
            for child in node.children:
                total += self._check_node(child, mds.levels)
                expected.add_vector(child.aggregate)
                for dim in range(mds.n_dimensions):
                    level = mds.level(dim)
                    if child.mds.level(dim) <= level:
                        observed_sets[dim].update(
                            child.mds.adapted_set(
                                dim, level, self.hierarchies[dim]
                            )
                        )
                    else:
                        observed_sets[dim].update(
                            self._collect_values(child, dim, level)
                        )
        if node.is_leaf and not node.records:
            # An empty tree keeps the initial (ALL, ..., ALL) MDS; there is
            # nothing for minimality to bite on.
            return 0
        for dim in range(mds.n_dimensions):
            if observed_sets[dim] != mds.value_set(dim):
                raise TreeError(
                    "MDS of dim %d not minimal/covering: stored %r, actual %r"
                    % (dim, sorted(mds.value_set(dim)),
                       sorted(observed_sets[dim]))
                )
        if node.aggregate != expected:
            raise TreeError(
                "aggregate mismatch: stored %r, actual %r"
                % (node.aggregate, expected)
            )
        return total
