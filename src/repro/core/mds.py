"""Minimum Describing Sequences and their algebra (Definitions 3 and 4).

An MDS describes a subcube by one entry per dimension: a set of attribute
values that all belong to the same *relevant level* of that dimension's
concept hierarchy.  Unlike an MBR, an MDS enumerates exactly the values
that actually occur (coverage + minimality), so it covers less dead space
at the price of a variable size.

Operations on two MDSs require their per-dimension levels to be comparable;
:meth:`MDS.adapted_set` lifts a value set to a higher level ("the union of
American customers and North America makes no sense", §3.2).  Upward
adaptation loses precision, which is why the range-query algorithm treats
adapted overlap as a *may-overlap* signal and recurses — exactness is
restored either at the data nodes or through the descendant-based
containment test in :func:`contains`.
"""

from __future__ import annotations

import hashlib

from .. import hotpath
from ..errors import MdsError

#: Outcomes of :func:`classify` (ordered: more overlap = larger value).
DISJOINT = 0
PARTIAL = 1
CONTAINED = 2


def caches_enabled():
    """True when the acceleration layer (adaptation memo etc.) is active."""
    return hotpath.enabled()


def set_caches_enabled(enabled):
    """Enable/disable the acceleration layer; returns the previous state."""
    return hotpath.set_enabled(enabled)


#: Context manager running its body with the acceleration layer off.
caches_disabled = hotpath.disabled


class MDS:
    """A minimum describing sequence: per dimension a (value-set, level).

    The class is deliberately mutable — DC-tree nodes update their MDS in
    place on every insertion — but exposes value-style equality and a
    :meth:`copy` for callers that need snapshots.
    """

    __slots__ = ("_sets", "_levels", "_version", "_adapt_cache")

    def __init__(self, sets, levels):
        sets = [set(s) for s in sets]
        levels = list(levels)
        if len(sets) != len(levels):
            raise MdsError(
                "MDS needs one level per dimension: %d sets vs %d levels"
                % (len(sets), len(levels))
            )
        self._sets = sets
        self._levels = levels
        self._version = 0
        self._adapt_cache = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def all_mds(cls, hierarchies):
        """The MDS ``(ALL, ..., ALL)`` a new DC-tree starts from (§3.2)."""
        return cls(
            [{h.all_id} for h in hierarchies],
            [h.top_level for h in hierarchies],
        )

    @classmethod
    def empty(cls, levels):
        """An MDS with the given relevant levels and no values yet."""
        return cls([set() for _ in levels], levels)

    @classmethod
    def for_record(cls, record, levels, hierarchies):
        """MDS describing a single record at the given relevant levels."""
        sets = []
        for dim, level in enumerate(levels):
            hierarchy = hierarchies[dim]
            if level >= hierarchy.top_level:
                sets.append({hierarchy.all_id})
            else:
                sets.append({record.value_at_level(dim, level)})
        return cls(sets, levels)

    @classmethod
    def cover_of(cls, mdss, hierarchies):
        """Minimal MDS covering all of ``mdss``.

        The relevant level per dimension is the highest level occurring in
        the inputs (lower-level sets are adapted upwards), which is the
        only choice that keeps every input comparable to the result.
        """
        mdss = list(mdss)
        if not mdss:
            raise MdsError("cannot cover an empty collection of MDSs")
        n_dims = mdss[0].n_dimensions
        levels = [
            max(m.level(dim) for m in mdss) for dim in range(n_dims)
        ]
        cover = cls.empty(levels)
        for mds in mdss:
            for dim in range(n_dims):
                cover._sets[dim].update(
                    mds.adapted_set(dim, levels[dim], hierarchies[dim])
                )
        return cover

    def copy(self):
        return MDS(self._sets, self._levels)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def n_dimensions(self):
        return len(self._sets)

    @property
    def entries(self):
        """Immutable view: one ``(frozenset, level)`` pair per dimension."""
        return tuple(
            (frozenset(s), lvl) for s, lvl in zip(self._sets, self._levels)
        )

    def value_set(self, dim):
        """The value set of dimension ``dim`` (the live set — do not mutate)."""
        return self._sets[dim]

    def level(self, dim):
        """Relevant level of dimension ``dim``."""
        return self._levels[dim]

    @property
    def levels(self):
        return tuple(self._levels)

    def cardinality(self, dim):
        """Number of values stored for dimension ``dim``."""
        return len(self._sets[dim])

    def size(self):
        """``size(M) = sum_i |M_i|`` (Definition 4)."""
        return sum(len(s) for s in self._sets)

    def volume(self):
        """``volume(M) = prod_i |M_i|`` (Definition 4)."""
        product = 1
        for s in self._sets:
            product *= len(s)
        return product

    def is_empty(self):
        """True when any dimension has no values (describes nothing)."""
        return any(not s for s in self._sets)

    @property
    def version(self):
        """Monotone mutation counter; adaptation memos are keyed on it."""
        return self._version

    def cache_key(self):
        """Canonical hashable digest of this MDS (result-cache key part).

        One ``(frozenset, level)`` pair per dimension — exactly the
        information Definition 3 says an MDS carries.  Two semantically
        equal MDSs (same value sets at the same levels, however they were
        built) produce equal keys, and two different MDSs cannot collide:
        the key *is* the described subcube, not a lossy hash of it.
        """
        return self.entries

    def digest(self):
        """Stable hex digest of :meth:`cache_key` (logging/test aid).

        Values are sorted per dimension before hashing, so the digest is
        independent of set iteration order and of how the MDS was grown.
        """
        h = hashlib.sha256()
        for s, level in zip(self._sets, self._levels):
            h.update(repr((level, sorted(s))).encode())
        return h.hexdigest()

    # ------------------------------------------------------------------
    # mutation (DC-tree maintenance)
    # ------------------------------------------------------------------

    def _touch(self):
        """Bump the version and drop memoized adaptations (now stale)."""
        self._version += 1
        if self._adapt_cache:
            self._adapt_cache.clear()

    def add_record(self, record, hierarchies):
        """Extend the MDS to cover ``record`` at the current levels."""
        self._touch()
        for dim, level in enumerate(self._levels):
            hierarchy = hierarchies[dim]
            if level >= hierarchy.top_level:
                self._sets[dim].add(hierarchy.all_id)
            else:
                self._sets[dim].add(record.value_at_level(dim, level))

    def add_mds(self, other, hierarchies):
        """Extend the MDS to cover ``other`` (levels must be <= ours)."""
        self._touch()
        for dim, level in enumerate(self._levels):
            self._sets[dim].update(
                other.adapted_set(dim, level, hierarchies[dim])
            )

    def update_values(self, dim, values):
        """Add ``values`` to dimension ``dim`` (they must live at its level).

        The version-bumping way to grow one dimension's set; callers that
        previously mutated ``value_set(dim)`` in place must use this so the
        adaptation memo notices the change.
        """
        self._touch()
        self._sets[dim].update(values)

    def clear_dimension(self, dim):
        """Empty dimension ``dim``'s value set (level is kept)."""
        self._touch()
        self._sets[dim].clear()

    def refine_dimension(self, dim, values, level):
        """Replace one dimension by a more specific description.

        Used when a hierarchy split descends a concept level past this
        MDS's granularity: the caller collected the exact value set at
        the deeper ``level`` and installs it here, keeping the invariant
        that a node's levels dominate its children's.
        """
        if level > self._levels[dim]:
            raise MdsError(
                "refinement must not raise the level (dim %d: %d -> %d)"
                % (dim, self._levels[dim], level)
            )
        self._touch()
        self._sets[dim] = set(values)
        self._levels[dim] = level

    # ------------------------------------------------------------------
    # level adaptation
    # ------------------------------------------------------------------

    def adapted_set(self, dim, target_level, hierarchy):
        """This dimension's value set lifted to ``target_level``.

        Only upward adaptation is defined: lifting replaces each value by
        its ancestor at the target level.  Requesting a level *below* the
        stored one raises :class:`MdsError` — descending is not an MDS
        operation (it would require enumerating descendants and is handled
        separately by :func:`contains` where exactness demands it).

        Results are memoized per ``(version, dim, target_level)`` while
        :func:`caches_enabled` is on; a cached result is a frozenset shared
        between callers, so it must not be mutated.  Every mutator bumps the
        version and drops the memo, keeping the cache semantically
        invisible.
        """
        own_level = self._levels[dim]
        if target_level == own_level:
            return set(self._sets[dim])
        if target_level < own_level:
            raise MdsError(
                "cannot adapt dimension %d downwards (level %d -> %d)"
                % (dim, own_level, target_level)
            )
        if not hotpath.enabled():
            return {
                hierarchy.ancestor(value, target_level)
                for value in self._sets[dim]
            }
        key = (self._version, dim, target_level)
        cached = self._adapt_cache.get(key)
        if cached is None:
            cached = frozenset(
                hierarchy.ancestor(value, target_level)
                for value in self._sets[dim]
            )
            self._adapt_cache[key] = cached
        return cached

    def adapted_to(self, levels, hierarchies):
        """A copy of this MDS with every dimension lifted to ``levels``."""
        sets = [
            self.adapted_set(dim, level, hierarchies[dim])
            for dim, level in enumerate(levels)
        ]
        return MDS(sets, levels)

    # ------------------------------------------------------------------
    # value semantics
    # ------------------------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, MDS):
            return NotImplemented
        return self._levels == other._levels and self._sets == other._sets

    def __hash__(self):
        return hash(self.entries)

    def __repr__(self):
        dims = []
        for s, lvl in zip(self._sets, self._levels):
            dims.append("L%d:{%s}" % (lvl, ",".join(str(v) for v in sorted(s))))
        return "MDS(%s)" % "; ".join(dims)


# ----------------------------------------------------------------------
# binary operations (Definition 4), with automatic upward adaptation
# ----------------------------------------------------------------------


def _comparable_sets(m, n, dim, hierarchies):
    """Value sets of dimension ``dim`` of both MDSs, lifted to a common level."""
    level_m = m.level(dim)
    level_n = n.level(dim)
    if level_m == level_n:
        return m.value_set(dim), n.value_set(dim)
    if level_m < level_n:
        return m.adapted_set(dim, level_n, hierarchies[dim]), n.value_set(dim)
    return m.value_set(dim), n.adapted_set(dim, level_m, hierarchies[dim])


def overlap(m, n, hierarchies):
    """``overlap(M, N) = prod_i |M_i ∩ N_i|`` after level adaptation."""
    product = 1
    for dim in range(m.n_dimensions):
        set_m, set_n = _comparable_sets(m, n, dim, hierarchies)
        common = len(set_m & set_n)
        if common == 0:
            return 0
        product *= common
    return product


def overlaps(m, n, hierarchies):
    """True when the (level-adapted) overlap is non-empty.

    Cheaper than :func:`overlap` thanks to per-dimension early exit; a
    True result is a *may overlap* because upward adaptation loses
    precision (the caller recurses to resolve it).
    """
    for dim in range(m.n_dimensions):
        set_m, set_n = _comparable_sets(m, n, dim, hierarchies)
        if set_m.isdisjoint(set_n):
            return False
    return True


def extension(m, n, hierarchies):
    """``extension(M, N) = prod_i |M_i ∪ N_i|`` after level adaptation."""
    product = 1
    for dim in range(m.n_dimensions):
        set_m, set_n = _comparable_sets(m, n, dim, hierarchies)
        product *= len(set_m | set_n)
    return product


def union_cardinality(m, n, dim, hierarchies):
    """``|M_i ∪ N_i|`` for a single dimension after level adaptation."""
    set_m, set_n = _comparable_sets(m, n, dim, hierarchies)
    return len(set_m | set_n)


def contains(container, contained, hierarchies):
    """Exact containment test: is every cell of ``contained`` inside?

    Definition 4's *contains* assumes the container's levels dominate.  The
    range-query algorithm, however, also meets the inverse situation (a
    query phrased at a lower level than a directory entry); in that case
    the entry is contained only if *all* descendants of its values at the
    query's level lie in the query's set.  Handling both directions here
    keeps stored-aggregate usage provably exact.
    """
    for dim in range(container.n_dimensions):
        level_out = container.level(dim)
        level_in = contained.level(dim)
        hierarchy = hierarchies[dim]
        outer = container.value_set(dim)
        if level_out >= level_in:
            for value in contained.value_set(dim):
                if hierarchy.ancestor(value, level_out) not in outer:
                    return False
        else:
            for value in contained.value_set(dim):
                if not hierarchy.descendants_at_level(value, level_out) <= outer:
                    return False
    return True


def classify(range_mds, entry_mds, hierarchies, check_containment=True):
    """Fused overlap/containment test: one adaptation pass per dimension.

    Returns :data:`DISJOINT`, :data:`PARTIAL` or :data:`CONTAINED`
    (``entry_mds`` inside ``range_mds``), with the same semantics as the
    composite ``overlaps(...)`` → ``contains(range, entry)`` call pair the
    query traversals used to make — but each dimension is adapted exactly
    once, with early exit as soon as one dimension is disjoint.  Passing
    ``check_containment=False`` skips the containment half entirely (the
    caller only wants the overlap signal) and never returns CONTAINED.
    """
    contained = check_containment
    for dim in range(range_mds.n_dimensions):
        level_r = range_mds.level(dim)
        level_e = entry_mds.level(dim)
        hierarchy = hierarchies[dim]
        range_set = range_mds.value_set(dim)
        entry_set = entry_mds.value_set(dim)
        if level_r == level_e:
            if range_set.isdisjoint(entry_set):
                return DISJOINT
            if contained and not entry_set <= range_set:
                contained = False
        elif level_r > level_e:
            lifted = entry_mds.adapted_set(dim, level_r, hierarchy)
            if range_set.isdisjoint(lifted):
                return DISJOINT
            if contained and not lifted <= range_set:
                contained = False
        else:
            lifted_range = range_mds.adapted_set(dim, level_e, hierarchy)
            if lifted_range.isdisjoint(entry_set):
                return DISJOINT
            if contained:
                for value in entry_set:
                    if not hierarchy.descendants_at_level(
                        value, level_r
                    ) <= range_set:
                        contained = False
                        break
    return CONTAINED if contained else PARTIAL


def covers_record(mds, record, hierarchies):
    """Coverage test of Definition 3: does ``mds`` describe ``record``?"""
    for dim in range(mds.n_dimensions):
        level = mds.level(dim)
        hierarchy = hierarchies[dim]
        if level >= hierarchy.top_level:
            value = hierarchy.all_id
        else:
            value = record.value_at_level(dim, level)
        if value not in mds.value_set(dim):
            return False
    return True


def operation_cost(m, n):
    """CPU work units of one binary MDS operation (for the cost model).

    Models hash-set intersection: per dimension, iterate the smaller side
    and probe the larger one — one unit per probed value, plus a unit per
    dimension of bookkeeping.  Large query MDSs still make overlap
    computations expensive (the paper's observation about 25 % selectivity
    queries paying "very expensive computations"), but only where both
    operands are actually large.
    """
    units = m.n_dimensions
    for dim in range(m.n_dimensions):
        units += min(m.cardinality(dim), n.cardinality(dim))
    return units
