"""Setup shim for environments without the `wheel` package.

`pip install -e .` requires PEP 660 editable-wheel support; fully offline
environments without `wheel` can use `python setup.py develop` instead.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
