"""Extension experiments: motivation, static views, bulk load, hybrid.

Each prints its paper-style table (so `pytest benchmarks/
--benchmark-only` regenerates every experiment in one run) and asserts
the qualitative claims recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.aggview.advisor import recommend_views
from repro.aggview.hybrid import HybridWarehouse
from repro.bench.aggview_bench import run_aggview
from repro.bench.bulkload_bench import run_bulkload
from repro.bench.motivation import run_motivation
from repro.bench.reporting import format_table
from repro.core.bulkload import bulk_load


@pytest.mark.benchmark(group="ext-motivation")
def test_motivation_table(benchmark, capsys):
    rows = benchmark.pedantic(
        lambda: run_motivation(n_updates=1500, query_every=50, windows=3),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_table(
            ("regime", "mean staleness", "max staleness", "downtime [s]",
             "downtime sim [s]", "update wall [s]", "query wall [s]"),
            rows,
            title="Motivation: dynamic DC-tree vs bulk-updated warehouse",
        ))
    dynamic, batch = rows
    assert dynamic[1] == 0 and dynamic[4] == 0
    assert batch[1] > 0 and batch[4] > 0


@pytest.mark.benchmark(group="ext-aggview")
def test_aggview_table(benchmark, capsys):
    rows = benchmark.pedantic(
        lambda: run_aggview(n_records=1500, n_queries=30),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_table(
            ("backend", "answerable", "sim [s]/answerable query",
             "sim [s]/update"),
            rows,
            title="Static materialization vs DC-tree",
        ))
    tree_row, view_row = rows
    assert view_row[1] != "100%"
    assert view_row[3] > tree_row[3]  # one update costs the view more


@pytest.mark.benchmark(group="ext-bulkload")
def test_bulkload_table(benchmark, capsys):
    rows = benchmark.pedantic(
        lambda: run_bulkload(n_records=3000, n_queries=20),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_table(
            ("build method", "build wall [s]", "build sim [s]",
             "query sim [s]", "misses/query", "height", "pages"),
            rows,
            title="Insertion vs bottom-up bulk build",
        ))
    inserted, bulk = rows
    assert bulk[2] < inserted[2]  # bulk build far cheaper in sim time
    assert bulk[4] <= inserted[4] * 1.5  # query quality comparable+


@pytest.mark.benchmark(group="ext-hybrid")
def test_hybrid_router(benchmark, capsys):
    """View-covered queries get cheaper through the hybrid router."""
    from repro import TPCDGenerator, Warehouse, make_tpcd_schema
    from repro.workload.queries import QueryGenerator

    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=0, scale_records=2000)
    records = generator.generate(2000)
    warehouse = Warehouse.wrap(bulk_load(schema, records))
    workload = list(QueryGenerator(schema, 0.2, seed=1).queries(40))
    picks = recommend_views(
        schema, workload, cell_budget=5000, k=2, records=records
    )
    hybrid = HybridWarehouse(warehouse, [p.levels for p in picks])

    def run_workload():
        for query in workload:
            hybrid.execute(query)

    benchmark(run_workload)
    with capsys.disabled():
        print()
        print(
            "hybrid router: %.0f%% of queries served by %d views (%r)"
            % (hybrid.stats.view_fraction * 100, len(hybrid.views),
               [list(p.levels) for p in picks])
        )
    assert hybrid.stats.via_view > 0
