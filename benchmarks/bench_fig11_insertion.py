"""Figure 11: insertion time (DC-tree vs X-tree, plus per-record cost).

Timing benchmarks measure single-record insertion into a pre-built index
of BENCH_RECORDS records (the steady-state cost an always-on warehouse
pays per update); the printed tables regenerate Fig. 11(a)/(b) from the
shared sweep.
"""

from __future__ import annotations

import pytest

from repro import DCTree, TPCDGenerator, XTree, make_tpcd_schema
from repro.bench.fig11 import fig11a_rows, fig11b_rows
from repro.bench.reporting import format_table


def _insert_benchmark(benchmark, index_factory):
    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=0, scale_records=2000)
    index = index_factory(schema)
    for record in generator.records(2000):
        index.insert(record)
    fresh = iter(generator.records(100000))

    def insert_one():
        index.insert(next(fresh))

    benchmark(insert_one)


@pytest.mark.benchmark(group="fig11-insert-one")
def test_fig11_dc_tree_single_insert(benchmark):
    """Steady-state single-record insert into a 2k-record DC-tree."""
    _insert_benchmark(benchmark, lambda schema: DCTree(schema))


@pytest.mark.benchmark(group="fig11-insert-one")
def test_fig11_x_tree_single_insert(benchmark):
    """Steady-state single-record insert into a 2k-record X-tree."""
    _insert_benchmark(benchmark, lambda schema: XTree(schema))


@pytest.mark.benchmark(group="fig11-bulk-build")
def test_fig11_dc_tree_build_1000(benchmark):
    """Total insertion time for 1000 records (Fig. 11a, one point)."""
    schema = make_tpcd_schema()
    records = TPCDGenerator(schema, seed=1, scale_records=1000).generate(1000)

    def build():
        tree = DCTree(schema)
        for record in records:
            tree.insert(record)
        return tree

    benchmark.pedantic(build, rounds=3, iterations=1)


@pytest.mark.benchmark(group="fig11-bulk-build")
def test_fig11_x_tree_build_1000(benchmark):
    schema = make_tpcd_schema()
    records = TPCDGenerator(schema, seed=1, scale_records=1000).generate(1000)

    def build():
        tree = XTree(schema)
        for record in records:
            tree.insert(record)
        return tree

    benchmark.pedantic(build, rounds=3, iterations=1)


@pytest.mark.benchmark(group="fig11-tables")
def test_fig11_tables(benchmark, paper_sweep, capsys):
    """Print the Fig. 11(a)/(b) tables and assert the paper's shapes."""
    rows_a = benchmark(lambda: fig11a_rows(paper_sweep))
    rows_b = fig11b_rows(paper_sweep)
    with capsys.disabled():
        print()
        print(format_table(
            ("records", "DC-tree [s]", "X-tree [s]",
             "DC-tree sim [s]", "X-tree sim [s]"),
            rows_a,
            title="Figure 11(a): total insertion time (cumulative)",
        ))
        print()
        print(format_table(
            ("records", "DC-tree per-record [s]"),
            rows_b,
            title="Figure 11(b): DC-tree insertion time per data record",
        ))

    # Shape: insertion time grows with the data set for both trees ...
    assert rows_a[-1][1] > rows_a[0][1]
    assert rows_a[-1][2] > rows_a[0][2]
    # ... and the X-tree's simulated insert cost stays below the DC-tree's
    # (it maintains no concept hierarchies or materialized measures).
    assert rows_a[-1][4] < rows_a[-1][3]
    # Fig. 11(b): per-record insertion stays small (well under 0.25 s even
    # in simulated 1999-hardware terms the paper reports).
    for _n, per_record in rows_b:
        assert per_record < 0.25
