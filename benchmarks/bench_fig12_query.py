"""Figure 12: average time per range query.

Timing benchmarks run the frozen query batches against each pre-built
backend (groups ``fig12-sel-1pct`` / ``-5pct`` / ``-25pct`` mirror panels
(a)-(c); the scan joins the 25 % group for panel (d)).  The printed tables
regenerate all four panels from the shared sweep and assert the paper's
winner at every point.
"""

from __future__ import annotations

import pytest

from repro.bench.fig12 import PANELS, fig12_rows, selectivity_profile
from repro.bench.harness import execute_query
from repro.bench.reporting import format_table


def _run_batch(backend_name, index, queries):
    def batch():
        for query in queries:
            execute_query(backend_name, index, query)

    return batch


@pytest.mark.benchmark(group="fig12-sel-1pct")
def test_fig12a_dc_tree(benchmark, built_dc_tree, query_batches):
    benchmark(_run_batch("dc-tree", built_dc_tree, query_batches[0.01]))


@pytest.mark.benchmark(group="fig12-sel-1pct")
def test_fig12a_x_tree(benchmark, built_x_tree, query_batches):
    benchmark(_run_batch("x-tree", built_x_tree, query_batches[0.01]))


@pytest.mark.benchmark(group="fig12-sel-5pct")
def test_fig12b_dc_tree(benchmark, built_dc_tree, query_batches):
    benchmark(_run_batch("dc-tree", built_dc_tree, query_batches[0.05]))


@pytest.mark.benchmark(group="fig12-sel-5pct")
def test_fig12b_x_tree(benchmark, built_x_tree, query_batches):
    benchmark(_run_batch("x-tree", built_x_tree, query_batches[0.05]))


@pytest.mark.benchmark(group="fig12-sel-25pct")
def test_fig12c_dc_tree(benchmark, built_dc_tree, query_batches):
    benchmark(_run_batch("dc-tree", built_dc_tree, query_batches[0.25]))


@pytest.mark.benchmark(group="fig12-sel-25pct")
def test_fig12c_x_tree(benchmark, built_x_tree, query_batches):
    benchmark(_run_batch("x-tree", built_x_tree, query_batches[0.25]))


@pytest.mark.benchmark(group="fig12-sel-25pct")
def test_fig12d_sequential_scan(benchmark, built_scan, query_batches):
    benchmark(_run_batch("scan", built_scan, query_batches[0.25]))


@pytest.mark.benchmark(group="fig12-tables")
def test_fig12_tables(benchmark, paper_sweep, capsys):
    """Print panels (a)-(d) and assert the DC-tree wins everywhere."""
    benchmark(lambda: fig12_rows(paper_sweep, 0.25, "scan"))
    with capsys.disabled():
        for panel, (selectivity, competitor) in sorted(PANELS.items()):
            label = "sequential scan" if competitor == "scan" else "X-tree"
            rows = fig12_rows(paper_sweep, selectivity, competitor)
            print()
            print(format_table(
                ("records", "DC sim [s]", "%s sim [s]" % label,
                 "sim speedup", "DC wall [s]", "%s wall [s]" % label,
                 "wall speedup"),
                rows,
                title="Figure 12(%s): selectivity %.0f%%, DC-tree vs %s"
                % (panel, selectivity * 100, label),
            ))

    # Shape assertions: the DC-tree wins every panel at the largest size
    # in simulated (I/O-weighted) time, as in the paper.
    for _panel, (selectivity, competitor) in PANELS.items():
        rows = fig12_rows(paper_sweep, selectivity, competitor)
        n, dc_sim, other_sim = rows[-1][0], rows[-1][1], rows[-1][2]
        assert dc_sim < other_sim, (
            "DC-tree lost at selectivity %s vs %s (n=%d)"
            % (selectivity, competitor, n)
        )

    # Against the X-tree the speed-up is largest at low selectivity and
    # smallest at 25 % (the DC-tree's worst case, §5.3).
    last = paper_sweep.checkpoints[-1]

    def xtree_speedup(selectivity):
        dc = last.queries[("dc-tree", selectivity)].simulated_seconds
        xt = last.queries[("x-tree", selectivity)].simulated_seconds
        return xt / dc

    assert xtree_speedup(0.01) > xtree_speedup(0.25)

    profile = selectivity_profile(paper_sweep)
    # Absolute per-query cost grows with selectivity for the DC-tree in
    # our runs (the paper saw a 5 % sweet spot; see EXPERIMENTS.md).
    assert profile[0.01] <= profile[0.25]
