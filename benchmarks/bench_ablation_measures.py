"""Ablation `abl-measures`: the value of materialized aggregates.

The same DC-tree answers the same query batch twice: once using the
measure summaries stored in directory entries (containment short-cut of
Fig. 7) and once forced to descend to the data nodes.  Quantifies the
contribution of the paper's materialization idea in isolation.
"""

from __future__ import annotations

import pytest

from repro.bench.ablations import ablation_measures
from repro.bench.reporting import format_table


def _query_batch(tree, queries):
    def run():
        for query in queries:
            tree.range_query(query.mds)

    return run


@pytest.mark.benchmark(group="abl-measures")
def test_queries_with_aggregates(benchmark, built_dc_tree, query_batches):
    built_dc_tree.config.use_materialized_aggregates = True
    benchmark(_query_batch(built_dc_tree, query_batches[0.25]))


@pytest.mark.benchmark(group="abl-measures")
def test_queries_without_aggregates(benchmark, built_dc_tree, query_batches):
    built_dc_tree.config.use_materialized_aggregates = False
    try:
        benchmark(_query_batch(built_dc_tree, query_batches[0.25]))
    finally:
        built_dc_tree.config.use_materialized_aggregates = True


@pytest.mark.benchmark(group="abl-measures-table")
def test_ablation_measures_table(benchmark, capsys):
    rows = benchmark.pedantic(
        lambda: ablation_measures(
            n_records=2000, n_queries=20, selectivity=0.25
        ),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_table(
            ("workload", "aggregates", "query wall [s]", "query sim [s]",
             "nodes/query"),
            rows,
            title="Ablation: materialized measures on vs off (same tree)",
        ))
    for on, off in (rows[0:2], rows[2:4]):
        # Disabling the aggregates can never reduce the nodes a query reads.
        assert off[4] >= on[4]
    # On the drill-down workload the aggregates save work (weakly at
    # bench scale; see EXPERIMENTS.md for the discussion).
    drill_on, drill_off = rows[2], rows[3]
    assert drill_off[4] >= drill_on[4]
