"""Ablation `abl-capacity`: node capacity (page size) sweep.

Larger nodes pack more entries per page (fewer, fatter pages - good for
scans of the tree) but coarsen the pruning granularity.  This bench
sweeps directory/leaf capacities and reports build and query costs.
"""

from __future__ import annotations

import pytest

from repro import DCTree, DCTreeConfig, TPCDGenerator, make_tpcd_schema
from repro.bench.ablations import ablation_capacity
from repro.bench.reporting import format_table

CAPACITIES = ((8, 16), (16, 64), (32, 128))


def _build(dir_capacity, leaf_capacity):
    schema = make_tpcd_schema()
    records = TPCDGenerator(schema, seed=0, scale_records=1500).generate(1500)

    def build():
        tree = DCTree(
            schema,
            config=DCTreeConfig(
                dir_capacity=dir_capacity, leaf_capacity=leaf_capacity
            ),
        )
        for record in records:
            tree.insert(record)
        return tree

    return build


@pytest.mark.benchmark(group="abl-capacity-build")
@pytest.mark.parametrize("dir_capacity,leaf_capacity", CAPACITIES)
def test_build_at_capacity(benchmark, dir_capacity, leaf_capacity):
    tree = benchmark.pedantic(
        _build(dir_capacity, leaf_capacity), rounds=2, iterations=1
    )
    tree.check_invariants()


@pytest.mark.benchmark(group="abl-capacity-table")
def test_ablation_capacity_table(benchmark, capsys):
    rows = benchmark.pedantic(
        lambda: ablation_capacity(
            n_records=2000, n_queries=20, capacities=CAPACITIES
        ),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_table(
            ("dir/leaf capacity", "build [s]", "query wall [s]",
             "query sim [s]", "nodes/query", "height"),
            rows,
            title="Ablation: node capacity sweep (DC-tree)",
        ))
    # Bigger nodes -> fewer nodes per query (coarser tree).
    assert rows[-1][4] <= rows[0][4] * 1.5
