"""Persistence and flat-file I/O benchmarks.

Operational costs a deployment cares about: snapshotting a warehouse,
resuming from a snapshot (structure-preserving, no re-splits), and
reading/writing the flat insert file of §5.1.
"""

from __future__ import annotations

import pytest

from repro import TPCDGenerator, Warehouse, make_tpcd_schema
from repro.core.bulkload import bulk_load
from repro.persist import warehouse_from_dict, warehouse_to_dict
from repro.tpcd.flatfile import read_flatfile, write_flatfile

BENCH_RECORDS = 2000


@pytest.fixture(scope="module")
def loaded_warehouse():
    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=0, scale_records=BENCH_RECORDS)
    return Warehouse.wrap(
        bulk_load(schema, generator.generate(BENCH_RECORDS))
    )


@pytest.mark.benchmark(group="persist")
def test_snapshot_warehouse(benchmark, loaded_warehouse):
    data = benchmark(lambda: warehouse_to_dict(loaded_warehouse))
    assert data["meta"]["records"] == BENCH_RECORDS


@pytest.mark.benchmark(group="persist")
def test_resume_warehouse(benchmark, loaded_warehouse):
    data = warehouse_to_dict(loaded_warehouse)
    restored = benchmark(lambda: warehouse_from_dict(data))
    assert len(restored) == BENCH_RECORDS
    restored.index.check_invariants()


@pytest.mark.benchmark(group="flatfile")
def test_write_flatfile(benchmark, loaded_warehouse, tmp_path_factory):
    root = tmp_path_factory.mktemp("flat")
    records = list(loaded_warehouse.index.records())

    counter = iter(range(10**6))

    def write():
        path = root / ("out%d.tbl" % next(counter))
        return write_flatfile(path, loaded_warehouse.schema, records)

    assert benchmark(write) == BENCH_RECORDS


@pytest.mark.benchmark(group="flatfile")
def test_read_flatfile(benchmark, loaded_warehouse, tmp_path_factory):
    root = tmp_path_factory.mktemp("flat")
    path = root / "in.tbl"
    write_flatfile(
        path, loaded_warehouse.schema,
        loaded_warehouse.index.records(),
    )

    def read():
        _schema, records = read_flatfile(path)
        return records

    assert len(benchmark(read)) == BENCH_RECORDS
