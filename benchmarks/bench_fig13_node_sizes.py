"""Figure 13: DC-tree node sizes of the levels below the root.

The timing benchmark measures the statistics collection itself (cheap);
the substance is the printed table and its shape assertions: supernodes
accumulate in the directory level directly below the root and its average
entry count grows with the data set, while deeper levels stay near the
regular node capacity — the effect §5.3 discusses and leaves to future
work.
"""

from __future__ import annotations

import pytest

from repro.bench.fig13 import fig13_rows
from repro.bench.reporting import format_table
from repro.core.stats import collect_stats


@pytest.mark.benchmark(group="fig13")
def test_fig13_collect_stats(benchmark, built_dc_tree):
    stats = benchmark(lambda: collect_stats(built_dc_tree))
    assert stats.n_records == len(built_dc_tree)


@pytest.mark.benchmark(group="fig13")
def test_fig13_table(benchmark, paper_sweep, capsys):
    rows = benchmark(lambda: fig13_rows(paper_sweep))
    with capsys.disabled():
        print()
        print(format_table(
            ("records", "highest level [entries]", "2nd highest [entries]",
             "supernodes", "tree height"),
            rows,
            title="Figure 13: average node sizes per level below the root",
        ))

    # The supernode level's average entry count grows with the data set.
    growing_level = [row[1] for row in rows]
    assert growing_level[-1] > growing_level[0]
    # Supernodes exist and multiply (the paper's central Fig. 13 point).
    supernodes = [row[3] for row in rows]
    assert supernodes[-1] >= supernodes[0] >= 1
    # The level below it (the data nodes here) stays near its capacity
    # instead of growing with the data set.
    stable_level = [row[2] for row in rows]
    assert stable_level[-1] < 1.5 * max(stable_level[0], 1.0)
