"""Shared fixtures for the benchmark suite.

The benchmark files time the hot operations with pytest-benchmark AND
print the paper-style result tables (Figures 11-13) computed from one
shared sweep.  Scales are reduced from the paper's 10k-30k so the whole
suite runs in a few minutes; run ``python -m repro.bench all`` for the
full-scale reproduction (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro import (
    DCTree,
    FlatTable,
    TPCDGenerator,
    XTree,
    make_tpcd_schema,
)
from repro.bench.harness import run_combined_sweep
from repro.workload.queries import QueryGenerator

#: Records in the timing fixtures.
BENCH_RECORDS = 2000
#: Checkpoints of the shared shape sweep.
SWEEP_SIZES = (1000, 2000, 4000)
#: Queries per (backend, selectivity) measurement in the shape sweep.
SWEEP_QUERIES = 20


@pytest.fixture(scope="session")
def tpcd_dataset():
    """One shared schema + record list for all timing benchmarks."""
    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=0, scale_records=BENCH_RECORDS)
    return schema, generator.generate(BENCH_RECORDS)


def _build(index, records):
    for record in records:
        index.insert(record)
    return index


@pytest.fixture(scope="session")
def built_dc_tree(tpcd_dataset):
    schema, records = tpcd_dataset
    return _build(DCTree(schema), records)


@pytest.fixture(scope="session")
def built_x_tree(tpcd_dataset):
    schema, records = tpcd_dataset
    return _build(XTree(schema), records)


@pytest.fixture(scope="session")
def built_scan(tpcd_dataset):
    schema, records = tpcd_dataset
    return _build(FlatTable(schema), records)


@pytest.fixture(scope="session")
def query_batches(tpcd_dataset):
    """Frozen query batches per selectivity (identical across backends)."""
    schema, _records = tpcd_dataset
    return {
        selectivity: list(
            QueryGenerator(schema, selectivity, seed=42).queries(20)
        )
        for selectivity in (0.01, 0.05, 0.25)
    }


@pytest.fixture(scope="session")
def paper_sweep():
    """The shared shape sweep behind the printed Figure tables."""
    return run_combined_sweep(
        sizes=SWEEP_SIZES, n_queries=SWEEP_QUERIES, seed=0
    )
