"""Ablation `abl-split`: quadratic hierarchy split vs linear variant.

The paper's future work calls for "alternative split algorithms ... which
have less than quadratic cost but nevertheless yield reasonably good
splits".  The linear variant picks seeds in one pass and assigns entries
in input order; this bench compares build cost and the query quality of
the resulting trees.
"""

from __future__ import annotations

import pytest

from repro import DCTree, DCTreeConfig, TPCDGenerator, make_tpcd_schema
from repro.bench.ablations import ablation_split
from repro.bench.reporting import format_table


def _build(split_algorithm):
    schema = make_tpcd_schema()
    records = TPCDGenerator(schema, seed=0, scale_records=1500).generate(1500)

    def build():
        tree = DCTree(
            schema, config=DCTreeConfig(split_algorithm=split_algorithm)
        )
        for record in records:
            tree.insert(record)
        return tree

    return build


@pytest.mark.benchmark(group="abl-split-build")
def test_build_with_quadratic_split(benchmark):
    tree = benchmark.pedantic(_build("quadratic"), rounds=3, iterations=1)
    tree.check_invariants()


@pytest.mark.benchmark(group="abl-split-build")
def test_build_with_linear_split(benchmark):
    tree = benchmark.pedantic(_build("linear"), rounds=3, iterations=1)
    tree.check_invariants()


@pytest.mark.benchmark(group="abl-split-table")
def test_ablation_split_table(benchmark, capsys):
    rows = benchmark.pedantic(
        lambda: ablation_split(n_records=2000, n_queries=20),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_table(
            ("split", "build [s]", "query wall [s]", "query sim [s]",
             "nodes/query", "height"),
            rows,
            title="Ablation: quadratic vs linear hierarchy split",
        ))
    quadratic, linear = rows
    # The linear split builds faster ...
    assert linear[1] < quadratic[1]
    # ... while query quality stays within 2.5x of the quadratic split
    # ("reasonably good splits").
    assert linear[3] < 2.5 * quadratic[3]
