"""Tests for the SQL-ish query language."""

import math

import pytest

from repro import Warehouse
from repro.errors import QueryError
from repro.query import QuerySpec, execute, parse
from tests.conftest import TOY_ROWS, build_toy_schema


@pytest.fixture
def warehouse():
    warehouse = Warehouse(build_toy_schema())
    for country, city, color, sales in TOY_ROWS:
        warehouse.insert(((country, city), (color,)), (sales,))
    return warehouse


class TestParse:
    def test_plain_aggregate(self):
        spec = parse("SELECT SUM(Sales)")
        assert spec.op == "sum"
        assert spec.measure == "Sales"
        assert spec.where == {}
        assert spec.group_by is None

    def test_count_star(self):
        spec = parse("SELECT COUNT(*)")
        assert spec.op == "count"
        assert spec.measure is None

    def test_star_only_for_count(self):
        with pytest.raises(QueryError):
            parse("SELECT SUM(*)")

    def test_keywords_case_insensitive(self):
        spec = parse("select Avg(Sales) where Geo.Country = 'DE'")
        assert spec.op == "avg"
        assert spec.where == {"Geo": ("Country", ["DE"])}

    def test_in_list(self):
        spec = parse(
            "SELECT SUM(Sales) WHERE Geo.Country IN ('DE', 'FR')"
        )
        assert spec.where == {"Geo": ("Country", ["DE", "FR"])}

    def test_equals_shorthand(self):
        spec = parse("SELECT SUM(Sales) WHERE Color.Color = red")
        assert spec.where == {"Color": ("Color", ["red"])}

    def test_and_conjunction(self):
        spec = parse(
            "SELECT SUM(Sales) WHERE Geo.Country = 'DE' "
            "AND Color.Color IN ('red', 'blue')"
        )
        assert spec.where == {
            "Geo": ("Country", ["DE"]),
            "Color": ("Color", ["red", "blue"]),
        }

    def test_group_by(self):
        spec = parse("SELECT SUM(Sales) GROUP BY Geo.Country")
        assert spec.group_by == ("Geo", "Country")

    def test_full_query(self):
        spec = parse(
            "SELECT MAX(Sales) WHERE Color.Color = 'red' "
            "GROUP BY Geo.Country"
        )
        assert spec.op == "max"
        assert spec.group_by == ("Geo", "Country")

    def test_quoted_values_with_spaces(self):
        spec = parse(
            'SELECT SUM(Sales) WHERE Geo.Country IN ("NEW ZEALAND")'
        )
        assert spec.where == {"Geo": ("Country", ["NEW ZEALAND"])}

    def test_unknown_aggregate(self):
        with pytest.raises(QueryError):
            parse("SELECT MEDIAN(Sales)")

    def test_empty_query(self):
        with pytest.raises(QueryError):
            parse("   ")

    def test_unterminated_string(self):
        with pytest.raises(QueryError):
            parse("SELECT SUM(Sales) WHERE Geo.Country = 'DE")

    def test_trailing_garbage(self):
        with pytest.raises(QueryError):
            parse("SELECT SUM(Sales) LIMIT 5")

    def test_double_constraint_rejected(self):
        with pytest.raises(QueryError):
            parse(
                "SELECT SUM(Sales) WHERE Geo.Country = 'DE' "
                "AND Geo.City = 'Munich'"
            )

    def test_missing_comparison(self):
        with pytest.raises(QueryError):
            parse("SELECT SUM(Sales) WHERE Geo.Country")

    def test_repr(self):
        assert "sum" in repr(parse("SELECT SUM(Sales)"))
        assert isinstance(parse("SELECT SUM(Sales)"), QuerySpec)


class TestExecute:
    def test_total(self, warehouse):
        assert execute(warehouse, "SELECT SUM(Sales)") == 96.0

    def test_count_star(self, warehouse):
        assert execute(warehouse, "SELECT COUNT(*)") == len(TOY_ROWS)

    def test_where(self, warehouse):
        assert execute(
            warehouse, "SELECT SUM(Sales) WHERE Geo.Country = 'DE'"
        ) == 35.0

    def test_where_in(self, warehouse):
        assert execute(
            warehouse,
            "SELECT SUM(Sales) WHERE Geo.Country IN ('DE', 'FR')",
        ) == 45.0

    def test_conjunction(self, warehouse):
        assert execute(
            warehouse,
            "SELECT SUM(Sales) WHERE Geo.Country = 'DE' "
            "AND Color.Color = 'red'",
        ) == 15.0

    def test_avg(self, warehouse):
        assert math.isclose(
            execute(warehouse, "SELECT AVG(Sales) WHERE Geo.Country = 'FR'"),
            5.0,
        )

    def test_group_by(self, warehouse):
        groups = execute(
            warehouse, "SELECT SUM(Sales) GROUP BY Geo.Country"
        )
        assert groups == {"DE": 35.0, "FR": 10.0, "US": 51.0}

    def test_group_by_with_where(self, warehouse):
        groups = execute(
            warehouse,
            "SELECT COUNT(Sales) WHERE Color.Color = 'red' "
            "GROUP BY Geo.Country",
        )
        assert groups == {"DE": 2, "US": 1}

    def test_unknown_label_surfaces(self, warehouse):
        with pytest.raises(QueryError):
            execute(
                warehouse, "SELECT SUM(Sales) WHERE Geo.Country = 'XX'"
            )

    @pytest.mark.parametrize("backend", ["x-tree", "scan"])
    def test_other_backends(self, backend):
        other = Warehouse(build_toy_schema(), backend)
        for country, city, color, sales in TOY_ROWS:
            other.insert(((country, city), (color,)), (sales,))
        assert execute(
            other, "SELECT SUM(Sales) WHERE Geo.Country = 'US'"
        ) == 51.0
