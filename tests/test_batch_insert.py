"""Differential equivalence suite for batched insertion.

The batch-insert contract (see :meth:`repro.core.tree.DCTree.insert_batch`)
has two halves, and this program pins both down against serial insertion
on fixed-seed workloads:

* **Bit-identical semantics** — same query and group-by answers, same
  structure digest, same node-count/height/supernode statistics, same
  *read* counters (node accesses, buffer hits/misses): batching may not
  change what the index is or what it reads.
* **Amortized charging** — batched page writes and fold CPU are at most
  the serial charges (strictly below once any node is touched twice in a
  batch), because the write-through charge coalesces to once per touched
  node per batch.

Both halves are checked across all three backends (the X-tree falls back
to serial insertion inside ``Warehouse.insert_records``, where the
relationship holds with equality) and across batch sizes 1, a ragged 7,
the page capacity, and 10x the page capacity.
"""

from __future__ import annotations

import random

import pytest

from tests.conftest import build_toy_schema, toy_record

from repro import Warehouse
from repro.config import DCTreeConfig
from repro.core.debug import structure_digest
from repro.core.stats import collect_stats
from repro.core.tree import DCTree
from repro.errors import TreeError

#: Toy trees use capacity 4, so these are {1, ragged, page, 10x page}.
BATCH_SIZES = (1, 7, 4, 40)
CAPACITY = 4

BACKENDS = ("dc-tree", "x-tree", "scan")


def _workload_rows(n=150, seed=11):
    """Fixed-seed toy rows with enough repetition to split and supernode."""
    rng = random.Random(seed)
    countries = (
        ("DE", ("Munich", "Berlin", "Hamburg")),
        ("FR", ("Paris", "Lyon")),
        ("US", ("NYC", "Boston", "Austin")),
    )
    colors = ("red", "blue", "green")
    rows = []
    for index in range(n):
        country, cities = countries[rng.randrange(len(countries))]
        rows.append((country, rng.choice(cities), rng.choice(colors),
                     float(index % 17) + 0.5))
    return rows


def _query_battery(schema):
    """Aggregates that together cover partial/contained/disjoint paths."""
    return (
        ("sum", None),
        ("count", None),
        ("sum", {"Geo": ("Country", ["DE"])}),
        ("sum", {"Geo": ("City", ["Paris", "NYC"])}),
        ("min", {"Color": ("Color", ["red", "green"])}),
        ("max", {"Geo": ("Country", ["FR", "US"]),
                 "Color": ("Color", ["blue"])}),
        ("count", {"Geo": ("City", ["Hamburg"])}),
    )


def _build_pair(backend, schema):
    config = (
        DCTreeConfig(dir_capacity=CAPACITY, leaf_capacity=CAPACITY)
        if backend == "dc-tree" else None
    )
    serial = Warehouse(schema, backend, config)
    batched = Warehouse(schema, backend, config)
    return serial, batched


def _fill(serial, batched, schema, batch_size):
    records = [toy_record(schema, *row) for row in _workload_rows()]
    for record in records:
        serial.insert_record(record)
    for begin in range(0, len(records), batch_size):
        batched.insert_records(records[begin:begin + batch_size])
    return records


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("backend", BACKENDS)
class TestBatchSerialEquivalence:
    def test_identical_answers(self, backend, batch_size):
        schema = build_toy_schema()
        serial, batched = _build_pair(backend, schema)
        _fill(serial, batched, schema, batch_size)
        assert len(serial) == len(batched)
        for op, where in _query_battery(schema):
            assert serial.query(op, where=where) == \
                batched.query(op, where=where), (op, where)
        for level in ("Country", "City"):
            assert serial.group_by("Geo", level) == \
                batched.group_by("Geo", level)
        assert serial.group_by("Color", "Color") == \
            batched.group_by("Color", "Color")

    def test_identical_structure(self, backend, batch_size):
        schema = build_toy_schema()
        serial, batched = _build_pair(backend, schema)
        _fill(serial, batched, schema, batch_size)
        assert structure_digest(serial.index) == \
            structure_digest(batched.index)
        if backend == "scan":
            return
        stats_serial = collect_stats(serial.index)
        stats_batched = collect_stats(batched.index)
        assert stats_serial.n_nodes == stats_batched.n_nodes
        assert stats_serial.height == stats_batched.height
        assert stats_serial.n_supernodes == stats_batched.n_supernodes
        assert repr(stats_serial.levels) == repr(stats_batched.levels)

    def test_counter_relationship(self, backend, batch_size):
        """Reads identical; batched writes and fold CPU never exceed serial.

        The batch path replays the exact serial descent (same accesses in
        the same order, hence the same buffer-pool evolution) and only
        coalesces write-through charges, so reads must match bit-for-bit
        while writes/CPU shrink — down to equality for backends without a
        batch path (x-tree) or batches that never touch a node twice.
        """
        schema = build_toy_schema()
        serial, batched = _build_pair(backend, schema)
        _fill(serial, batched, schema, batch_size)
        stats_serial = serial.tracker.snapshot()
        stats_batched = batched.tracker.snapshot()
        assert stats_serial.node_accesses == stats_batched.node_accesses
        assert stats_serial.buffer_hits == stats_batched.buffer_hits
        assert stats_serial.buffer_misses == stats_batched.buffer_misses
        assert stats_batched.page_writes <= stats_serial.page_writes
        assert stats_batched.cpu_units <= stats_serial.cpu_units
        if backend == "x-tree":
            # Serial fallback: charges are exactly the serial charges.
            assert stats_batched.page_writes == stats_serial.page_writes
            assert stats_batched.cpu_units == stats_serial.cpu_units

    def test_amortization_kicks_in(self, backend, batch_size):
        """Batches above one record strictly beat serial write charges on
        the backends with a batch path (shared path nodes coalesce)."""
        if backend == "x-tree" or batch_size == 1:
            pytest.skip("no amortization expected")
        schema = build_toy_schema()
        serial, batched = _build_pair(backend, schema)
        _fill(serial, batched, schema, batch_size)
        assert batched.tracker.snapshot().page_writes < \
            serial.tracker.snapshot().page_writes


class TestTpcdDifferential:
    """The same contract on the realistic cube at the default capacities."""

    @pytest.mark.parametrize("batch_size", (64, 640))
    def test_batch_matches_serial(self, tpcd_schema, tpcd_records_500,
                                  batch_size):
        serial = DCTree(tpcd_schema)
        batched = DCTree(tpcd_schema)
        for record in tpcd_records_500:
            serial.insert(record)
        for begin in range(0, len(tpcd_records_500), batch_size):
            batched.insert_batch(tpcd_records_500[begin:begin + batch_size])
        serial.check_invariants()
        batched.check_invariants()
        assert structure_digest(serial) == structure_digest(batched)
        stats_serial = serial.tracker.snapshot()
        stats_batched = batched.tracker.snapshot()
        assert stats_serial.node_accesses == stats_batched.node_accesses
        assert stats_batched.page_writes < stats_serial.page_writes


class TestBatchSemantics:
    def _tree(self, schema, **overrides):
        config = dict(dir_capacity=CAPACITY, leaf_capacity=CAPACITY)
        config.update(overrides)
        return DCTree(schema, config=DCTreeConfig(**config))

    def _records(self, schema, n=20):
        return [toy_record(schema, *row) for row in _workload_rows(n)]

    def test_single_version_bump(self, toy_schema):
        tree = self._tree(toy_schema)
        before = tree.tree_version
        tree.insert_batch(self._records(toy_schema, 20))
        assert tree.tree_version == before + 1

    def test_empty_batch_is_free(self, toy_schema):
        tree = self._tree(toy_schema)
        before = tree.tree_version
        assert tree.insert_batch([]) == 0
        assert tree.tree_version == before
        assert tree.tracker.snapshot().page_writes == 0

    def test_returns_count_and_len(self, toy_schema):
        tree = self._tree(toy_schema)
        records = self._records(toy_schema, 13)
        assert tree.insert_batch(records) == 13
        assert len(tree) == 13

    def test_nested_batch_rejected(self, toy_schema):
        tree = self._tree(toy_schema)
        tree._batch = object()  # simulate an open batch
        with pytest.raises(TreeError):
            tree.insert_batch(self._records(toy_schema, 2))
        tree._batch = None

    def test_result_cache_fresh_after_batch(self, toy_schema):
        """One bump per batch still invalidates every memoized answer."""
        tree = self._tree(toy_schema, use_result_cache=True)
        warehouse = Warehouse.wrap(tree)
        records = self._records(toy_schema, 30)
        warehouse.insert_records(records[:20])
        first = warehouse.query("sum")
        again = warehouse.query("sum")
        assert again == first  # served (possibly cached) consistently
        warehouse.insert_records(records[20:])
        fresh = warehouse.query("sum")
        expected = sum(record.measures[0] for record in records)
        assert fresh == pytest.approx(expected)
        assert fresh != first

    def test_sink_with_batch_support_gets_one_call(self, toy_schema):
        calls = []

        class Sink:
            def record_insert(self, record):
                calls.append(("insert", record))

            def record_insert_batch(self, records):
                calls.append(("batch", list(records)))

        tree = self._tree(toy_schema)
        tree.set_mutation_sink(Sink())
        records = self._records(toy_schema, 6)
        tree.insert_batch(records)
        assert calls == [("batch", records)]

    def test_sink_without_batch_support_falls_back(self, toy_schema):
        calls = []

        class Sink:
            def record_insert(self, record):
                calls.append(record)

        tree = self._tree(toy_schema)
        tree.set_mutation_sink(Sink())
        records = self._records(toy_schema, 6)
        tree.insert_batch(records)
        assert calls == records

    def test_batch_metrics_and_span(self, toy_schema):
        tree = self._tree(toy_schema, observability=True)
        tree.insert_batch(self._records(toy_schema, 8))
        tree.insert_batch(self._records(toy_schema, 4))
        snap = tree.observability.registry.snapshot()
        assert snap["dctree_batch_inserts_total"]["samples"][0]["value"] == 2
        assert snap["dctree_batch_records_total"]["samples"][0]["value"] == 12
        histogram = snap["dctree_batch_pages_per_record"]["samples"][0]
        assert histogram["value"]["count"] == 2
        assert histogram["value"]["sum"] > 0.0
        spans = snap["repro_spans_total"]["samples"]
        assert any(
            sample["labels"].get("name") == "insert_batch"
            for sample in spans
        )

    def test_observability_counters_invisible(self, toy_schema):
        """Telemetry must not perturb the deterministic batch charges."""
        records = self._records(toy_schema, 25)
        plain = self._tree(toy_schema)
        observed = self._tree(toy_schema, observability=True)
        plain.insert_batch(records)
        observed.insert_batch(records)
        assert repr(plain.tracker.snapshot()) == \
            repr(observed.tracker.snapshot())

    def test_partitioned_batches_per_partition(self, toy_schema):
        from repro.maintenance.partitioned import PartitionedWarehouse

        serial = PartitionedWarehouse(toy_schema, "Geo", "Country",
                                      config=DCTreeConfig(
                                          dir_capacity=CAPACITY,
                                          leaf_capacity=CAPACITY))
        batched = PartitionedWarehouse(toy_schema, "Geo", "Country",
                                       config=DCTreeConfig(
                                           dir_capacity=CAPACITY,
                                           leaf_capacity=CAPACITY))
        records = self._records(toy_schema, 60)
        for record in records:
            serial.insert_record(record)
        batched.insert_records(records)
        assert len(serial) == len(batched) == 60
        assert serial.partition_labels() == batched.partition_labels()
        assert serial.query("sum") == batched.query("sum")
        for key in serial.partition_keys:
            assert structure_digest(serial._partitions[key]) == \
                structure_digest(batched._partitions[key])
