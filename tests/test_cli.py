"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def loaded_warehouse(tmp_path):
    flat = tmp_path / "cube.tbl"
    warehouse = tmp_path / "wh.json"
    assert main(["generate", str(flat), "--records", "300",
                 "--seed", "2"]) == 0
    assert main(["load", str(flat), str(warehouse)]) == 0
    return warehouse


class TestGenerate:
    def test_writes_file(self, tmp_path, capsys):
        path = tmp_path / "out.tbl"
        assert main(["generate", str(path), "--records", "50"]) == 0
        assert path.exists()
        assert "wrote 50 records" in capsys.readouterr().out

    def test_deterministic(self, tmp_path):
        a = tmp_path / "a.tbl"
        b = tmp_path / "b.tbl"
        main(["generate", str(a), "--records", "30", "--seed", "9"])
        main(["generate", str(b), "--records", "30", "--seed", "9"])
        assert a.read_text() == b.read_text()


class TestLoad:
    def test_bulk_load_dc_tree(self, loaded_warehouse):
        assert loaded_warehouse.exists()

    def test_load_scan_backend(self, tmp_path, capsys):
        flat = tmp_path / "cube.tbl"
        warehouse = tmp_path / "scan.json"
        main(["generate", str(flat), "--records", "40"])
        assert main(["load", str(flat), str(warehouse),
                     "--backend", "scan"]) == 0
        assert "into a scan" in capsys.readouterr().out


class TestQuery:
    def test_count_matches_records(self, loaded_warehouse, capsys):
        assert main(["query", str(loaded_warehouse), "--op", "count"]) == 0
        assert capsys.readouterr().out.strip() == "300"

    def test_where_filters(self, loaded_warehouse, capsys):
        assert main([
            "query", str(loaded_warehouse),
            "--op", "count",
            "--where", "Time.Year=1996",
        ]) == 0
        count = int(capsys.readouterr().out.strip())
        assert 0 < count < 300

    def test_bad_where_syntax(self, loaded_warehouse):
        with pytest.raises(SystemExit):
            main(["query", str(loaded_warehouse), "--where", "garbage"])

    def test_unknown_label_reports_error(self, loaded_warehouse, capsys):
        code = main([
            "query", str(loaded_warehouse),
            "--where", "Customer.Region=ATLANTIS",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestGroupBy:
    def test_groups_partition_count(self, loaded_warehouse, capsys):
        assert main([
            "groupby", str(loaded_warehouse), "Time.Year", "--op", "count",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        total = sum(int(line.split("\t")[1]) for line in lines)
        assert total == 300

    def test_bad_by_syntax(self, loaded_warehouse):
        with pytest.raises(SystemExit):
            main(["groupby", str(loaded_warehouse), "TimeYear"])


class TestInspect:
    def test_prints_profile(self, loaded_warehouse, capsys):
        assert main(["inspect", str(loaded_warehouse)]) == 0
        out = capsys.readouterr().out
        assert "backend:  dc-tree" in out
        assert "records:  300" in out
        assert "height:" in out
        assert "Customer" in out


class TestTopLevel:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "generate" in capsys.readouterr().out


class TestSql:
    def test_scalar_query(self, loaded_warehouse, capsys):
        assert main([
            "sql", str(loaded_warehouse), "SELECT COUNT(*)",
        ]) == 0
        assert capsys.readouterr().out.strip() == "300"

    def test_group_by_output(self, loaded_warehouse, capsys):
        assert main([
            "sql", str(loaded_warehouse),
            "SELECT COUNT(*) GROUP BY Time.Year",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert sum(int(line.split("\t")[1]) for line in lines) == 300

    def test_where_clause(self, loaded_warehouse, capsys):
        assert main([
            "sql", str(loaded_warehouse),
            "SELECT COUNT(*) WHERE Time.Year = '1996'",
        ]) == 0
        assert 0 < int(capsys.readouterr().out.strip()) < 300

    def test_parse_error_reported(self, loaded_warehouse, capsys):
        code = main(["sql", str(loaded_warehouse), "SELEC SUM(x)"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestDurability:
    def _durable_dir(self, tmp_path):
        import os

        from repro import DurableWarehouse, Warehouse
        from tests.conftest import TOY_ROWS, build_toy_schema, toy_record

        directory = str(tmp_path / "session")
        schema = build_toy_schema()
        session = DurableWarehouse.create(
            directory, Warehouse(schema, "dc-tree")
        )
        for row in TOY_ROWS:
            session.insert_record(toy_record(schema, *row))
        # Simulated crash: never close, never checkpoint.
        session.wal._handle.close()
        session.wal._handle = None
        return directory

    def test_missing_warehouse_friendly_error(self, tmp_path, capsys):
        code = main(["query", str(tmp_path / "absent.json")])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "absent.json" in err

    def test_corrupt_warehouse_friendly_error(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{ definitely not json")
        code = main(["query", str(path)])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_recover_reports_and_exits_zero(self, tmp_path, capsys):
        directory = self._durable_dir(tmp_path)
        assert main(["recover", directory]) == 0
        out = capsys.readouterr().out
        assert "recovery: OK" in out
        assert "7 insert(s)" in out

    def test_recover_output_checkpoint(self, tmp_path, capsys):
        directory = self._durable_dir(tmp_path)
        output = str(tmp_path / "recovered.json")
        assert main(["recover", directory, "--output", output]) == 0
        capsys.readouterr()
        assert main(["query", output, "--op", "count"]) == 0
        assert capsys.readouterr().out.strip() == "7"

    def test_recover_missing_dir_exits_one(self, tmp_path, capsys):
        assert main(["recover", str(tmp_path / "ghost")]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_query_accepts_durable_directory(self, tmp_path, capsys):
        directory = self._durable_dir(tmp_path)
        assert main(["query", directory, "--op", "count"]) == 0
        assert capsys.readouterr().out.strip() == "7"

    def test_inspect_prints_recovery_report(self, tmp_path, capsys):
        directory = self._durable_dir(tmp_path)
        assert main(["inspect", directory]) == 0
        out = capsys.readouterr().out
        assert "recovery: OK" in out and "backend:  dc-tree" in out

    def test_recover_metrics_flag(self, tmp_path, capsys):
        directory = self._durable_dir(tmp_path)
        assert main(["recover", directory, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "recovery_applied_inserts 7" in out
        assert "recovery_validated 1" in out
        assert "# TYPE recovery_wal_bytes_scanned gauge" in out


class TestExplainSurface:
    def test_explain_command_renders_profile(self, loaded_warehouse,
                                             capsys):
        assert main([
            "explain", str(loaded_warehouse),
            "--op", "sum", "--where", "Time.Year=1996",
        ]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN range_query op=sum" in out
        assert "reconcile with tracker delta: OK" in out

    def test_explain_json(self, loaded_warehouse, capsys):
        import json

        assert main([
            "explain", str(loaded_warehouse), "--json",
            "--by", "Time.Year",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reconciles"] is True
        assert payload["kind"] == "group_by"
        assert payload["result"]

    def test_explain_sql(self, loaded_warehouse, capsys):
        assert main([
            "explain", str(loaded_warehouse),
            "--sql", "SELECT COUNT(*) WHERE Time.Year = '1996'",
        ]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN" in out and "reconcile with tracker delta: OK" in out

    def test_query_explain_flag(self, loaded_warehouse, capsys):
        assert main([
            "query", str(loaded_warehouse), "--op", "count", "--explain",
        ]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "300"
        assert "EXPLAIN range_query op=count" in out

    def test_groupby_explain_flag(self, loaded_warehouse, capsys):
        assert main([
            "groupby", str(loaded_warehouse), "Time.Year", "--explain",
        ]) == 0
        assert "EXPLAIN group_by" in capsys.readouterr().out

    def test_sql_explain_flag(self, loaded_warehouse, capsys):
        assert main([
            "sql", str(loaded_warehouse), "SELECT COUNT(*)", "--explain",
        ]) == 0
        assert "reconcile with tracker delta: OK" \
            in capsys.readouterr().out

    def test_inspect_prints_metrics_snapshot(self, loaded_warehouse,
                                             capsys):
        assert main(["inspect", str(loaded_warehouse)]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "dctree_records" in out
        assert "storage_node_accesses" in out
