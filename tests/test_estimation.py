"""Tests for range summaries and directory-based cardinality estimation."""


import pytest

from repro import DCTree, TPCDGenerator, make_tpcd_schema
from repro.errors import QueryError
from repro.workload.queries import QueryGenerator, query_from_labels
from tests.conftest import TOY_ROWS, build_toy_schema, toy_record


def build_toy_tree():
    schema = build_toy_schema()
    tree = DCTree(schema)
    for row in TOY_ROWS:
        tree.insert(toy_record(schema, *row))
    return schema, tree


@pytest.fixture(scope="module")
def tpcd_tree():
    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=12, scale_records=2000)
    tree = DCTree(schema)
    for record in generator.records(2000):
        tree.insert(record)
    return schema, tree


class TestRangeSummary:
    def test_matches_individual_aggregates(self):
        schema, tree = build_toy_tree()
        query = query_from_labels(schema, {"Geo": ("Country", ["DE"])})
        summary = tree.range_summary(query.mds)
        assert summary.aggregate("sum") == tree.range_query(query.mds)
        assert summary.aggregate("count") == tree.range_count(query.mds)
        assert summary.aggregate("min") == tree.range_query(
            query.mds, op="min"
        )
        assert summary.aggregate("max") == tree.range_query(
            query.mds, op="max"
        )

    def test_empty_range(self):
        schema, tree = build_toy_tree()
        query = query_from_labels(
            schema,
            {"Geo": ("City", ["Lyon"]), "Color": ("Color", ["red"])},
        )
        summary = tree.range_summary(query.mds)
        assert summary.is_empty()

    def test_copy_is_detached(self):
        schema, tree = build_toy_tree()
        query = query_from_labels(schema, {})
        summary = tree.range_summary(query.mds)
        summary.add_value(1e9)
        assert tree.range_query(query.mds) == 96.0

    def test_validates_query(self):
        _schema, tree = build_toy_tree()
        from repro.core.mds import MDS

        with pytest.raises(QueryError):
            tree.range_summary(MDS([{1}], [0]))


class TestEstimateCount:
    def test_exact_on_contained_subtrees(self, tpcd_tree):
        schema, tree = tpcd_tree
        query = query_from_labels(schema, {})  # ALL: everything contained
        assert tree.estimate_count(query.mds) == len(tree)

    def test_reasonable_accuracy_at_depth_one(self, tpcd_tree):
        """The estimate correlates with the truth across random queries."""
        schema, tree = tpcd_tree
        ratios = []
        for query in QueryGenerator(schema, 0.25, seed=3).queries(30):
            exact = tree.range_count(query.mds)
            estimate = tree.estimate_count(query.mds, max_depth=1)
            if exact >= 3:
                ratios.append(estimate / exact)
        assert ratios, "no query matched enough records"
        mean_ratio = sum(ratios) / len(ratios)
        assert 0.2 < mean_ratio < 5.0

    def test_deeper_budget_is_more_accurate(self, tpcd_tree):
        schema, tree = tpcd_tree
        queries = [
            q for q in QueryGenerator(schema, 0.25, seed=5).queries(20)
            if tree.range_count(q.mds) >= 3
        ]
        assert queries

        def total_error(depth):
            error = 0.0
            for query in queries:
                exact = tree.range_count(query.mds)
                estimate = tree.estimate_count(query.mds, max_depth=depth)
                error += abs(estimate - exact) / exact
            return error

        assert total_error(3) <= total_error(0) + 1e-9

    def test_estimate_cheaper_than_exact(self, tpcd_tree):
        schema, tree = tpcd_tree
        query = QueryGenerator(schema, 0.25, seed=9).query()
        tree.tracker.reset(clear_buffer=True)
        tree.estimate_count(query.mds, max_depth=0)
        estimate_cost = tree.tracker.snapshot().node_accesses
        tree.tracker.reset(clear_buffer=True)
        tree.range_count(query.mds)
        exact_cost = tree.tracker.snapshot().node_accesses
        assert estimate_cost <= exact_cost

    def test_zero_for_disjoint_range(self):
        schema, tree = build_toy_tree()
        toy_record(schema, "JP", "Tokyo", "red", 0.0)  # label only
        query = query_from_labels(schema, {"Geo": ("Country", ["JP"])})
        assert tree.estimate_count(query.mds) == 0.0

    def test_validates_query(self, tpcd_tree):
        _schema, tree = tpcd_tree
        from repro.core.mds import MDS

        with pytest.raises(QueryError):
            tree.estimate_count(MDS([{1}], [0]))
