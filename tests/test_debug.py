"""Tests for the tree dump utility."""

import io

from repro import DCTree, XTree
from repro.core.debug import dump_tree
from tests.conftest import TOY_ROWS, build_toy_schema, toy_record


def build_trees():
    schema = build_toy_schema()
    dc = DCTree(schema)
    xt = XTree(schema)
    for row in TOY_ROWS:
        record = toy_record(schema, *row)
        dc.insert(record)
        xt.insert(record)
    return dc, xt


class TestDumpDCTree:
    def test_renders_root_line(self):
        dc, _xt = build_trees()
        text = dump_tree(dc)
        first = text.splitlines()[0]
        assert first.startswith("leaf(") or first.startswith("dir(")
        assert "sum=96" in first

    def test_labels_resolved(self):
        dc, _xt = build_trees()
        text = dump_tree(dc)
        assert "ALL" not in text  # toy tree root shows '*' for ALL dims
        assert "*" in text or "Country{" in text

    def test_max_values_elision(self):
        dc, _xt = build_trees()
        text = dump_tree(dc, max_values=1)
        assert "..." in text or text  # elision only if >1 value somewhere

    def test_max_depth_truncates(self):
        schema = build_toy_schema()
        dc = DCTree(schema)
        from repro import DCTreeConfig

        dc = DCTree(schema, config=DCTreeConfig(dir_capacity=4,
                                                leaf_capacity=4))
        for i in range(30):
            dc.insert(toy_record(schema, "C%d" % (i % 3), "City%d" % i,
                                 "red", 1.0))
        full = dump_tree(dc)
        truncated = dump_tree(dc, max_depth=0)
        assert len(truncated.splitlines()) < len(full.splitlines())
        assert "..." in truncated

    def test_stream_output(self):
        dc, _xt = build_trees()
        buffer = io.StringIO()
        text = dump_tree(dc, stream=buffer)
        assert buffer.getvalue() == text + "\n"


class TestDumpXTree:
    def test_renders_intervals(self):
        _dc, xt = build_trees()
        text = dump_tree(xt)
        assert "leaf(" in text
        assert "[" in text and "|" in text

    def test_supernode_tag(self):
        dc, _xt = build_trees()
        dc.root.n_blocks = 3
        text = dump_tree(dc)
        assert "SUPER[3 blocks]" in text
