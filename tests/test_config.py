"""Unit tests for configuration validation."""

import pytest

from repro.config import CostModel, DCTreeConfig, StorageConfig, XTreeConfig
from repro.errors import SchemaError


class TestDCTreeConfig:
    def test_defaults(self):
        config = DCTreeConfig()
        assert config.dir_capacity >= 4
        assert config.leaf_capacity >= 4
        assert config.split_algorithm == "quadratic"
        assert config.use_materialized_aggregates

    def test_capacity_bounds(self):
        with pytest.raises(SchemaError):
            DCTreeConfig(dir_capacity=3)
        with pytest.raises(SchemaError):
            DCTreeConfig(leaf_capacity=2)

    def test_fanout_fraction_bounds(self):
        with pytest.raises(SchemaError):
            DCTreeConfig(min_fanout_fraction=0.0)
        with pytest.raises(SchemaError):
            DCTreeConfig(min_fanout_fraction=0.6)

    def test_overlap_fraction_bounds(self):
        with pytest.raises(SchemaError):
            DCTreeConfig(max_overlap_fraction=-0.1)
        DCTreeConfig(max_overlap_fraction=0.0)

    def test_split_algorithm_validated(self):
        with pytest.raises(SchemaError):
            DCTreeConfig(split_algorithm="cubic")
        DCTreeConfig(split_algorithm="linear")

    def test_min_fanouts(self):
        config = DCTreeConfig(
            dir_capacity=16, leaf_capacity=64, min_fanout_fraction=0.35
        )
        assert config.min_dir_fanout() == 5
        assert config.min_leaf_fanout() == 22

    def test_min_fanout_floor(self):
        config = DCTreeConfig(
            dir_capacity=4, leaf_capacity=4, min_fanout_fraction=0.05
        )
        assert config.min_dir_fanout() == 2
        assert config.min_leaf_fanout() == 2


class TestXTreeConfig:
    def test_defaults(self):
        config = XTreeConfig()
        assert config.dir_capacity >= 4
        assert config.max_overlap_fraction > 0

    def test_validation(self):
        with pytest.raises(SchemaError):
            XTreeConfig(dir_capacity=1)
        with pytest.raises(SchemaError):
            XTreeConfig(min_fanout_fraction=0.9)
        with pytest.raises(SchemaError):
            XTreeConfig(max_overlap_fraction=-1)

    def test_min_fanouts(self):
        config = XTreeConfig(
            dir_capacity=32, leaf_capacity=64, min_fanout_fraction=0.35
        )
        assert config.min_dir_fanout() == 11
        assert config.min_leaf_fanout() == 22


class TestCostModelAndStorage:
    def test_cost_model_defaults_io_dominated(self):
        model = CostModel()
        assert model.t_io > model.t_cpu

    def test_storage_config_defaults(self):
        config = StorageConfig()
        assert config.page_size == 4096
        assert config.buffer_pages == 64
