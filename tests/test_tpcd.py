"""Unit tests for the TPC-D-style schema and generator."""

import pytest

from repro import TPCDGenerator, make_tpcd_schema
from repro.errors import SchemaError
from repro.tpcd import names
from repro.tpcd.schema import CUSTOMER, PART, SUPPLIER, TIME


class TestVocabularies:
    def test_five_regions(self):
        assert len(names.REGIONS) == 5

    def test_twenty_five_nations_with_valid_regions(self):
        assert len(names.NATION_REGIONS) == 25
        for _nation, region in names.NATION_REGIONS:
            assert region in names.REGIONS

    def test_five_market_segments(self):
        assert len(names.MARKET_SEGMENTS) == 5

    def test_twenty_five_brands(self):
        assert len(names.BRANDS) == 25
        assert len(set(names.BRANDS)) == 25

    def test_150_part_types(self):
        assert len(names.PART_TYPES) == 150

    def test_days_in_month_leap_years(self):
        assert names.days_in_month(1996, 2) == 29
        assert names.days_in_month(1997, 2) == 28
        assert names.days_in_month(1996, 1) == 31


class TestSchema:
    def test_four_dimensions_one_measure(self):
        schema = make_tpcd_schema()
        assert schema.n_dimensions == 4
        assert schema.n_measures == 1
        assert schema.measures[0].name == "ExtendedPrice"

    def test_hierarchy_shapes_of_fig9(self):
        schema = make_tpcd_schema()
        assert schema.dimensions[CUSTOMER].level_names == (
            "Custkey", "MktSegment", "Nation", "Region",
        )
        assert schema.dimensions[SUPPLIER].level_names == (
            "Suppkey", "Nation", "Region",
        )
        assert schema.dimensions[PART].level_names == (
            "Partkey", "Type", "Brand",
        )
        assert schema.dimensions[TIME].level_names == ("Day", "Month", "Year")

    def test_flat_space_is_13_dimensional(self):
        assert make_tpcd_schema().n_flat_attributes == 13


class TestGenerator:
    def test_deterministic_given_seed(self):
        a = TPCDGenerator(seed=9, scale_records=300)
        b = TPCDGenerator(seed=9, scale_records=300)
        for record_a, record_b in zip(a.records(50), b.records(50)):
            assert record_a == record_b

    def test_different_seeds_differ(self):
        a = TPCDGenerator(seed=1, scale_records=300).generate(30)
        b = TPCDGenerator(seed=2, scale_records=300).generate(30)
        assert a != b

    def test_pool_sizes_follow_ratios(self):
        generator = TPCDGenerator(seed=0, scale_records=30000)
        assert len(generator.customers) == 30000 // 40
        assert len(generator.suppliers) == 30000 // 600
        assert len(generator.parts) == 30000 // 30

    def test_minimum_pool_sizes(self):
        generator = TPCDGenerator(seed=0, scale_records=10)
        assert len(generator.customers) >= 25
        assert len(generator.suppliers) >= 10
        assert len(generator.parts) >= 25

    def test_records_conform_to_schema(self):
        schema = make_tpcd_schema()
        generator = TPCDGenerator(schema, seed=0, scale_records=100)
        for record in generator.records(20):
            assert len(record.paths) == 4
            assert len(record.flat_point()) == 13
            assert len(record.measures) == 1

    def test_measure_range_is_tpcd_like(self):
        generator = TPCDGenerator(seed=0, scale_records=100)
        for record in generator.records(100):
            assert 900.0 <= record.measures[0] <= 100000.0

    def test_customer_paths_use_tpcd_domains(self):
        schema = make_tpcd_schema()
        generator = TPCDGenerator(schema, seed=0, scale_records=100)
        generator.generate(50)
        hierarchy = schema.hierarchy(CUSTOMER)
        for region in hierarchy.values_at_level(3):
            assert hierarchy.label(region) in names.REGIONS
        for nation in hierarchy.values_at_level(2):
            assert hierarchy.label(nation) in dict(names.NATION_REGIONS)

    def test_nation_region_consistency(self):
        schema = make_tpcd_schema()
        generator = TPCDGenerator(schema, seed=3, scale_records=200)
        generator.generate(100)
        hierarchy = schema.hierarchy(CUSTOMER)
        region_of = dict(names.NATION_REGIONS)
        for nation in hierarchy.values_at_level(2):
            parent = hierarchy.parent(nation)
            assert hierarchy.label(parent) == region_of[
                hierarchy.label(nation)
            ]

    def test_time_paths_are_consistent_dates(self):
        schema = make_tpcd_schema()
        generator = TPCDGenerator(schema, seed=0, scale_records=100)
        for record in generator.records(50):
            hierarchy = schema.hierarchy(TIME)
            year, month, day = (
                hierarchy.label(v) for v in record.paths[TIME]
            )
            assert month.startswith(year)
            assert day.startswith(month)

    def test_scale_records_must_be_positive(self):
        with pytest.raises(SchemaError):
            TPCDGenerator(scale_records=0)

    def test_wrong_schema_rejected(self, toy_schema):
        with pytest.raises(SchemaError):
            TPCDGenerator(schema=toy_schema)

    def test_generate_returns_requested_count(self):
        generator = TPCDGenerator(seed=0, scale_records=100)
        assert len(generator.generate(37)) == 37


class TestSkew:
    def test_zero_skew_is_uniform_default(self):
        a = TPCDGenerator(seed=5, scale_records=300)
        b = TPCDGenerator(seed=5, scale_records=300, skew=0.0)
        assert a.generate(30) == b.generate(30)

    def test_negative_skew_rejected(self):
        with pytest.raises(SchemaError):
            TPCDGenerator(scale_records=100, skew=-0.5)

    def test_skew_concentrates_mass(self):
        from collections import Counter

        uniform = TPCDGenerator(seed=7, scale_records=4000)
        skewed = TPCDGenerator(seed=7, scale_records=4000, skew=1.5)

        def top_share(generator):
            counts = Counter(
                record.leaf_value(0) for record in generator.records(2000)
            )
            total = sum(counts.values())
            top = sorted(counts.values(), reverse=True)[:10]
            return sum(top) / total

        assert top_share(skewed) > top_share(uniform) * 1.5

    def test_skewed_records_still_valid(self, tpcd_schema):
        generator = TPCDGenerator(
            tpcd_schema, seed=1, scale_records=200, skew=2.0
        )
        for record in generator.records(50):
            assert len(record.flat_point()) == 13

    def test_insert_order_experiment_rows(self):
        from repro.bench.workload_bench import run_insert_order

        rows = run_insert_order(n_records=400, n_queries=5)
        assert [row[0] for row in rows] == [
            "uniform / random", "uniform / clustered",
            "skewed / random", "skewed / clustered",
        ]
        for row in rows:
            assert row[1] > 0 and row[2] > 0
