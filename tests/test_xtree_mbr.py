"""Unit tests for MBR geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TreeError
from repro.xtree.mbr import MBR


class TestConstruction:
    def test_of_point_is_degenerate(self):
        box = MBR.of_point((1, 2, 3))
        assert box.lows == [1, 2, 3]
        assert box.highs == [1, 2, 3]
        assert box.volume() == 0.0
        assert box.volume_plus_one() == 1.0

    def test_mismatched_bounds_rejected(self):
        with pytest.raises(TreeError):
            MBR([1, 2], [3])

    def test_cover_of(self):
        cover = MBR.cover_of([MBR.of_point((0, 5)), MBR.of_point((3, 1))])
        assert cover.lows == [0, 1]
        assert cover.highs == [3, 5]

    def test_cover_of_empty_rejected(self):
        with pytest.raises(TreeError):
            MBR.cover_of([])

    def test_copy_independent(self):
        box = MBR.of_point((1, 2))
        clone = box.copy()
        clone.include_point((9, 9))
        assert box.highs == [1, 2]


class TestGrowth:
    def test_include_point_grows(self):
        box = MBR.of_point((5, 5))
        grew = box.include_point((1, 9))
        assert grew
        assert box.lows == [1, 5]
        assert box.highs == [5, 9]

    def test_include_interior_point_no_growth(self):
        box = MBR([0, 0], [10, 10])
        assert not box.include_point((5, 5))

    def test_include_mbr(self):
        box = MBR([2, 2], [4, 4])
        box.include_mbr(MBR([0, 3], [3, 8]))
        assert box.lows == [0, 2]
        assert box.highs == [4, 8]


class TestGeometry:
    def test_margin(self):
        assert MBR([0, 0], [2, 3]).margin() == 5

    def test_volume(self):
        assert MBR([0, 0], [2, 3]).volume() == 6.0
        assert MBR([0, 0], [2, 3]).volume_plus_one() == 12.0

    def test_contains_point(self):
        box = MBR([0, 0], [2, 2])
        assert box.contains_point((1, 2))
        assert not box.contains_point((3, 0))

    def test_contains_mbr(self):
        outer = MBR([0, 0], [10, 10])
        inner = MBR([2, 2], [5, 5])
        assert outer.contains_mbr(inner)
        assert not inner.contains_mbr(outer)

    def test_intersects(self):
        a = MBR([0, 0], [5, 5])
        b = MBR([5, 5], [9, 9])
        c = MBR([6, 0], [9, 4])
        assert a.intersects(b)  # touching counts
        assert not a.intersects(c)

    def test_overlap_volume(self):
        a = MBR([0, 0], [4, 4])
        b = MBR([2, 2], [6, 6])
        assert a.overlap_volume(b) == 4.0
        assert a.overlap_volume_plus_one(b) == 9.0

    def test_overlap_volume_disjoint_is_zero(self):
        a = MBR([0, 0], [1, 1])
        b = MBR([5, 5], [6, 6])
        assert a.overlap_volume(b) == 0.0
        assert a.overlap_volume_plus_one(b) == 0.0

    def test_enlargement_zero_for_interior(self):
        box = MBR([0, 0], [4, 4])
        assert box.enlargement((2, 2)) == 0.0

    def test_enlargement_positive_for_exterior(self):
        box = MBR([0, 0], [4, 4])
        assert box.enlargement((10, 2)) > 0.0

    def test_center(self):
        assert MBR([0, 0], [4, 2]).center(0) == 2.0
        assert MBR([0, 0], [4, 2]).center(1) == 1.0

    def test_equality(self):
        assert MBR([0, 1], [2, 3]) == MBR([0, 1], [2, 3])
        assert MBR([0, 1], [2, 3]) != MBR([0, 1], [2, 4])
        assert MBR([0, 1], [2, 3]) != "box"


points = st.lists(
    st.tuples(*([st.integers(min_value=0, max_value=100)] * 3)),
    min_size=1,
    max_size=30,
)


@given(points)
def test_cover_contains_all_points(pts):
    cover = MBR.cover_of(MBR.of_point(p) for p in pts)
    for p in pts:
        assert cover.contains_point(p)


@given(points, points)
def test_overlap_symmetric_and_bounded(pts_a, pts_b):
    a = MBR.cover_of(MBR.of_point(p) for p in pts_a)
    b = MBR.cover_of(MBR.of_point(p) for p in pts_b)
    assert a.overlap_volume_plus_one(b) == b.overlap_volume_plus_one(a)
    assert a.overlap_volume_plus_one(b) <= min(
        a.volume_plus_one(), b.volume_plus_one()
    )


@given(points)
def test_enlargement_matches_recomputation(pts):
    base = MBR.cover_of(MBR.of_point(p) for p in pts[: len(pts) // 2 + 1])
    for p in pts:
        grown = base.copy()
        grown.include_point(p)
        assert base.enlargement(p) == pytest.approx(
            grown.volume_plus_one() - base.volume_plus_one()
        )
