"""Tests for the benchmark harness (tiny scales, shape assertions)."""

import pytest

from repro.bench import harness
from repro.bench.ablations import (
    ablation_capacity,
    ablation_measures,
    ablation_split,
)
from repro.bench.fig11 import fig11a_rows, fig11b_rows
from repro.bench.fig12 import PANELS, fig12_rows, selectivity_profile
from repro.bench.fig13 import fig13_rows
from repro.bench.reporting import format_speedup, format_table, speedup


@pytest.fixture(scope="module")
def tiny_sweep():
    return harness.run_combined_sweep(
        sizes=(300, 600), selectivities=(0.05, 0.25), n_queries=5, seed=0
    )


class TestCombinedSweep:
    def test_checkpoints_match_sizes(self, tiny_sweep):
        assert [p.n_records for p in tiny_sweep.checkpoints] == [300, 600]

    def test_checkpoint_lookup(self, tiny_sweep):
        assert tiny_sweep.checkpoint(600).n_records == 600
        with pytest.raises(KeyError):
            tiny_sweep.checkpoint(999)

    def test_insert_times_cumulative(self, tiny_sweep):
        for backend in tiny_sweep.backends:
            first = tiny_sweep.checkpoints[0].insert_seconds[backend]
            second = tiny_sweep.checkpoints[1].insert_seconds[backend]
            assert second >= first > 0

    def test_query_measurements_present(self, tiny_sweep):
        point = tiny_sweep.checkpoints[-1]
        for backend in tiny_sweep.backends:
            for selectivity in tiny_sweep.selectivities:
                measurement = point.queries[(backend, selectivity)]
                assert measurement.wall_seconds > 0
                assert measurement.node_accesses > 0
                assert measurement.simulated_seconds > 0

    def test_dc_stats_collected(self, tiny_sweep):
        for point in tiny_sweep.checkpoints:
            assert point.dc_stats is not None
            assert point.dc_stats.n_records == point.n_records

    def test_dc_tree_beats_scan_on_low_selectivity(self, tiny_sweep):
        point = tiny_sweep.checkpoints[-1]
        dc = point.queries[("dc-tree", 0.05)]
        scan = point.queries[("scan", 0.05)]
        assert dc.simulated_seconds < scan.simulated_seconds


class TestFigureRows:
    def test_fig11a_rows(self, tiny_sweep):
        rows = fig11a_rows(tiny_sweep)
        assert len(rows) == 2
        assert rows[0][0] == 300

    def test_fig11b_rows(self, tiny_sweep):
        rows = fig11b_rows(tiny_sweep)
        assert all(per_record > 0 for _n, per_record in rows)

    def test_fig12_rows_all_panels(self, tiny_sweep):
        for panel, (selectivity, competitor) in PANELS.items():
            if selectivity not in tiny_sweep.selectivities:
                continue
            rows = fig12_rows(tiny_sweep, selectivity, competitor)
            assert len(rows) == len(tiny_sweep.checkpoints)

    def test_fig13_rows(self, tiny_sweep):
        rows = fig13_rows(tiny_sweep)
        assert len(rows) == 2
        for row in rows:
            assert row[4] >= 1  # height

    def test_selectivity_profile(self, tiny_sweep):
        profile = selectivity_profile(tiny_sweep)
        assert set(profile) == set(tiny_sweep.selectivities)


class TestHelpers:
    def test_make_backend_unknown(self):
        from repro import make_tpcd_schema

        with pytest.raises(ValueError):
            harness.make_backend("btree", make_tpcd_schema())

    def test_cached_sweep_memoizes(self):
        harness._SWEEP_CACHE.clear()
        first = harness.cached_sweep(
            sizes=(100,), selectivities=(0.25,), n_queries=2, seed=1
        )
        second = harness.cached_sweep(
            sizes=(100,), selectivities=(0.25,), n_queries=2, seed=1
        )
        assert first is second


class TestAblations:
    def test_split_ablation_rows(self):
        rows = ablation_split(n_records=200, n_queries=3)
        assert [row[0] for row in rows] == ["quadratic", "linear"]
        for row in rows:
            assert row[1] > 0

    def test_measures_ablation_rows(self):
        rows = ablation_measures(n_records=200, n_queries=3)
        assert [row[1] for row in rows] == ["on", "off", "on", "off"]
        # Turning aggregates off can never *reduce* node accesses.
        assert rows[1][4] >= rows[0][4]
        assert rows[3][4] >= rows[2][4]

    def test_capacity_ablation_rows(self):
        rows = ablation_capacity(
            n_records=200, n_queries=3, capacities=((8, 16), (16, 32))
        )
        assert len(rows) == 2


class TestReporting:
    def test_format_table_aligns(self):
        table = format_table(("a", "bb"), [(1, 2.5), (10, 0.25)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_table_with_title(self):
        table = format_table(("x",), [(1,)], title="T")
        assert table.splitlines()[0] == "T"

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(10.0, 0.0) is None

    def test_format_speedup(self):
        assert format_speedup(4.5) == "4.5x"
        assert format_speedup(None) == "n/a"


class TestCli:
    def test_main_quick_fig13(self, capsys):
        from repro.bench.__main__ import main

        harness._SWEEP_CACHE.clear()
        code = main(["fig13", "--sizes", "150,300", "--queries", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 13" in out

    def test_main_ablation(self, capsys):
        from repro.bench.__main__ import main

        code = main(["abl-measures", "--quick"])
        assert code == 0
        assert "Ablation" in capsys.readouterr().out


class TestChart:
    def test_renders_markers_and_legend(self):
        from repro.bench.reporting import format_chart

        chart = format_chart(
            [1, 2, 3], {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]}
        )
        assert "*" in chart and "o" in chart
        assert "* a" in chart and "o b" in chart

    def test_axis_labels(self):
        from repro.bench.reporting import format_chart

        chart = format_chart([10, 30], {"s": [0.0, 100.0]}, title="T")
        assert chart.splitlines()[0] == "T"
        assert "100" in chart
        assert "10" in chart and "30" in chart

    def test_empty_series(self):
        from repro.bench.reporting import format_chart

        assert format_chart([], {}) == "(no data)"

    def test_single_point(self):
        from repro.bench.reporting import format_chart

        chart = format_chart([5], {"s": [1.0]})
        assert "*" in chart

    def test_constant_series_no_crash(self):
        from repro.bench.reporting import format_chart

        chart = format_chart([1, 2], {"s": [4.0, 4.0]})
        assert "*" in chart


class TestVerdict:
    def _synthetic_sweep(self):
        """A fabricated sweep embodying the paper's shapes exactly."""
        from repro.bench.harness import Checkpoint, QueryMeasurement, SweepResult
        from repro.core.stats import LevelStats, TreeStats

        sweep = SweepResult(
            sizes=(100, 200), selectivities=(0.01, 0.05, 0.25),
            n_queries=5, backends=("dc-tree", "x-tree", "scan"), seed=0,
        )
        for i, n in enumerate(sweep.sizes, start=1):
            point = Checkpoint(n)
            point.insert_seconds = {"dc-tree": 2.0 * i, "x-tree": 1.0 * i,
                                    "scan": 0.5 * i}
            point.insert_simulated = {"dc-tree": 20.0 * i, "x-tree": 10.0 * i,
                                      "scan": 5.0 * i}
            point.per_record_seconds = {"dc-tree": 0.001, "x-tree": 0.0005,
                                        "scan": 0.0001}
            for selectivity in sweep.selectivities:
                dc_cost = selectivity * i
                factors = {"x-tree": 30.0 / (selectivity * 100),
                           "scan": 1.0 + i * 0.2}
                for backend in sweep.backends:
                    factor = factors.get(backend, 1.0)
                    point.queries[(backend, selectivity)] = QueryMeasurement(
                        wall_seconds=dc_cost * factor,
                        node_accesses=10,
                        buffer_misses=5,
                        cpu_units=100,
                        simulated_seconds=dc_cost * factor,
                    )
            levels = [LevelStats(0), LevelStats(1), LevelStats(2)]
            levels[0].n_nodes, levels[0].n_entries = 1, 2
            levels[1].n_nodes, levels[1].n_entries = 2, 40 * i
            levels[1].n_supernodes = i
            levels[1].n_blocks = 2 * i
            levels[2].n_nodes, levels[2].n_entries = 10, 450
            point.dc_stats = TreeStats(levels, n_records=n, height=3)
            sweep.checkpoints.append(point)
        return sweep

    def test_all_claims_pass_on_ideal_shapes(self):
        from repro.bench.verdict import evaluate_claims

        claims = evaluate_claims(self._synthetic_sweep())
        failing = [c.row() for c in claims if not c.passed]
        assert not failing, failing

    def test_detects_inverted_winner(self):
        from repro.bench.verdict import evaluate_claims

        sweep = self._synthetic_sweep()
        for point in sweep.checkpoints:
            # Make the X-tree insert *more* expensive than the DC-tree.
            point.insert_simulated["x-tree"] = (
                point.insert_simulated["dc-tree"] * 2
            )
        claims = evaluate_claims(sweep)
        failed = [c for c in claims if not c.passed]
        assert any(c.artifact == "fig11a" for c in failed)

    def test_report_renders(self):
        import repro.bench.verdict as verdict_mod

        sweep = self._synthetic_sweep()
        claims = verdict_mod.evaluate_claims(sweep)
        from repro.bench.reporting import format_table

        table = format_table(
            ("artifact", "claim", "verdict", "measured"),
            [c.row() for c in claims],
        )
        assert "PASS" in table
