"""Tests for the batch-mode warehouse (the paper's antagonist regime)."""

import pytest

from repro.maintenance import (
    BatchWarehouse,
    WarehouseOfflineError,
)
from tests.conftest import TOY_ROWS, build_toy_schema


def submit_all(warehouse):
    records = []
    for country, city, color, sales in TOY_ROWS:
        records.append(
            warehouse.submit_insert(((country, city), (color,)), (sales,))
        )
    return records


class TestStaleness:
    def test_updates_invisible_until_window(self):
        warehouse = BatchWarehouse(build_toy_schema())
        submit_all(warehouse)
        assert warehouse.pending_updates == len(TOY_ROWS)
        assert len(warehouse) == 0
        assert warehouse.query("sum") == 0.0

    def test_window_makes_updates_visible(self):
        warehouse = BatchWarehouse(build_toy_schema())
        submit_all(warehouse)
        n_applied, wall = warehouse.run_maintenance_window()
        assert n_applied == len(TOY_ROWS)
        assert wall >= 0
        assert warehouse.pending_updates == 0
        assert warehouse.query("sum") == 96.0

    def test_staleness_recorded_per_query(self):
        warehouse = BatchWarehouse(build_toy_schema())
        warehouse.submit_insert((("DE", "Munich"), ("red",)), (1.0,))
        warehouse.query("sum")
        warehouse.submit_insert((("DE", "Berlin"), ("red",)), (2.0,))
        warehouse.query("sum")
        assert warehouse.stats.staleness_samples == [1, 2]
        assert warehouse.stats.mean_staleness == 1.5
        assert warehouse.stats.max_staleness == 2

    def test_submitted_deletes_queue_too(self):
        warehouse = BatchWarehouse(build_toy_schema())
        records = submit_all(warehouse)
        warehouse.run_maintenance_window()
        warehouse.submit_delete(records[0])
        assert warehouse.query("sum") == 96.0  # still stale
        warehouse.run_maintenance_window()
        assert warehouse.query("sum") == 86.0


class TestWindows:
    def test_auto_window_policy(self):
        warehouse = BatchWarehouse(build_toy_schema(), window_every=3)
        submit_all(warehouse)  # 7 updates -> windows after 3 and 6
        assert warehouse.stats.n_windows == 2
        assert warehouse.pending_updates == 1

    def test_window_stats_accumulate(self):
        warehouse = BatchWarehouse(build_toy_schema())
        submit_all(warehouse)
        warehouse.run_maintenance_window()
        assert warehouse.stats.updates_applied == len(TOY_ROWS)
        assert warehouse.stats.total_downtime_seconds > 0
        assert warehouse.stats.total_simulated_downtime > 0

    def test_query_during_window_rejected(self):
        warehouse = BatchWarehouse(build_toy_schema())
        warehouse.submit_insert((("DE", "Munich"), ("red",)), (1.0,))
        warehouse._in_window = True
        with pytest.raises(WarehouseOfflineError):
            warehouse.query("sum")
        assert warehouse.stats.queries_rejected == 1

    def test_empty_window_is_cheap(self):
        warehouse = BatchWarehouse(build_toy_schema())
        n_applied, _wall = warehouse.run_maintenance_window()
        assert n_applied == 0


class TestBackends:
    @pytest.mark.parametrize("backend", ["dc-tree", "x-tree", "scan"])
    def test_batch_regime_on_every_backend(self, backend):
        warehouse = BatchWarehouse(build_toy_schema(), backend)
        submit_all(warehouse)
        warehouse.run_maintenance_window()
        assert warehouse.query(
            "sum", where={"Geo": ("Country", ["DE"])}
        ) == 35.0

    def test_repr(self):
        warehouse = BatchWarehouse(build_toy_schema())
        warehouse.submit_insert((("DE", "Munich"), ("red",)), (1.0,))
        text = repr(warehouse)
        assert "pending=1" in text


class TestMotivationExperiment:
    def test_rows_and_shapes(self):
        from repro.bench.motivation import run_motivation

        rows = run_motivation(n_updates=400, query_every=40, windows=2)
        dynamic, batch = rows
        assert dynamic[0].startswith("dynamic")
        # Drawback 2: the batch regime answers from stale contents.
        assert batch[1] > 0
        assert dynamic[1] == 0
        # Drawback 1: the batch regime pays maintenance downtime.
        assert batch[4] > 0
        assert dynamic[4] == 0

    def test_report_renders(self):
        from repro.bench.motivation import report_motivation

        text = report_motivation(n_updates=200, query_every=50, windows=2)
        assert "staleness" in text
        assert "dynamic dc-tree" in text
