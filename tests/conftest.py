"""Shared fixtures: a small hand-checkable toy cube plus TPC-D material."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro import CubeSchema, Dimension, Measure, TPCDGenerator, make_tpcd_schema

# Tiered Hypothesis profiles: "ci" runs the full example budget, "dev"
# keeps the suite fast during iteration.  Select with HYPOTHESIS_PROFILE.
settings.register_profile("ci", max_examples=100, deadline=None)
settings.register_profile("dev", max_examples=20, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def build_toy_schema():
    """A two-dimensional cube small enough to reason about by hand.

    * Geo:   City [0] < Country [1]   (ALL at level 2)
    * Color: Color [0]                (ALL at level 1)
    * one measure: Sales
    """
    return CubeSchema(
        dimensions=[
            Dimension("Geo", ("City", "Country")),
            Dimension("Color", ("Color",)),
        ],
        measures=[Measure("Sales")],
    )


def toy_record(schema, country, city, color, sales):
    """One toy record from labels (Country > City; Color)."""
    return schema.record(((country, city), (color,)), (sales,))


TOY_ROWS = (
    ("DE", "Munich", "red", 10.0),
    ("DE", "Munich", "blue", 20.0),
    ("DE", "Berlin", "red", 5.0),
    ("FR", "Paris", "blue", 7.0),
    ("FR", "Lyon", "green", 3.0),
    ("US", "NYC", "red", 40.0),
    ("US", "Boston", "green", 11.0),
)


@pytest.fixture
def toy_schema():
    return build_toy_schema()


@pytest.fixture
def toy_records(toy_schema):
    return [toy_record(toy_schema, *row) for row in TOY_ROWS]


@pytest.fixture
def tpcd_schema():
    return make_tpcd_schema()


@pytest.fixture
def tpcd_records_500(tpcd_schema):
    generator = TPCDGenerator(tpcd_schema, seed=42, scale_records=500)
    return generator.generate(500)
