"""Robustness tests for unusual cube shapes.

The paper evaluates one fixed 4-dimensional cube; a library must cope
with degenerate and extreme schemata: single-dimension cubes, flat
(1-level) dimensions, very deep hierarchies, and wide mixes.
"""

import math

import pytest

from repro import (
    CubeSchema,
    DCTree,
    DCTreeConfig,
    Dimension,
    FlatTable,
    Measure,
    Warehouse,
    XTree,
)
from repro.core.bulkload import bulk_load
from repro.errors import HierarchyError
from repro.workload.queries import QueryGenerator, query_from_labels


def insert_many(warehouse, records):
    for record in records:
        warehouse.insert_record(record)


class TestSingleDimensionCube:
    @pytest.fixture
    def schema(self):
        return CubeSchema(
            dimensions=[Dimension("Time", ("Day", "Month", "Year"))],
            measures=[Measure("Hits")],
        )

    def test_all_backends_agree(self, schema):
        records = [
            schema.record(
                (("%d" % year, "%d-%02d" % (year, month),
                  "%d-%02d-%02d" % (year, month, day)),),
                (float(day),),
            )
            for year in (2024, 2025)
            for month in (1, 2, 3)
            for day in (1, 8, 15, 22)
        ]
        backends = {
            "dc": DCTree(schema), "x": XTree(schema),
            "scan": FlatTable(schema),
        }
        for record in records:
            for index in backends.values():
                index.insert(record)
        backends["dc"].check_invariants()
        query = query_from_labels(schema, {"Time": ("Year", ["2024"])})
        expected = sum(
            r.measures[0] for r in records if query.matches(r)
        )
        assert backends["dc"].range_query(query.mds) == expected
        assert backends["x"].range_query(
            query.to_mbr(), query.predicate()
        ) == expected
        assert backends["scan"].range_query(query.mds) == expected


class TestFlatDimensions:
    @pytest.fixture
    def schema(self):
        """Every dimension has exactly one functional attribute."""
        return CubeSchema(
            dimensions=[
                Dimension("A", ("a",)),
                Dimension("B", ("b",)),
                Dimension("C", ("c",)),
            ],
            measures=[Measure("m")],
        )

    def test_tree_works_without_hierarchy_depth(self, schema):
        tree = DCTree(
            schema, config=DCTreeConfig(dir_capacity=4, leaf_capacity=4)
        )
        records = [
            schema.record(
                (("a%d" % (i % 5),), ("b%d" % (i % 3),), ("c%d" % (i % 7),)),
                (float(i),),
            )
            for i in range(60)
        ]
        for record in records:
            tree.insert(record)
        tree.check_invariants()
        query = query_from_labels(schema, {"A": ("a", ["a0", "a1"])})
        expected = sum(r.measures[0] for r in records if query.matches(r))
        assert math.isclose(tree.range_query(query.mds), expected)

    def test_group_by_flat_dimension(self, schema):
        warehouse = Warehouse(schema)
        for i in range(20):
            warehouse.insert(
                (("a%d" % (i % 2),), ("b0",), ("c0",)), (1.0,)
            )
        groups = warehouse.group_by("A", "a", op="count")
        assert groups == {"a0": 10, "a1": 10}


class TestDeepHierarchy:
    @pytest.fixture
    def schema(self):
        """A 10-level hierarchy (near the 15-level encoding limit)."""
        levels = tuple("L%d" % i for i in range(10))
        return CubeSchema(
            dimensions=[
                Dimension("Deep", levels),
                Dimension("Flat", ("f",)),
            ],
            measures=[Measure("m")],
        )

    def _record(self, schema, leaf_index, value):
        path = tuple(
            "n%d.%d" % (depth, leaf_index % (depth + 2))
            for depth in range(9)
        ) + ("leaf%d" % leaf_index,)
        return schema.record((path, ("f0",)), (value,))

    def test_inserts_and_splits(self, schema):
        tree = DCTree(
            schema, config=DCTreeConfig(dir_capacity=4, leaf_capacity=4)
        )
        records = [self._record(schema, i, float(i)) for i in range(80)]
        for record in records:
            tree.insert(record)
        tree.check_invariants()
        assert tree.height() >= 2

    def test_queries_at_every_level(self, schema):
        tree = DCTree(schema)
        records = [self._record(schema, i, float(i)) for i in range(50)]
        for record in records:
            tree.insert(record)
        hierarchy = schema.hierarchy(0)
        for level in range(hierarchy.top_level):
            values = hierarchy.values_at_level(level)
            assert values
            from repro.core.mds import MDS

            query = MDS(
                [{values[0]}, {schema.hierarchy(1).all_id}],
                [level, schema.hierarchy(1).top_level],
            )
            expected = sum(
                r.measures[0] for r in records
                if r.value_at_level(0, level) == values[0]
            )
            assert math.isclose(tree.range_query(query), expected)

    def test_bulk_load_deep(self, schema):
        records = [self._record(schema, i, 1.0) for i in range(100)]
        tree = bulk_load(
            schema, records,
            config=DCTreeConfig(dir_capacity=4, leaf_capacity=4),
        )
        tree.check_invariants()
        assert len(tree) == 100

    def test_sixteen_levels_rejected(self):
        with pytest.raises(HierarchyError):
            Dimension("TooDeep", tuple("L%d" % i for i in range(16)))


class TestManyDimensions:
    def test_eight_dimensions(self):
        schema = CubeSchema(
            dimensions=[
                Dimension("D%d" % d, ("leaf", "top")) for d in range(8)
            ],
            measures=[Measure("m")],
        )
        tree = DCTree(
            schema, config=DCTreeConfig(dir_capacity=4, leaf_capacity=8)
        )
        records = []
        for i in range(64):
            paths = tuple(
                ("t%d" % ((i >> d) & 1), "v%d.%d" % (d, i % 4))
                for d in range(8)
            )
            record = schema.record(paths, (1.0,))
            tree.insert(record)
            records.append(record)
        tree.check_invariants()
        for query in QueryGenerator(schema, 0.5, seed=2).queries(5):
            expected = sum(1 for r in records if query.matches(r))
            assert tree.range_count(query.mds) == expected
