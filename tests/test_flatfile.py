"""Tests for flat insert files (§5.1)."""

import pytest

from repro import TPCDGenerator, make_tpcd_schema
from repro.core.bulkload import bulk_load
from repro.errors import SchemaError, StorageError
from repro.tpcd.flatfile import read_flatfile, read_schema, write_flatfile
from tests.conftest import TOY_ROWS, build_toy_schema, toy_record


@pytest.fixture
def toy_file(tmp_path):
    schema = build_toy_schema()
    records = [toy_record(schema, *row) for row in TOY_ROWS]
    path = tmp_path / "cube.tbl"
    write_flatfile(path, schema, records)
    return schema, records, path


class TestWrite:
    def test_returns_count(self, tmp_path):
        schema = build_toy_schema()
        records = [toy_record(schema, *row) for row in TOY_ROWS]
        assert write_flatfile(tmp_path / "x.tbl", schema, records) == len(
            records
        )

    def test_header_lines(self, toy_file):
        _schema, _records, path = toy_file
        lines = path.read_text().splitlines()
        assert lines[0] == "#dcube 1"
        assert lines[1] == "#dimension Geo|City|Country"
        assert lines[2] == "#dimension Color|Color"
        assert lines[3] == "#measure Sales"

    def test_record_lines_are_pipe_delimited(self, toy_file):
        _schema, _records, path = toy_file
        data_lines = [
            line for line in path.read_text().splitlines()
            if not line.startswith("#")
        ]
        assert len(data_lines) == len(TOY_ROWS)
        assert data_lines[0].split("|")[:3] == ["DE", "Munich", "red"]

    def test_pipe_in_label_escaped(self, tmp_path):
        schema = build_toy_schema()
        record = toy_record(schema, "D|E", "Mun|ich", "red", 1.0)
        path = tmp_path / "weird.tbl"
        write_flatfile(path, schema, [record])
        _schema2, records = read_flatfile(path)
        hierarchy = _schema2.hierarchy(0)
        assert hierarchy.label(records[0].value_at_level(0, 1)) == "D|E"


class TestRead:
    def test_roundtrip_fresh_schema(self, toy_file):
        schema, records, path = toy_file
        schema2, records2 = read_flatfile(path)
        assert schema2.n_dimensions == schema.n_dimensions
        assert len(records2) == len(records)
        assert [r.measures for r in records2] == [
            r.measures for r in records
        ]

    def test_roundtrip_into_shared_schema(self, toy_file):
        schema, records, path = toy_file
        _schema, records2 = read_flatfile(path, schema=schema)
        # Reading into the same schema reuses the same IDs.
        assert records2 == records

    def test_read_schema_only(self, toy_file):
        _schema, _records, path = toy_file
        schema = read_schema(path)
        assert [d.name for d in schema.dimensions] == ["Geo", "Color"]
        assert schema.measures[0].name == "Sales"

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.tbl"
        path.write_text("not a cube\n")
        with pytest.raises(StorageError):
            read_flatfile(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.tbl"
        path.write_text("#dcube 1\nDE|Munich|red|1.0\n")
        with pytest.raises(StorageError):
            read_flatfile(path)

    def test_wrong_field_count_rejected(self, toy_file):
        _schema, _records, path = toy_file
        with open(path, "a") as handle:
            handle.write("DE|Munich|red\n")
        with pytest.raises(StorageError):
            read_flatfile(path)

    def test_non_numeric_measure_rejected(self, toy_file):
        _schema, _records, path = toy_file
        with open(path, "a") as handle:
            handle.write("DE|Munich|red|abc\n")
        with pytest.raises(StorageError):
            read_flatfile(path)

    def test_incompatible_schema_rejected(self, toy_file):
        _schema, _records, path = toy_file
        other = make_tpcd_schema()
        with pytest.raises(SchemaError):
            read_flatfile(path, schema=other)

    def test_blank_lines_ignored(self, toy_file):
        schema, records, path = toy_file
        with open(path, "a") as handle:
            handle.write("\n\n")
        _schema, records2 = read_flatfile(path, schema=schema)
        assert len(records2) == len(records)


class TestAsInsertFile:
    def test_feeds_bulk_load(self, tmp_path):
        schema = make_tpcd_schema()
        generator = TPCDGenerator(schema, seed=3, scale_records=400)
        records = generator.generate(400)
        path = tmp_path / "tpcd.tbl"
        write_flatfile(path, schema, records)

        fresh_schema, loaded = read_flatfile(path)
        tree = bulk_load(fresh_schema, loaded)
        tree.check_invariants()
        assert len(tree) == 400
        total = sum(r.measures[0] for r in records)
        from repro.workload.queries import query_from_labels

        assert abs(
            tree.range_query(query_from_labels(fresh_schema, {}).mds) - total
        ) < 1e-4
