"""Unit tests for dynamic concept hierarchies (Definition 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cube import ids
from repro.cube.hierarchy import ConceptHierarchy
from repro.errors import HierarchyError


@pytest.fixture
def customer():
    """The paper's Customer example: Region > Nation > Customer ID."""
    return ConceptHierarchy("Customer", ("CustomerID", "Nation", "Region"))


class TestConstruction:
    def test_top_level_counts_functional_attributes(self, customer):
        assert customer.top_level == 3

    def test_all_is_the_only_initial_value(self, customer):
        assert len(customer) == 1
        assert customer.label(customer.all_id) == "ALL"

    def test_all_sits_at_top_level(self, customer):
        assert ids.level_of(customer.all_id) == 3

    def test_level_names(self, customer):
        assert customer.level_name(0) == "CustomerID"
        assert customer.level_name(2) == "Region"
        assert customer.level_name(3) == "ALL"

    def test_level_name_out_of_range(self, customer):
        with pytest.raises(HierarchyError):
            customer.level_name(4)

    def test_empty_levels_rejected(self):
        with pytest.raises(HierarchyError):
            ConceptHierarchy("X", ())

    def test_too_many_levels_rejected(self):
        with pytest.raises(HierarchyError):
            ConceptHierarchy("X", tuple("L%d" % i for i in range(16)))


class TestInsertPath:
    def test_creates_nodes_at_expected_levels(self, customer):
        region, nation, cust = customer.insert_path(
            ("Europe", "Germany", "C1")
        )
        assert ids.level_of(region) == 2
        assert ids.level_of(nation) == 1
        assert ids.level_of(cust) == 0

    def test_reuses_existing_prefix(self, customer):
        path_a = customer.insert_path(("Europe", "Germany", "C1"))
        path_b = customer.insert_path(("Europe", "Germany", "C2"))
        assert path_a[0] == path_b[0]
        assert path_a[1] == path_b[1]
        assert path_a[2] != path_b[2]

    def test_idempotent(self, customer):
        assert customer.insert_path(("Europe", "Germany", "C1")) == (
            customer.insert_path(("Europe", "Germany", "C1"))
        )

    def test_same_label_under_different_parents_gets_new_id(self, customer):
        # Market-segment style: the same label repeats under every parent.
        path_a = customer.insert_path(("Europe", "Germany", "dup"))
        path_b = customer.insert_path(("Europe", "France", "dup"))
        assert path_a[2] != path_b[2]

    def test_wrong_arity_rejected(self, customer):
        with pytest.raises(HierarchyError):
            customer.insert_path(("Europe", "Germany"))

    def test_lookup_path_finds_inserted(self, customer):
        inserted = customer.insert_path(("Europe", "Germany", "C1"))
        assert customer.lookup_path(("Europe", "Germany", "C1")) == inserted

    def test_lookup_path_missing_returns_none(self, customer):
        assert customer.lookup_path(("Europe", "Germany", "C1")) is None

    def test_lookup_never_creates(self, customer):
        customer.lookup_path(("Europe", "Germany", "C1"))
        assert len(customer) == 1


class TestNavigation:
    @pytest.fixture(autouse=True)
    def _populate(self, customer):
        self.de = customer.insert_path(("Europe", "Germany", "C1"))
        customer.insert_path(("Europe", "Germany", "C2"))
        self.fr = customer.insert_path(("Europe", "France", "C3"))
        self.us = customer.insert_path(("America", "USA", "C4"))
        self.h = customer

    def test_parent_of_leaf(self):
        assert self.h.parent(self.de[2]) == self.de[1]

    def test_parent_of_all_is_none(self):
        assert self.h.parent(self.h.all_id) is None

    def test_parent_of_unknown_raises(self):
        with pytest.raises(HierarchyError):
            self.h.parent(0xDEAD)

    def test_children_of_nation(self):
        assert len(self.h.children(self.de[1])) == 2

    def test_ancestor_at_own_level_is_self(self):
        assert self.h.ancestor(self.de[2], 0) == self.de[2]

    def test_ancestor_at_region_level(self):
        assert self.h.ancestor(self.de[2], 2) == self.de[0]

    def test_ancestor_at_all_level(self):
        assert self.h.ancestor(self.de[2], 3) == self.h.all_id

    def test_ancestor_below_own_level_raises(self):
        with pytest.raises(HierarchyError):
            self.h.ancestor(self.de[0], 0)

    def test_partial_ordering_germany_below_europe(self):
        # "Germany <= Europe" from the paper's example.
        assert self.h.is_descendant_or_self(self.de[1], self.de[0])

    def test_partial_ordering_reflexive(self):
        assert self.h.is_descendant_or_self(self.de[1], self.de[1])

    def test_partial_ordering_everything_below_all(self):
        for attr_id in (self.de[0], self.de[1], self.de[2]):
            assert self.h.is_descendant_or_self(attr_id, self.h.all_id)

    def test_partial_ordering_not_across_branches(self):
        assert not self.h.is_descendant_or_self(self.us[1], self.de[0])

    def test_partial_ordering_never_downwards(self):
        assert not self.h.is_descendant_or_self(self.de[0], self.de[1])

    def test_descendants_at_level_of_all(self):
        leaves = self.h.descendants_at_level(self.h.all_id, 0)
        assert len(leaves) == 4

    def test_descendants_at_level_of_region(self):
        nations = self.h.descendants_at_level(self.de[0], 1)
        assert nations == frozenset((self.de[1], self.fr[1]))

    def test_descendants_at_own_level(self):
        assert self.h.descendants_at_level(self.de[1], 1) == frozenset(
            (self.de[1],)
        )

    def test_descendants_above_own_level_raises(self):
        with pytest.raises(HierarchyError):
            self.h.descendants_at_level(self.de[2], 1)

    def test_descendant_cache_invalidated_by_insert(self):
        before = self.h.descendants_at_level(self.de[0], 0)
        self.h.insert_path(("Europe", "Germany", "C99"))
        after = self.h.descendants_at_level(self.de[0], 0)
        assert len(after) == len(before) + 1

    def test_count_descendants(self):
        assert self.h.count_descendants_at_level(self.h.all_id, 1) == 3

    def test_values_at_level_in_allocation_order(self):
        nations = self.h.values_at_level(1)
        assert list(nations) == sorted(nations)

    def test_n_values_at_level(self):
        assert self.h.n_values_at_level(2) == 2
        assert self.h.n_values_at_level(0) == 4

    def test_path_labels(self):
        assert self.h.path_labels(self.de[2]) == ("Europe", "Germany", "C1")

    def test_path_labels_of_all_is_empty(self):
        assert self.h.path_labels(self.h.all_id) == ()

    def test_contains(self):
        assert self.de[2] in self.h
        assert 0xDEAD not in self.h

    def test_level_of_unknown_raises(self):
        with pytest.raises(HierarchyError):
            self.h.level_of(0xDEAD)


@given(
    paths=st.lists(
        st.tuples(
            st.sampled_from(["R1", "R2", "R3"]),
            st.sampled_from(["N1", "N2", "N3", "N4"]),
            st.text(alphabet="abc", min_size=1, max_size=3),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_ancestor_of_descendants_roundtrip(paths):
    """Every descendant at level L of x has x as its ancestor at level(x)."""
    hierarchy = ConceptHierarchy("H", ("Leaf", "Mid", "Top"))
    for path in paths:
        hierarchy.insert_path(path)
    for mid in hierarchy.values_at_level(1):
        for leaf in hierarchy.descendants_at_level(mid, 0):
            assert hierarchy.ancestor(leaf, 1) == mid


@given(
    paths=st.lists(
        st.tuples(
            st.sampled_from(["R1", "R2"]),
            st.sampled_from(["N1", "N2", "N3"]),
            st.integers(min_value=0, max_value=50).map(str),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_levels_partition_all_values(paths):
    """Leaves of ALL at each level are exactly the values of that level."""
    hierarchy = ConceptHierarchy("H", ("Leaf", "Mid", "Top"))
    for path in paths:
        hierarchy.insert_path(path)
    for level in range(hierarchy.top_level):
        assert hierarchy.descendants_at_level(
            hierarchy.all_id, level
        ) == frozenset(hierarchy.values_at_level(level))


class TestRestoreNodes:
    def test_roundtrip(self):
        original = ConceptHierarchy("H", ("Leaf", "Top"))
        original.insert_path(("T1", "a"))
        original.insert_path(("T1", "b"))
        original.insert_path(("T2", "c"))
        fresh = ConceptHierarchy("H", ("Leaf", "Top"))
        fresh.restore_nodes(original.dump_nodes())
        assert len(fresh) == len(original)
        for level in (0, 1):
            assert fresh.values_at_level(level) == original.values_at_level(
                level
            )
        # IDs keep working and new allocations do not collide.
        new_path = fresh.insert_path(("T3", "d"))
        assert new_path[0] not in original

    def test_requires_fresh_hierarchy(self):
        original = ConceptHierarchy("H", ("Leaf", "Top"))
        original.insert_path(("T1", "a"))
        dirty = ConceptHierarchy("H", ("Leaf", "Top"))
        dirty.insert_path(("X", "y"))
        with pytest.raises(HierarchyError):
            dirty.restore_nodes(original.dump_nodes())

    def test_unknown_parent_rejected(self):
        fresh = ConceptHierarchy("H", ("Leaf", "Top"))
        with pytest.raises(HierarchyError):
            fresh.restore_nodes([[ids.make_id(0, 0), 0xDEAD, "x"]])

    def test_bad_root_row_rejected(self):
        fresh = ConceptHierarchy("H", ("Leaf", "Top"))
        with pytest.raises(HierarchyError):
            fresh.restore_nodes([[ids.make_id(1, 5), None, "ALL"]])
