"""Unit, integration and property tests for the DC-tree itself."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DCTree, DCTreeConfig, TPCDGenerator
from repro.core.mds import MDS
from repro.core.stats import collect_stats
from repro.errors import QueryError, RecordNotFoundError, TreeError
from repro.workload.queries import QueryGenerator, query_from_labels
from tests.conftest import TOY_ROWS, build_toy_schema, toy_record


def build_toy_tree(config=None):
    schema = build_toy_schema()
    tree = DCTree(schema, config=config)
    records = [toy_record(schema, *row) for row in TOY_ROWS]
    for record in records:
        tree.insert(record)
    return schema, tree, records


class TestEmptyTree:
    def test_len(self, toy_schema):
        assert len(DCTree(toy_schema)) == 0

    def test_height_one(self, toy_schema):
        assert DCTree(toy_schema).height() == 1

    def test_root_mds_is_all(self, toy_schema):
        tree = DCTree(toy_schema)
        assert tree.root.mds == MDS.all_mds(tree.hierarchies)

    def test_invariants_hold(self, toy_schema):
        DCTree(toy_schema).check_invariants()

    def test_query_on_empty_tree_is_zero(self, toy_schema):
        tree = DCTree(toy_schema)
        everything = MDS.all_mds(tree.hierarchies)
        assert tree.range_query(everything) == 0.0
        assert tree.range_count(everything) == 0


class TestInsert:
    def test_len_counts_inserts(self):
        _schema, tree, records = build_toy_tree()
        assert len(tree) == len(records)

    def test_all_records_reachable(self):
        _schema, tree, records = build_toy_tree()
        assert sorted(map(hash, tree.records())) == sorted(
            map(hash, records)
        )

    def test_invariants_after_each_insert(self, toy_schema):
        tree = DCTree(toy_schema)
        for row in TOY_ROWS:
            tree.insert(toy_record(toy_schema, *row))
            tree.check_invariants()

    def test_duplicate_records_allowed(self, toy_schema):
        tree = DCTree(toy_schema)
        record = toy_record(toy_schema, "DE", "Munich", "red", 1.0)
        tree.insert(record)
        tree.insert(record)
        assert len(tree) == 2
        tree.check_invariants()

    def test_root_aggregate_tracks_total(self):
        _schema, tree, records = build_toy_tree()
        expected = sum(r.measures[0] for r in records)
        assert math.isclose(
            tree.root.aggregate.aggregate("sum"), expected
        )

    def test_insert_charges_io_and_cpu(self, toy_schema):
        tree = DCTree(toy_schema)
        tree.insert(toy_record(toy_schema, "DE", "Munich", "red", 1.0))
        stats = tree.tracker.snapshot()
        assert stats.node_accesses >= 1
        assert stats.page_writes >= 1
        assert stats.cpu_units > 0


class TestSplitsAndGrowth:
    def test_leaf_split_grows_tree(self, toy_schema):
        tree = DCTree(
            toy_schema, config=DCTreeConfig(dir_capacity=4, leaf_capacity=4)
        )
        for i in range(16):
            tree.insert(
                toy_record(
                    toy_schema, "C%d" % (i % 4), "City%d" % i, "red", 1.0
                )
            )
        assert tree.height() >= 2
        tree.check_invariants()

    def test_identical_cells_force_supernode(self, toy_schema):
        """Records in one cube cell cannot be separated: supernode."""
        tree = DCTree(
            toy_schema, config=DCTreeConfig(dir_capacity=4, leaf_capacity=4)
        )
        for i in range(12):
            tree.insert(toy_record(toy_schema, "DE", "Munich", "red", float(i)))
        assert tree.height() == 1
        assert tree.root.is_supernode
        tree.check_invariants()

    def test_supernode_can_split_later(self, toy_schema):
        """A supernode splits once separable data arrives (§4.2)."""
        tree = DCTree(
            toy_schema, config=DCTreeConfig(dir_capacity=4, leaf_capacity=4)
        )
        for i in range(8):
            tree.insert(toy_record(toy_schema, "DE", "Munich", "red", float(i)))
        assert tree.root.is_supernode
        for i in range(30):
            tree.insert(
                toy_record(
                    toy_schema, "C%d" % (i % 5), "City%d" % i, "blue", 1.0
                )
            )
        assert tree.height() >= 2
        tree.check_invariants()

    def test_deep_tree_invariants(self, tpcd_schema):
        generator = TPCDGenerator(tpcd_schema, seed=7, scale_records=1500)
        tree = DCTree(
            tpcd_schema,
            config=DCTreeConfig(dir_capacity=8, leaf_capacity=8),
        )
        for record in generator.records(1500):
            tree.insert(record)
        assert tree.height() >= 3
        tree.check_invariants()

    def test_child_levels_never_exceed_parent_levels(self, tpcd_schema):
        generator = TPCDGenerator(tpcd_schema, seed=3, scale_records=800)
        tree = DCTree(
            tpcd_schema, config=DCTreeConfig(dir_capacity=8, leaf_capacity=8)
        )
        for record in generator.records(800):
            tree.insert(record)

        def walk(node):
            if node.is_leaf:
                return
            for child in node.children:
                for dim in range(node.mds.n_dimensions):
                    assert child.mds.level(dim) <= node.mds.level(dim)
                walk(child)

        walk(tree.root)


class TestRangeQuery:
    def test_sum_by_country(self):
        schema, tree, _records = build_toy_tree()
        query = query_from_labels(schema, {"Geo": ("Country", ["DE"])})
        assert tree.range_query(query.mds) == 35.0

    def test_sum_by_city(self):
        schema, tree, _records = build_toy_tree()
        query = query_from_labels(schema, {"Geo": ("City", ["Munich"])})
        assert tree.range_query(query.mds) == 30.0

    def test_sum_by_color(self):
        schema, tree, _records = build_toy_tree()
        query = query_from_labels(schema, {"Color": ("Color", ["red"])})
        assert tree.range_query(query.mds) == 55.0

    def test_conjunction(self):
        schema, tree, _records = build_toy_tree()
        query = query_from_labels(
            schema,
            {"Geo": ("Country", ["DE"]), "Color": ("Color", ["red"])},
        )
        assert tree.range_query(query.mds) == 15.0

    def test_unconstrained_query_sums_everything(self):
        schema, tree, records = build_toy_tree()
        query = query_from_labels(schema, {})
        assert tree.range_query(query.mds) == sum(
            r.measures[0] for r in records
        )

    def test_count(self):
        schema, tree, _records = build_toy_tree()
        query = query_from_labels(schema, {"Geo": ("Country", ["FR"])})
        assert tree.range_count(query.mds) == 2

    def test_avg_min_max(self):
        schema, tree, _records = build_toy_tree()
        query = query_from_labels(schema, {"Geo": ("Country", ["US"])})
        assert tree.range_query(query.mds, op="avg") == 25.5
        assert tree.range_query(query.mds, op="min") == 11.0
        assert tree.range_query(query.mds, op="max") == 40.0

    def test_empty_result_aggregates(self):
        schema, tree, _records = build_toy_tree()
        query = query_from_labels(schema, {"Color": ("Color", ["green"])})
        narrow = query_from_labels(
            schema,
            {"Geo": ("City", ["Munich"]), "Color": ("Color", ["green"])},
        )
        assert tree.range_query(narrow.mds) == 0.0
        assert tree.range_query(narrow.mds, op="avg") is None
        assert tree.range_query(query.mds) == 14.0

    def test_measure_by_name(self):
        schema, tree, _records = build_toy_tree()
        query = query_from_labels(schema, {})
        assert tree.range_query(query.mds, measure="Sales") == 96.0

    def test_unknown_measure_index_rejected(self):
        schema, tree, _records = build_toy_tree()
        query = query_from_labels(schema, {})
        with pytest.raises(QueryError):
            tree.range_query(query.mds, measure=3)

    def test_dimension_mismatch_rejected(self):
        _schema, tree, _records = build_toy_tree()
        with pytest.raises(QueryError):
            tree.range_query(MDS([{1}], [0]))

    def test_empty_query_mds_rejected(self):
        _schema, tree, _records = build_toy_tree()
        with pytest.raises(QueryError):
            tree.range_query(MDS([set(), {1}], [0, 0]))

    def test_range_records(self):
        schema, tree, _records = build_toy_tree()
        query = query_from_labels(schema, {"Geo": ("Country", ["DE"])})
        found = tree.range_records(query.mds)
        assert len(found) == 3
        assert all(query.matches(record) for record in found)

    def test_query_without_aggregates_same_answer(self):
        schema, tree, _records = build_toy_tree()
        query = query_from_labels(schema, {"Geo": ("Country", ["DE"])})
        with_aggregates = tree.range_query(query.mds)
        tree.config.use_materialized_aggregates = False
        without = tree.range_query(query.mds)
        tree.config.use_materialized_aggregates = True
        assert with_aggregates == without


class TestDelete:
    def test_delete_reduces_len_and_sum(self):
        schema, tree, records = build_toy_tree()
        tree.delete(records[0])
        assert len(tree) == len(records) - 1
        query = query_from_labels(schema, {})
        assert tree.range_query(query.mds) == 86.0
        tree.check_invariants()

    def test_delete_missing_raises(self):
        schema, tree, _records = build_toy_tree()
        ghost = toy_record(schema, "DE", "Munich", "red", 999.0)
        with pytest.raises(RecordNotFoundError):
            tree.delete(ghost)

    def test_delete_all_then_queries_empty(self):
        schema, tree, records = build_toy_tree()
        for record in records:
            tree.delete(record)
        assert len(tree) == 0
        query = query_from_labels(schema, {})
        assert tree.range_count(query.mds) == 0

    def test_delete_maintains_min_max(self):
        schema, tree, records = build_toy_tree()
        # records[5] is the maximum (40.0, US/NYC/red).
        tree.delete(records[5])
        query = query_from_labels(schema, {})
        assert tree.range_query(query.mds, op="max") == 20.0
        tree.check_invariants()

    def test_delete_shrinks_mds(self):
        schema, tree, records = build_toy_tree()
        for record in records:
            if schema.hierarchy(0).label(record.value_at_level(0, 1)) == "US":
                tree.delete(record)
        query = query_from_labels(schema, {"Geo": ("Country", ["US"])})
        assert tree.range_count(query.mds) == 0
        tree.check_invariants()

    def test_interleaved_insert_delete_invariants(self, toy_schema):
        tree = DCTree(
            toy_schema, config=DCTreeConfig(dir_capacity=4, leaf_capacity=4)
        )
        live = []
        for i in range(60):
            record = toy_record(
                toy_schema, "C%d" % (i % 3), "City%d" % (i % 9),
                "col%d" % (i % 2), float(i),
            )
            tree.insert(record)
            live.append(record)
            if i % 3 == 2:
                tree.delete(live.pop(0))
        tree.check_invariants()
        assert len(tree) == len(live)


class TestStats:
    def test_collect_stats_counts_records(self):
        _schema, tree, records = build_toy_tree()
        stats = collect_stats(tree)
        assert stats.n_records == len(records)
        assert stats.height == tree.height()

    def test_level_zero_is_root(self):
        _schema, tree, _records = build_toy_tree()
        stats = collect_stats(tree)
        assert stats.level(0).n_nodes == 1

    def test_supernode_counting(self, toy_schema):
        tree = DCTree(
            toy_schema, config=DCTreeConfig(dir_capacity=4, leaf_capacity=4)
        )
        for i in range(12):
            tree.insert(toy_record(toy_schema, "DE", "Munich", "red", float(i)))
        stats = collect_stats(tree)
        assert stats.n_supernodes == 1
        assert stats.level(0).avg_blocks > 1


class TestFootprint:
    def test_byte_size_grows_with_inserts(self, toy_schema):
        tree = DCTree(toy_schema)
        before = tree.byte_size()
        tree.insert(toy_record(toy_schema, "DE", "Munich", "red", 1.0))
        assert tree.byte_size() > before

    def test_page_count_positive(self):
        _schema, tree, _records = build_toy_tree()
        assert tree.page_count() >= 1


class TestInvariantChecker:
    def test_detects_corrupted_aggregate(self):
        _schema, tree, _records = build_toy_tree()
        tree.root.aggregate.summaries[0].sum += 1.0
        with pytest.raises(TreeError):
            tree.check_invariants()

    def test_detects_corrupted_mds(self):
        _schema, tree, _records = build_toy_tree()
        tree.root.mds.value_set(0).add(12345)
        with pytest.raises(TreeError):
            tree.check_invariants()

    def test_detects_wrong_record_count(self):
        _schema, tree, _records = build_toy_tree()
        tree._n_records += 1
        with pytest.raises(TreeError):
            tree.check_invariants()


# ----------------------------------------------------------------------
# property-based: the DC-tree agrees with a naive evaluation
# ----------------------------------------------------------------------

row_strategy = st.tuples(
    st.sampled_from(["DE", "FR", "US"]),
    st.sampled_from(
        ["Munich", "Berlin", "Paris", "Lyon", "NYC", "Boston", "LA"]
    ),
    st.sampled_from(["red", "blue", "green"]),
    st.floats(min_value=-100, max_value=100, allow_nan=False),
)


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=st.lists(row_strategy, min_size=1, max_size=60),
    seed=st.integers(min_value=0, max_value=5),
)
def test_tree_queries_agree_with_naive_filter(rows, seed):
    schema = build_toy_schema()
    tree = DCTree(
        schema, config=DCTreeConfig(dir_capacity=4, leaf_capacity=4)
    )
    records = []
    for row in rows:
        record = toy_record(schema, *row)
        tree.insert(record)
        records.append(record)
    tree.check_invariants()
    generator = QueryGenerator(schema, 0.5, seed=seed)
    for query in generator.queries(5):
        expected = sum(
            r.measures[0] for r in records if query.matches(r)
        )
        assert math.isclose(
            tree.range_query(query.mds), expected, abs_tol=1e-6
        )
        expected_count = sum(1 for r in records if query.matches(r))
        assert tree.range_count(query.mds) == expected_count


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=st.lists(row_strategy, min_size=4, max_size=40),
    delete_every=st.integers(min_value=2, max_value=4),
)
def test_tree_survives_random_delete_mix(rows, delete_every):
    schema = build_toy_schema()
    tree = DCTree(
        schema, config=DCTreeConfig(dir_capacity=4, leaf_capacity=4)
    )
    live = []
    for i, row in enumerate(rows):
        record = toy_record(schema, *row)
        tree.insert(record)
        live.append(record)
        if i % delete_every == 0 and len(live) > 1:
            tree.delete(live.pop(0))
    tree.check_invariants()
    query = query_from_labels(schema, {})
    assert tree.range_count(query.mds) == len(live)
    assert math.isclose(
        tree.range_query(query.mds),
        sum(r.measures[0] for r in live),
        abs_tol=1e-6,
    )


class TestSupernodeLifecycle:
    def test_grown_supernode_splits_when_separable(self, toy_schema):
        """A supernode re-attempts its split at every further overflow
        and succeeds once separable entries arrived (§4.2)."""
        from repro import DCTreeConfig

        tree = DCTree(
            toy_schema, config=DCTreeConfig(dir_capacity=4, leaf_capacity=4)
        )
        # 9 identical cells -> a 2-block supernode leaf.
        for i in range(9):
            tree.insert(toy_record(toy_schema, "DE", "Munich", "red",
                                   float(i)))
        assert tree.root.is_supernode
        blocks_before = tree.root.n_blocks
        # Distinguishable records arrive; the next overflow splits.
        for i in range(12):
            tree.insert(toy_record(toy_schema, "C%d" % (i % 3),
                                   "City%d" % i, "blue", 1.0))
        tree.check_invariants()
        assert tree.height() >= 2 or tree.root.n_blocks > blocks_before

    def test_supernode_shrinks_on_deletes(self, toy_schema):
        from repro import DCTreeConfig

        tree = DCTree(
            toy_schema, config=DCTreeConfig(dir_capacity=4, leaf_capacity=4)
        )
        records = [
            toy_record(toy_schema, "DE", "Munich", "red", float(i))
            for i in range(12)
        ]
        for record in records:
            tree.insert(record)
        assert tree.root.n_blocks >= 3
        for record in records[:8]:
            tree.delete(record)
        tree.check_invariants()
        # The root is reached via the parentless path, so only interior
        # supernodes shrink through _handle_underflow; build an interior
        # one to check the mechanism end to end instead.
        inner_tree = DCTree(
            toy_schema, config=DCTreeConfig(dir_capacity=4, leaf_capacity=4)
        )
        inner_records = []
        for i in range(40):
            record = toy_record(
                inner_tree.schema, "C%d" % (i % 4), "City%d" % (i % 2),
                "red", float(i),
            )
            # identical city labels under different countries force some
            # dense cells below directory nodes
            inner_tree.insert(record)
            inner_records.append(record)
        for record in inner_records[:30]:
            inner_tree.delete(record)
        inner_tree.check_invariants()
        assert len(inner_tree) == 10


class TestHarnessBufferEqualization:
    def test_query_phase_uses_equal_buffers(self):
        from repro.bench.harness import run_combined_sweep

        sweep = run_combined_sweep(
            sizes=(300,), selectivities=(0.25,), n_queries=3, seed=0
        )
        point = sweep.checkpoints[0]
        # Every backend was measured (buffers were swapped in); the scan
        # must miss at least its own page count per query.
        scan = point.queries[("scan", 0.25)]
        assert scan.buffer_misses > 0
        dc = point.queries[("dc-tree", 0.25)]
        assert dc.node_accesses > 0


class TestByteCapacityMode:
    @pytest.fixture
    def bytes_tree(self, tpcd_schema):
        from repro import StorageConfig

        config = DCTreeConfig(capacity_mode="bytes")
        tree = DCTree(
            tpcd_schema, config=config,
            storage_config=StorageConfig(page_size=1024, buffer_pages=0),
        )
        generator = TPCDGenerator(tpcd_schema, seed=13, scale_records=1200)
        records = generator.generate(1200)
        for record in records:
            tree.insert(record)
        return tree, records

    def test_invariants_hold(self, bytes_tree):
        tree, records = bytes_tree
        tree.check_invariants()
        assert len(tree) == len(records)

    def test_every_node_fits_its_blocks(self, bytes_tree):
        tree, _records = bytes_tree
        page_size = tree.tracker.config.page_size
        n_flat = tree.schema.n_flat_attributes
        n_measures = tree.schema.n_measures
        stack = [tree.root]
        while stack:
            node = stack.pop()
            assert node.byte_size(n_flat, n_measures) <= (
                page_size * node.n_blocks
            )
            if not node.is_leaf:
                stack.extend(node.children)

    def test_queries_agree_with_naive(self, bytes_tree):
        tree, records = bytes_tree
        for query in QueryGenerator(tree.schema, 0.2, seed=3).queries(10):
            expected = sum(
                r.measures[0] for r in records if query.matches(r)
            )
            assert math.isclose(tree.range_query(query.mds), expected,
                                abs_tol=1e-4)

    def test_deletes_work(self, bytes_tree):
        tree, records = bytes_tree
        for record in records[:200]:
            tree.delete(record)
        tree.check_invariants()
        assert len(tree) == len(records) - 200

    def test_persist_roundtrip_keeps_mode(self, bytes_tree):
        from repro import Warehouse
        from repro.persist import warehouse_from_dict, warehouse_to_dict

        tree, _records = bytes_tree
        warehouse = Warehouse.wrap(tree)
        restored = warehouse_from_dict(warehouse_to_dict(warehouse))
        assert restored.index.config.capacity_mode == "bytes"

    def test_invalid_mode_rejected(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            DCTreeConfig(capacity_mode="blocks")
