"""Unit and property tests for the X-tree baseline."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import TPCDGenerator, XTree, XTreeConfig
from repro.errors import QueryError, RecordNotFoundError, TreeError
from repro.workload.queries import QueryGenerator, query_from_labels
from repro.xtree import split as xsplit
from repro.xtree.mbr import MBR
from tests.conftest import TOY_ROWS, build_toy_schema, toy_record


def build_toy_xtree(config=None):
    schema = build_toy_schema()
    tree = XTree(schema, config=config)
    records = [toy_record(schema, *row) for row in TOY_ROWS]
    for record in records:
        tree.insert(record)
    return schema, tree, records


def full_box(schema):
    return MBR([0] * schema.n_flat_attributes,
               [0xFFFFFFFF] * schema.n_flat_attributes)


class TestInsert:
    def test_len(self):
        _schema, tree, records = build_toy_xtree()
        assert len(tree) == len(records)

    def test_all_records_reachable(self):
        _schema, tree, records = build_toy_xtree()
        assert sorted(map(hash, tree.records())) == sorted(map(hash, records))

    def test_invariants(self):
        _schema, tree, _records = build_toy_xtree()
        tree.check_invariants()

    def test_deep_tree_on_separable_data(self):
        """Data varying along one axis nests into a deep, supernode-free
        tree (clean split history)."""
        schema = build_toy_schema()
        tree = XTree(
            schema, config=XTreeConfig(dir_capacity=4, leaf_capacity=4)
        )
        for i in range(200):
            tree.insert(toy_record(schema, "DE", "City%03d" % i, "red", 1.0))
        assert tree.height() >= 4
        tree.check_invariants()

    def test_high_dimensional_data_degenerates_gracefully(self, tpcd_schema):
        """On 13-dimensional TPC-D data the X-tree degrades towards
        supernodes (its documented high-d behaviour) but stays consistent."""
        generator = TPCDGenerator(tpcd_schema, seed=5, scale_records=1200)
        tree = XTree(
            tpcd_schema, config=XTreeConfig(dir_capacity=8, leaf_capacity=8)
        )
        for record in generator.records(1200):
            tree.insert(record)
        assert tree.height() >= 2
        tree.check_invariants()

    def test_wrong_schema_record_rejected(self, tpcd_schema):
        toy = build_toy_schema()
        record = toy_record(toy, "DE", "Munich", "red", 1.0)
        tree = XTree(tpcd_schema)
        with pytest.raises(TreeError):
            tree.insert(record)

    def test_insert_charges_io(self):
        schema = build_toy_schema()
        tree = XTree(schema)
        tree.insert(toy_record(schema, "DE", "Munich", "red", 1.0))
        stats = tree.tracker.snapshot()
        assert stats.node_accesses >= 1
        assert stats.page_writes >= 1


class TestRangeQuery:
    def test_box_query_sums(self):
        schema, tree, records = build_toy_xtree()
        total = tree.range_query(full_box(schema))
        assert total == sum(r.measures[0] for r in records)

    def test_predicate_refines_box(self):
        schema, tree, _records = build_toy_xtree()
        query = query_from_labels(schema, {"Geo": ("Country", ["DE"])})
        result = tree.range_query(query.to_mbr(), query.predicate())
        assert result == 35.0

    def test_count_and_records(self):
        schema, tree, _records = build_toy_xtree()
        query = query_from_labels(schema, {"Color": ("Color", ["red"])})
        assert tree.range_count(query.to_mbr(), query.predicate()) == 3
        found = tree.range_records(query.to_mbr(), query.predicate())
        assert len(found) == 3

    def test_min_max_avg(self):
        schema, tree, _records = build_toy_xtree()
        box = full_box(schema)
        assert tree.range_query(box, op="min") == 3.0
        assert tree.range_query(box, op="max") == 40.0
        assert math.isclose(tree.range_query(box, op="avg"), 96.0 / 7)

    def test_dimension_mismatch_rejected(self):
        _schema, tree, _records = build_toy_xtree()
        with pytest.raises(QueryError):
            tree.range_query(MBR([0], [1]))

    def test_unknown_measure_rejected(self):
        schema, tree, _records = build_toy_xtree()
        with pytest.raises(QueryError):
            tree.range_query(full_box(schema), measure=9)

    def test_empty_tree_query(self, toy_schema):
        tree = XTree(toy_schema)
        assert tree.range_query(full_box(toy_schema)) == 0.0


class TestDelete:
    def test_delete_updates_len_and_sum(self):
        schema, tree, records = build_toy_xtree()
        tree.delete(records[0])
        assert len(tree) == len(records) - 1
        assert tree.range_query(full_box(schema)) == 86.0
        tree.check_invariants()

    def test_delete_missing_raises(self):
        schema, tree, _records = build_toy_xtree()
        ghost = toy_record(schema, "DE", "Munich", "red", 999.0)
        with pytest.raises(RecordNotFoundError):
            tree.delete(ghost)

    def test_delete_all(self):
        schema, tree, records = build_toy_xtree()
        for record in records:
            tree.delete(record)
        assert len(tree) == 0
        assert tree.range_count(full_box(schema)) == 0


class TestSplitAlgorithms:
    def test_topological_split_partitions(self):
        mbrs = [MBR.of_point((i, i % 3, 0)) for i in range(10)]
        plan = xsplit.topological_split(mbrs, min_group=3)
        assert sorted(plan.groups[0] + plan.groups[1]) == list(range(10))
        assert min(len(plan.groups[0]), len(plan.groups[1])) >= 3
        assert plan.kind == "topological"

    def test_topological_split_separates_clusters(self):
        cluster_a = [MBR.of_point((i, 0, 0)) for i in range(5)]
        cluster_b = [MBR.of_point((100 + i, 0, 0)) for i in range(5)]
        plan = xsplit.topological_split(cluster_a + cluster_b, min_group=2)
        groups = [set(g) for g in plan.groups]
        assert set(range(5)) in groups
        assert set(range(5, 10)) in groups

    def test_overlap_ratio_disjoint_is_zero(self):
        a = MBR([0, 0], [1, 1])
        b = MBR([5, 5], [6, 6])
        assert xsplit.overlap_ratio(a, b) == 0.0

    def test_overlap_ratio_identical_is_one(self):
        a = MBR([0, 0], [4, 4])
        assert xsplit.overlap_ratio(a, a.copy()) == 1.0

    def test_overlap_minimal_split_uses_common_history(self):
        class FakeNode:
            def __init__(self, lo, hi, history):
                self.mbr = MBR([lo], [hi])
                self.split_history = frozenset(history)

        children = [
            FakeNode(0, 2, {0}),
            FakeNode(3, 5, {0}),
            FakeNode(6, 8, {0}),
            FakeNode(9, 11, {0}),
        ]
        plan = xsplit.overlap_minimal_split(children, min_group=2)
        assert plan is not None
        assert plan.dimension == 0
        assert plan.kind == "overlap-minimal"
        left_high = max(children[i].mbr.highs[0] for i in plan.groups[0])
        right_low = min(children[i].mbr.lows[0] for i in plan.groups[1])
        assert left_high <= right_low

    def test_overlap_minimal_split_no_common_history(self):
        class FakeNode:
            def __init__(self, lo, hi, history):
                self.mbr = MBR([lo], [hi])
                self.split_history = frozenset(history)

        children = [
            FakeNode(0, 2, {0}),
            FakeNode(3, 5, {1}),
            FakeNode(6, 8, {0}),
            FakeNode(9, 11, {1}),
        ]
        assert xsplit.overlap_minimal_split(children, min_group=2) is None

    def test_supernode_created_when_no_split_possible(self, toy_schema):
        tree = XTree(
            toy_schema, config=XTreeConfig(dir_capacity=4, leaf_capacity=4)
        )
        # Identical points cannot be separated topologically... they can
        # actually (any distribution works), so force a directory supernode
        # scenario via duplicate points is not reliable; instead check that
        # leaves split fine and the structure stays valid.
        for i in range(30):
            tree.insert(toy_record(toy_schema, "DE", "Munich", "red", float(i)))
        tree.check_invariants()


class TestFootprint:
    def test_byte_size_positive(self):
        _schema, tree, _records = build_toy_xtree()
        assert tree.byte_size() > 0
        assert tree.page_count() >= 1


row_strategy = st.tuples(
    st.sampled_from(["DE", "FR", "US"]),
    st.sampled_from(["Munich", "Berlin", "Paris", "NYC"]),
    st.sampled_from(["red", "blue", "green"]),
    st.floats(min_value=-50, max_value=50, allow_nan=False),
)


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=st.lists(row_strategy, min_size=1, max_size=50),
    seed=st.integers(min_value=0, max_value=5),
)
def test_xtree_agrees_with_naive_filter(rows, seed):
    schema = build_toy_schema()
    tree = XTree(
        schema, config=XTreeConfig(dir_capacity=4, leaf_capacity=4)
    )
    records = []
    for row in rows:
        record = toy_record(schema, *row)
        tree.insert(record)
        records.append(record)
    tree.check_invariants()
    for query in QueryGenerator(schema, 0.5, seed=seed).queries(5):
        expected = sum(r.measures[0] for r in records if query.matches(r))
        actual = tree.range_query(query.to_mbr(), query.predicate())
        assert math.isclose(actual, expected, abs_tol=1e-6)
