"""Stateful (model-based) fuzzing of the DC-tree.

A hypothesis rule machine drives a DC-tree through arbitrary interleaved
operations — inserts, batched inserts, deletes, maintenance-window-style
mixed bursts, range queries, group-bys, summaries — against a trivial
in-memory model (a list of records).  After every step the tree must
agree with the model; the result cache rides along (enabled in the
machine's config), so every model comparison doubles as a cache-
freshness check — a batch that failed to bump ``tree_version`` would
serve a stale memoized answer and diverge from the model immediately.
At the end, the deep invariant audit must pass.  This is the test that
catches cross-operation interactions no scenario test thinks of.
"""

import math

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import DCTree, DCTreeConfig
from repro.workload.queries import QueryGenerator
from tests.conftest import build_toy_schema, toy_record

COUNTRIES = ("DE", "FR", "US")
CITIES = ("A", "B", "C", "D")
COLORS = ("red", "blue", "green")

row_strategy = st.tuples(
    st.sampled_from(COUNTRIES),
    st.sampled_from(CITIES),
    st.sampled_from(COLORS),
    st.floats(min_value=-100, max_value=100, allow_nan=False),
)


class DCTreeMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.schema = build_toy_schema()
        self.tree = DCTree(
            self.schema,
            config=DCTreeConfig(
                dir_capacity=4, leaf_capacity=4, use_result_cache=True,
            ),
        )
        self.model = []
        self.query_seed = 0

    # -- operations ---------------------------------------------------------

    @rule(row=row_strategy)
    def insert(self, row):
        record = toy_record(self.schema, *row)
        self.tree.insert(record)
        self.model.append(record)

    @rule(rows=st.lists(row_strategy, min_size=1, max_size=12))
    def batch_insert(self, rows):
        """One amortized batch; must bump the version exactly once."""
        records = [toy_record(self.schema, *row) for row in rows]
        version = self.tree.tree_version
        assert self.tree.insert_batch(records) == len(records)
        assert self.tree.tree_version == version + 1
        self.model.extend(records)

    @rule(
        rows=st.lists(row_strategy, min_size=1, max_size=8),
        delete_positions=st.lists(
            st.integers(min_value=0, max_value=10**6), max_size=3
        ),
    )
    def maintenance_window(self, rows, delete_positions):
        """A batch-regime window: queued deletes flush between insert runs
        (mirrors BatchWarehouse.run_maintenance_window's batching)."""
        run = [toy_record(self.schema, *row) for row in rows]
        half = len(run) // 2
        if half:
            self.tree.insert_batch(run[:half])
            self.model.extend(run[:half])
        for position in delete_positions:
            if not self.model:
                break
            record = self.model.pop(position % len(self.model))
            self.tree.delete(record)
        if run[half:]:
            self.tree.insert_batch(run[half:])
            self.model.extend(run[half:])

    @precondition(lambda self: self.model)
    @rule(index=st.integers(min_value=0, max_value=10**6))
    def delete_existing(self, index):
        record = self.model.pop(index % len(self.model))
        self.tree.delete(record)

    @rule(row=row_strategy)
    def delete_missing_raises(self, row):
        from repro.errors import RecordNotFoundError

        ghost = toy_record(self.schema, row[0], row[1], row[2], 12345.678)
        if ghost in self.model:
            return
        try:
            self.tree.delete(ghost)
        except RecordNotFoundError:
            pass
        else:
            raise AssertionError("deleting a missing record must raise")

    @rule()
    def random_range_query(self):
        self.query_seed += 1
        query = QueryGenerator(
            self.schema, 0.5, seed=self.query_seed
        ).query()
        expected_sum = sum(
            r.measures[0] for r in self.model if query.matches(r)
        )
        expected_count = sum(1 for r in self.model if query.matches(r))
        assert math.isclose(
            self.tree.range_query(query.mds), expected_sum, abs_tol=1e-6
        )
        assert self.tree.range_count(query.mds) == expected_count
        matching = [r.measures[0] for r in self.model if query.matches(r)]
        expected_max = max(matching) if matching else None
        assert self.tree.range_query(query.mds, op="max") == expected_max

    @rule(dim=st.integers(min_value=0, max_value=1))
    def group_by_matches_model(self, dim):
        level = 0
        groups = self.tree.group_by(dim, level, op="count")
        expected = {}
        for record in self.model:
            value = record.value_at_level(dim, level)
            expected[value] = expected.get(value, 0) + 1
        assert groups == expected

    @rule()
    def summary_matches_model(self):
        from repro.core.mds import MDS

        everything = MDS.all_mds(self.tree.hierarchies)
        summary = self.tree.range_summary(everything)
        assert summary.aggregate("count") == len(self.model)
        assert math.isclose(
            summary.aggregate("sum"),
            sum(r.measures[0] for r in self.model),
            abs_tol=1e-6,
        )

    # -- continuous checks --------------------------------------------------

    @invariant()
    def length_matches(self):
        if hasattr(self, "tree"):
            assert len(self.tree) == len(self.model)

    @invariant()
    def structure_is_sound(self):
        if hasattr(self, "tree"):
            self.tree.check_invariants()


TestDCTreeStateful = DCTreeMachine.TestCase
TestDCTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
