"""Stateful (model-based) fuzzing of the DC-tree.

A hypothesis rule machine drives a DC-tree through arbitrary interleaved
operations — inserts, deletes, range queries, group-bys, summaries —
against a trivial in-memory model (a list of records).  After every step
the tree must agree with the model; at the end, the deep invariant audit
must pass.  This is the test that catches cross-operation interactions
no scenario test thinks of.
"""

import math

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import DCTree, DCTreeConfig
from repro.workload.queries import QueryGenerator
from tests.conftest import build_toy_schema, toy_record

COUNTRIES = ("DE", "FR", "US")
CITIES = ("A", "B", "C", "D")
COLORS = ("red", "blue", "green")

row_strategy = st.tuples(
    st.sampled_from(COUNTRIES),
    st.sampled_from(CITIES),
    st.sampled_from(COLORS),
    st.floats(min_value=-100, max_value=100, allow_nan=False),
)


class DCTreeMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.schema = build_toy_schema()
        self.tree = DCTree(
            self.schema,
            config=DCTreeConfig(dir_capacity=4, leaf_capacity=4),
        )
        self.model = []
        self.query_seed = 0

    # -- operations ---------------------------------------------------------

    @rule(row=row_strategy)
    def insert(self, row):
        record = toy_record(self.schema, *row)
        self.tree.insert(record)
        self.model.append(record)

    @precondition(lambda self: self.model)
    @rule(index=st.integers(min_value=0, max_value=10**6))
    def delete_existing(self, index):
        record = self.model.pop(index % len(self.model))
        self.tree.delete(record)

    @rule(row=row_strategy)
    def delete_missing_raises(self, row):
        from repro.errors import RecordNotFoundError

        ghost = toy_record(self.schema, row[0], row[1], row[2], 12345.678)
        if ghost in self.model:
            return
        try:
            self.tree.delete(ghost)
        except RecordNotFoundError:
            pass
        else:
            raise AssertionError("deleting a missing record must raise")

    @rule()
    def random_range_query(self):
        self.query_seed += 1
        query = QueryGenerator(
            self.schema, 0.5, seed=self.query_seed
        ).query()
        expected_sum = sum(
            r.measures[0] for r in self.model if query.matches(r)
        )
        expected_count = sum(1 for r in self.model if query.matches(r))
        assert math.isclose(
            self.tree.range_query(query.mds), expected_sum, abs_tol=1e-6
        )
        assert self.tree.range_count(query.mds) == expected_count
        matching = [r.measures[0] for r in self.model if query.matches(r)]
        expected_max = max(matching) if matching else None
        assert self.tree.range_query(query.mds, op="max") == expected_max

    @rule(dim=st.integers(min_value=0, max_value=1))
    def group_by_matches_model(self, dim):
        level = 0
        groups = self.tree.group_by(dim, level, op="count")
        expected = {}
        for record in self.model:
            value = record.value_at_level(dim, level)
            expected[value] = expected.get(value, 0) + 1
        assert groups == expected

    @rule()
    def summary_matches_model(self):
        from repro.core.mds import MDS

        everything = MDS.all_mds(self.tree.hierarchies)
        summary = self.tree.range_summary(everything)
        assert summary.aggregate("count") == len(self.model)
        assert math.isclose(
            summary.aggregate("sum"),
            sum(r.measures[0] for r in self.model),
            abs_tol=1e-6,
        )

    # -- continuous checks --------------------------------------------------

    @invariant()
    def length_matches(self):
        if hasattr(self, "tree"):
            assert len(self.tree) == len(self.model)

    @invariant()
    def structure_is_sound(self):
        if hasattr(self, "tree"):
            self.tree.check_invariants()


TestDCTreeStateful = DCTreeMachine.TestCase
TestDCTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
