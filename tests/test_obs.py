"""Tests for the unified telemetry layer (``repro.obs``).

Four contracts:

* spans nest correctly, carry attributes and export both machine- and
  human-readable forms;
* the metrics registry snapshots and renders valid Prometheus text
  exposition (including its escaping rules);
* EXPLAIN per-level totals reconcile *exactly* with the StorageTracker
  delta of the profiled query, on cold runs and cache hits alike;
* observability is strictly observational — deterministic counters,
  query answers and ``tree_version`` are bit-identical with the layer
  on or off (property-tested over seeded workloads).
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DCTreeConfig
from repro.core.tree import DCTree
from repro.errors import QueryError
from repro.obs import (
    ExplainResult,
    MetricsRegistry,
    Observability,
    Tracer,
    observe_dctree,
    warehouse_registry,
)
from repro.persist.durable import DurableWarehouse
from repro.tpcd.generator import TPCDGenerator
from repro.warehouse import Warehouse
from repro.workload.queries import QueryGenerator, query_from_labels
from tests.conftest import TOY_ROWS, build_toy_schema, toy_record


class FakeClock:
    """Deterministic, manually advanced timestamp source."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 0.25
        return self.now


def build_tree(observability=True, rows=TOY_ROWS, **config_kwargs):
    """Toy tree with tiny node capacities, so even the 7 toy rows build
    a directory level (EXPLAIN has entries to classify)."""
    schema = build_toy_schema()
    config_kwargs.setdefault("dir_capacity", 4)
    config_kwargs.setdefault("leaf_capacity", 4)
    tree = DCTree(schema, config=DCTreeConfig(
        observability=observability, **config_kwargs
    ))
    for row in rows:
        tree.insert(toy_record(schema, *row))
    return schema, tree


def counter_tuple(tree):
    snap = tree.tracker.snapshot()
    return (snap.node_accesses, snap.buffer_hits, snap.buffer_misses,
            snap.page_writes, snap.cpu_units)


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------


class TestTracer:
    def test_nesting_and_parent_ids(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", op="sum") as outer:
            with tracer.span("inner") as inner:
                inner.set(node=7)
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root is outer
        assert root.parent_id is None
        assert root.children == [inner]
        assert inner.parent_id == root.span_id
        assert inner.attributes == {"node": 7}
        assert root.attributes == {"op": "sum"}

    def test_walk_yields_depths(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        walked = [(s.name, depth) for s, depth in tracer.roots[0].walk()]
        assert walked == [("a", 0), ("b", 1), ("c", 2), ("d", 1)]

    def test_durations_from_clock(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("timed") as span:
            assert span.duration == 0.0  # still open
        # clock ticks 0.25 per call: start and end are one tick apart
        # for a leaf span with no children.
        assert span.duration == pytest.approx(0.25)

    def test_bounded_ring_drops_oldest(self):
        tracer = Tracer(max_roots=2, clock=FakeClock())
        for index in range(5):
            with tracer.span("op", index=index):
                pass
        assert len(tracer.roots) == 2
        assert [s.attributes["index"] for s in tracer.roots] == [3, 4]
        assert tracer.dropped_roots == 3
        assert tracer.span_counts == {"op": 5}

    def test_on_finish_sees_children_before_roots(self):
        finished = []
        tracer = Tracer(clock=FakeClock(),
                        on_finish=lambda s: finished.append(s.name))
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert finished == ["child", "root"]

    def test_export_jsonl_round_trips(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("query", mds="abc"):
            with tracer.span("visit"):
                pass
        lines = [json.loads(line)
                 for line in tracer.export_jsonl().splitlines()]
        assert [line["name"] for line in lines] == ["query", "visit"]
        assert lines[0]["parent"] is None
        assert lines[1]["parent"] == lines[0]["id"]
        assert lines[0]["attributes"] == {"mds": "abc"}

    def test_render_indents_and_reports_drops(self):
        tracer = Tracer(max_roots=1, clock=FakeClock())
        with tracer.span("first"):
            pass
        with tracer.span("second", op="sum"):
            with tracer.span("nested"):
                pass
        text = tracer.render()
        assert "1 earlier trace(s) dropped" in text
        assert "second" in text and "\n  nested" in text
        assert "{op=sum}" in text

    def test_clear_resets_retention(self):
        tracer = Tracer(max_roots=1, clock=FakeClock())
        for _ in range(3):
            with tracer.span("op"):
                pass
        tracer.clear()
        assert len(tracer.roots) == 0
        assert tracer.dropped_roots == 0
        assert tracer.span_counts == {}


class TestObservability:
    def test_finished_spans_feed_registry(self):
        obs = Observability(clock=FakeClock())
        with obs.span("insert"):
            pass
        with obs.span("insert"):
            pass
        counter = obs.registry.get("repro_spans_total", name="insert")
        assert counter.snapshot_value() == 2
        histogram = obs.registry.get("repro_span_seconds", name="insert")
        assert histogram.snapshot_value()["count"] == 2


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.counter("ops_total").inc()
        registry.counter("ops_total").inc(4)
        registry.gauge("depth").set(3)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        snap = registry.snapshot()
        assert snap["ops_total"]["samples"][0]["value"] == 5
        assert snap["depth"]["samples"][0]["value"] == 3
        assert snap["lat"]["samples"][0]["value"]["count"] == 1

    def test_counters_never_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("ops_total").inc(-1)

    def test_kind_is_sticky(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_labels_fan_out_children(self):
        registry = MetricsRegistry()
        registry.counter("wal_appends_total", op="insert").inc(2)
        registry.counter("wal_appends_total", op="delete").inc()
        snap = registry.snapshot()["wal_appends_total"]
        by_op = {
            sample["labels"]["op"]: sample["value"]
            for sample in snap["samples"]
        }
        assert by_op == {"insert": 2, "delete": 1}

    def test_name_is_a_legal_label(self):
        # ``name=`` must land in **labels, not collide with the
        # positional metric name (the span bridge depends on this).
        registry = MetricsRegistry()
        registry.counter("spans_total", name="insert").inc()
        assert registry.get("spans_total", name="insert") is not None

    def test_prometheus_escaping(self):
        registry = MetricsRegistry()
        registry.counter(
            "weird_total", "help with \\ backslash\nand newline",
            path='va"l\\ue\nx',
        ).inc()
        text = registry.render_prometheus()
        assert ("# HELP weird_total help with \\\\ backslash\\n"
                "and newline") in text
        assert 'path="va\\"l\\\\ue\\nx"' in text
        assert "# TYPE weird_total counter" in text

    def test_prometheus_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(99.0)
        text = registry.render_prometheus()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text

    def test_snapshot_json_is_valid(self):
        registry = MetricsRegistry()
        registry.gauge("g", "a gauge").set(1.5)
        assert json.loads(registry.snapshot_json()) == registry.snapshot()


# ----------------------------------------------------------------------
# EXPLAIN profiles
# ----------------------------------------------------------------------

WHERE_DE = {"Geo": ("Country", ["DE"])}


class TestExplain:
    def test_range_query_reconciles_with_tracker_delta(self):
        schema, tree = build_tree()
        query = query_from_labels(schema, WHERE_DE)
        before = tree.tracker.snapshot()
        value, profile = tree.range_query(query.mds, explain=True)
        delta = tree.tracker.snapshot() - before
        assert value == tree.range_query(query.mds)
        assert profile.reconciles()
        # the profile's own delta is the full external delta too
        assert profile.total_node_accesses == delta.node_accesses
        assert profile.total_page_ios == delta.page_ios
        assert profile.total_cpu_units == delta.cpu_units
        assert profile.levels[0].depth == 0
        assert sum(level.records_scanned for level in profile.levels) >= 0

    def test_cache_hit_charges_match_miss(self):
        schema, tree = build_tree()
        query = query_from_labels(schema, WHERE_DE)
        _, miss_profile = tree.range_query(query.mds, explain=True)
        assert miss_profile.cache_outcome == "miss"
        before = counter_tuple(tree)
        value, hit_profile = tree.range_query(query.mds, explain=True)
        assert hit_profile.cache_outcome == "hit"
        assert hit_profile.reconciles()
        # counter invisibility: the hit recomputes but charges exactly
        # what a replayed hit (or the original miss) would have charged
        assert hit_profile.delta.node_accesses \
            == miss_profile.delta.node_accesses
        assert hit_profile.delta.cpu_units == miss_profile.delta.cpu_units
        assert counter_tuple(tree) != before  # it did charge

    def test_cache_disabled_outcome(self):
        schema, tree = build_tree(use_result_cache=False)
        query = query_from_labels(schema, WHERE_DE)
        _, profile = tree.range_query(query.mds, explain=True)
        assert profile.cache_outcome == "disabled"
        assert profile.reconciles()

    def test_group_by_explain_reconciles(self):
        schema, tree = build_tree()
        result = tree.group_by(0, 1, explain=True)  # Geo by Country
        assert isinstance(result, ExplainResult)
        groups, profile = result
        assert profile.kind == "group_by"
        assert profile.reconciles()
        assert groups == tree.group_by(0, 1)

    def test_classifications_recorded(self):
        schema, tree = build_tree()
        query = query_from_labels(schema, WHERE_DE)
        _, profile = tree.range_query(query.mds, explain=True)
        total = sum(
            level.disjoint + level.partial + level.contained
            for level in profile.levels
        )
        assert total > 0

    def test_render_and_to_dict(self):
        schema, tree = build_tree()
        query = query_from_labels(schema, WHERE_DE)
        _, profile = tree.range_query(query.mds, explain=True)
        text = profile.render()
        assert "EXPLAIN range_query op=sum" in text
        assert "reconcile with tracker delta: OK" in text
        payload = profile.to_dict()
        assert payload["reconciles"] is True
        assert payload["totals"]["node_accesses"] \
            == profile.total_node_accesses
        json.dumps(payload)  # must be a JSON-ready dict

    def test_explain_works_without_observability(self):
        # EXPLAIN is per-call and independent of the config switch.
        schema, tree = build_tree(observability=False)
        query = query_from_labels(schema, WHERE_DE)
        value, profile = tree.range_query(query.mds, explain=True)
        assert profile.reconciles()
        assert value == tree.range_query(query.mds)

    def test_warehouse_explain_surface(self):
        warehouse = Warehouse(build_toy_schema())
        for row in TOY_ROWS:
            warehouse.insert_record(toy_record(warehouse.schema, *row))
        result = warehouse.query("sum", where=WHERE_DE, explain=True)
        value, profile = result
        assert value == warehouse.query("sum", where=WHERE_DE)
        assert profile.reconciles()
        groups, profile = warehouse.group_by(
            "Geo", "Country", explain=True
        )
        assert groups == warehouse.group_by("Geo", "Country")
        assert profile.reconciles()

    def test_explain_requires_dc_tree_backend(self):
        warehouse = Warehouse(build_toy_schema(), backend="scan")
        with pytest.raises(QueryError, match="dc-tree"):
            warehouse.query("sum", explain=True)
        with pytest.raises(QueryError, match="dc-tree"):
            warehouse.group_by("Geo", "Country", explain=True)

    def test_tpcd_explain_reconciles(self, tpcd_schema):
        generator = TPCDGenerator(tpcd_schema, seed=5, scale_records=300)
        tree = DCTree(tpcd_schema, config=DCTreeConfig(observability=True))
        for record in generator.generate(300):
            tree.insert(record)
        for selectivity in (0.01, 0.25):
            query = QueryGenerator(tpcd_schema, selectivity, seed=7).query()
            _, profile = tree.range_query(query.mds, explain=True)
            assert profile.reconciles()


# ----------------------------------------------------------------------
# invariance: telemetry must be strictly observational
# ----------------------------------------------------------------------


class TestInvariance:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), n_records=st.integers(20, 120))
    def test_counters_results_bit_identical(self, seed, n_records):
        trees = {}
        for key, flag in (("on", True), ("off", False)):
            schema = build_toy_schema()
            tree = DCTree(schema, config=DCTreeConfig(observability=flag))
            rng = random.Random(seed)
            countries = ("DE", "FR", "US")
            colors = ("red", "blue", "green")
            records = []
            for index in range(n_records):
                record = toy_record(
                    schema, rng.choice(countries), "City%d" % (index % 9),
                    rng.choice(colors), float(rng.randrange(1, 50)),
                )
                tree.insert(record)
                records.append(record)
            answers = [
                tree.range_query(query_from_labels(
                    schema, {"Geo": ("Country", [country])}
                ).mds)
                for country in countries
            ]
            answers.append(sorted(tree.group_by(1, 0).items()))
            tree.delete(records[0])
            answers.append(tree.range_query(query_from_labels(
                schema, {}
            ).mds))
            trees[key] = (counter_tuple(tree), tree.tree_version, answers)
        assert trees["on"] == trees["off"]

    def test_explain_leaves_counters_identical(self):
        # the same query with and without explain=True charges the same
        schema_a, tree_a = build_tree()
        schema_b, tree_b = build_tree()
        query_a = query_from_labels(schema_a, WHERE_DE)
        query_b = query_from_labels(schema_b, WHERE_DE)
        for _ in range(2):  # cold then cache-hit
            plain = tree_a.range_query(query_a.mds)
            explained, _profile = tree_b.range_query(
                query_b.mds, explain=True
            )
            assert plain == explained
            assert counter_tuple(tree_a) == counter_tuple(tree_b)
            assert tree_a.tree_version == tree_b.tree_version


# ----------------------------------------------------------------------
# bridges, durability telemetry, back-compat
# ----------------------------------------------------------------------


class TestBridgesAndDurability:
    def test_observe_dctree_publishes_gauges(self):
        schema, tree = build_tree()
        registry = MetricsRegistry()
        observe_dctree(registry, tree)
        snap = registry.snapshot()
        assert snap["dctree_records"]["samples"][0]["value"] == len(TOY_ROWS)
        assert snap["dctree_tree_version"]["samples"][0]["value"] \
            == tree.tree_version
        assert "storage_node_accesses" in snap
        assert "result_cache_size" in snap

    def test_warehouse_registry_reuses_live_registry(self):
        warehouse = Warehouse(
            build_toy_schema(), config=DCTreeConfig(observability=True)
        )
        for row in TOY_ROWS:
            warehouse.insert_record(toy_record(warehouse.schema, *row))
        registry = warehouse_registry(warehouse)
        assert registry is warehouse.observability.registry
        snap = registry.snapshot()
        assert "repro_spans_total" in snap  # insert spans landed here
        assert "dctree_records" in snap

    def test_tree_spans_and_counters(self):
        schema, tree = build_tree()
        counts = tree.observability.tracer.span_counts
        assert counts["insert"] == len(TOY_ROWS)
        assert counts.get("choose_subtree", 0) > 0
        inserts = tree.observability.registry.get("dctree_inserts_total")
        assert inserts.snapshot_value() == len(TOY_ROWS)

    def test_wal_checkpoint_recovery_telemetry(self, tmp_path):
        directory = tmp_path / "dw"
        warehouse = Warehouse(
            build_toy_schema(), config=DCTreeConfig(observability=True)
        )
        session = DurableWarehouse.create(directory, warehouse)
        try:
            for row in TOY_ROWS[:3]:
                session.insert_record(toy_record(warehouse.schema, *row))
            session.checkpoint()
            for row in TOY_ROWS[3:5]:
                session.insert_record(toy_record(warehouse.schema, *row))
        finally:
            session.close()
        registry = warehouse.observability.registry
        appends = registry.get("wal_appends_total", op="insert")
        assert appends.snapshot_value() == 5
        assert registry.get("checkpoints_total").snapshot_value() == 1
        counts = warehouse.observability.tracer.span_counts
        assert counts["wal.append"] == 5
        assert counts["checkpoint"] == 1

        # recover (2 uncheckpointed inserts replay) with telemetry on
        recovered = DurableWarehouse.open(
            directory, config=DCTreeConfig(observability=True)
        )
        try:
            report = recovered.report
            assert report.applied_inserts == 2
            assert report.wal_bytes_scanned > 0
            assert report.checkpoint_age_seconds is not None
            obs = recovered.warehouse.observability
            assert obs.tracer.span_counts["recovery.replay"] == 1
            applied = obs.registry.get("recovery_applied_inserts")
            assert applied.snapshot_value() == 2
            scanned = obs.registry.get("recovery_wal_bytes_scanned")
            assert scanned.snapshot_value() == report.wal_bytes_scanned
        finally:
            recovered.close()

    def test_recovery_report_publish_metrics_standalone(self, tmp_path):
        directory = tmp_path / "dw"
        warehouse = Warehouse(build_toy_schema())
        session = DurableWarehouse.create(directory, warehouse)
        try:
            for row in TOY_ROWS[:2]:
                session.insert_record(toy_record(warehouse.schema, *row))
        finally:
            session.close()
        recovered = DurableWarehouse.open(directory)
        try:
            registry = MetricsRegistry()
            recovered.report.publish_metrics(registry)
            snap = registry.snapshot()
            assert snap["recovery_applied_inserts"]["samples"][0]["value"] \
                == 2
            assert snap["recovery_validated"]["samples"][0]["value"] == 1
            assert snap["recovery_wal_bytes_scanned"]["samples"][0]["value"] \
                > 0
        finally:
            recovered.close()

    def test_describe_result_cache_back_compat(self):
        from repro.core.debug import describe_result_cache as legacy
        from repro.obs.metrics import describe_result_cache as canonical

        assert legacy is canonical
        schema, tree = build_tree()
        assert "result-cache" in legacy(tree)


class TestConfig:
    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBSERVABILITY", "1")
        assert DCTreeConfig().observability is True
        assert DCTreeConfig(observability=False).observability is False
        monkeypatch.setenv("REPRO_OBSERVABILITY", "0")
        assert DCTreeConfig().observability is False
        monkeypatch.delenv("REPRO_OBSERVABILITY")
        assert DCTreeConfig().observability is False

    def test_off_by_default_means_no_bundle(self):
        schema, tree = build_tree(observability=False)
        assert tree.observability is None
