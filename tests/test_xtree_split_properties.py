"""Property tests for the X-tree split algorithms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xtree import split as xsplit
from repro.xtree.mbr import MBR

points = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    ),
    min_size=5,
    max_size=40,
)


@given(points)
@settings(deadline=None, max_examples=60)
def test_topological_split_partitions_and_balances(pts):
    mbrs = [MBR.of_point(p) for p in pts]
    min_group = max(2, len(mbrs) * 35 // 100)
    plan = xsplit.topological_split(mbrs, min_group)
    left, right = plan.groups
    assert sorted(left + right) == list(range(len(mbrs)))
    assert not set(left) & set(right)
    assert min(len(left), len(right)) >= min_group
    assert 0 <= plan.dimension < 3


@given(points)
@settings(deadline=None, max_examples=60)
def test_topological_split_minimizes_among_candidates(pts):
    """The chosen distribution's overlap is minimal on the chosen axis."""
    mbrs = [MBR.of_point(p) for p in pts]
    min_group = 2
    plan = xsplit.topological_split(mbrs, min_group)
    left = MBR.cover_of(mbrs[i] for i in plan.groups[0])
    right = MBR.cover_of(mbrs[i] for i in plan.groups[1])
    chosen_overlap = left.overlap_volume_plus_one(right)

    axis = plan.dimension
    order = sorted(
        range(len(mbrs)),
        key=lambda i: (mbrs[i].lows[axis], mbrs[i].highs[axis]),
    )
    for k in range(min_group, len(mbrs) - min_group + 1):
        a = MBR.cover_of(mbrs[i] for i in order[:k])
        b = MBR.cover_of(mbrs[i] for i in order[k:])
        assert chosen_overlap <= a.overlap_volume_plus_one(b) + 1e-9


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=0, max_value=10),
        ),
        min_size=4,
        max_size=20,
    )
)
@settings(deadline=None, max_examples=60)
def test_overlap_minimal_split_yields_disjoint_sides(intervals):
    class FakeNode:
        def __init__(self, lo, width):
            self.mbr = MBR([lo], [lo + width])
            self.split_history = frozenset({0})

    children = [FakeNode(lo, width) for lo, width in intervals]
    plan = xsplit.overlap_minimal_split(children, min_group=2)
    if plan is None:
        return  # legitimately unsplittable (e.g. everything overlaps)
    left, right = plan.groups
    assert sorted(left + right) == list(range(len(children)))
    left_high = max(children[i].mbr.highs[0] for i in left)
    right_low = min(children[i].mbr.lows[0] for i in right)
    assert left_high <= right_low


@given(points, st.integers(min_value=0, max_value=2))
@settings(deadline=None, max_examples=40)
def test_overlap_ratio_bounds(pts, axis):
    mbrs = [MBR.of_point(p) for p in pts]
    half = len(mbrs) // 2
    a = MBR.cover_of(mbrs[:half] or mbrs[:1])
    b = MBR.cover_of(mbrs[half:] or mbrs[-1:])
    ratio = xsplit.overlap_ratio(a, b)
    assert 0.0 <= ratio <= 1.0
    assert xsplit.overlap_ratio(a, a.copy()) == 1.0
