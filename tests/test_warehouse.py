"""Unit tests for the Warehouse facade."""

import math

import pytest

from repro import (
    DCTreeConfig,
    Warehouse,
    XTreeConfig,
    make_tpcd_schema,
)
from repro.errors import SchemaError
from repro.workload.queries import QueryGenerator, query_from_labels
from tests.conftest import TOY_ROWS, build_toy_schema


def populate(warehouse):
    for country, city, color, sales in TOY_ROWS:
        warehouse.insert(((country, city), (color,)), (sales,))


class TestConstruction:
    def test_unknown_backend_rejected(self):
        with pytest.raises(SchemaError):
            Warehouse(build_toy_schema(), backend="b-tree")

    def test_backend_config_type_checked(self):
        with pytest.raises(SchemaError):
            Warehouse(build_toy_schema(), "dc-tree", config=XTreeConfig())
        with pytest.raises(SchemaError):
            Warehouse(build_toy_schema(), "x-tree", config=DCTreeConfig())

    def test_tpcd_classmethod(self):
        warehouse = Warehouse.tpcd()
        assert warehouse.schema.n_dimensions == 4
        assert warehouse.backend == "dc-tree"

    def test_repr(self):
        warehouse = Warehouse(build_toy_schema())
        assert "dc-tree" in repr(warehouse)


@pytest.mark.parametrize("backend", ["dc-tree", "x-tree", "scan"])
class TestAllBackends:
    def test_insert_and_len(self, backend):
        warehouse = Warehouse(build_toy_schema(), backend)
        populate(warehouse)
        assert len(warehouse) == len(TOY_ROWS)

    def test_query_by_labels(self, backend):
        warehouse = Warehouse(build_toy_schema(), backend)
        populate(warehouse)
        assert warehouse.query(
            "sum", where={"Geo": ("Country", ["DE"])}
        ) == 35.0

    def test_count(self, backend):
        warehouse = Warehouse(build_toy_schema(), backend)
        populate(warehouse)
        assert warehouse.count(where={"Color": ("Color", ["red"])}) == 3

    def test_execute_prepared_query(self, backend):
        warehouse = Warehouse(build_toy_schema(), backend)
        populate(warehouse)
        query = query_from_labels(
            warehouse.schema, {"Geo": ("City", ["Munich"])}
        )
        assert warehouse.execute(query) == 30.0

    def test_records_matching(self, backend):
        warehouse = Warehouse(build_toy_schema(), backend)
        populate(warehouse)
        query = query_from_labels(
            warehouse.schema, {"Geo": ("Country", ["US"])}
        )
        assert len(warehouse.records_matching(query)) == 2

    def test_delete(self, backend):
        warehouse = Warehouse(build_toy_schema(), backend)
        populate(warehouse)
        record = warehouse.insert((("IT", "Rome"), ("red",)), (100.0,))
        warehouse.delete(record)
        assert len(warehouse) == len(TOY_ROWS)
        assert warehouse.query("sum") == 96.0

    def test_tracker_and_footprint(self, backend):
        warehouse = Warehouse(build_toy_schema(), backend)
        populate(warehouse)
        assert warehouse.tracker.snapshot().node_accesses > 0
        assert warehouse.byte_size() > 0


class TestQueryValidation:
    def test_execute_requires_range_query(self):
        warehouse = Warehouse(build_toy_schema())
        with pytest.raises(SchemaError):
            warehouse.execute("not a query")

    def test_execute_rejects_foreign_schema_query(self):
        warehouse = Warehouse(build_toy_schema())
        other_schema = build_toy_schema()
        query = query_from_labels(other_schema, {})
        with pytest.raises(SchemaError):
            warehouse.execute(query)


class TestCrossBackendAgreement:
    def test_all_backends_agree_on_tpcd(self):
        schema = make_tpcd_schema()
        from repro import TPCDGenerator

        generator = TPCDGenerator(schema, seed=11, scale_records=300)
        records = generator.generate(300)
        warehouses = {
            backend: Warehouse(schema, backend)
            for backend in ("dc-tree", "x-tree", "scan")
        }
        for record in records:
            for warehouse in warehouses.values():
                warehouse.insert_record(record)
        for query in QueryGenerator(schema, 0.1, seed=3).queries(15):
            results = {
                backend: warehouse.execute(query)
                for backend, warehouse in warehouses.items()
            }
            values = list(results.values())
            assert math.isclose(values[0], values[1], abs_tol=1e-6)
            assert math.isclose(values[1], values[2], abs_tol=1e-6)


@pytest.mark.parametrize("backend", ["dc-tree", "x-tree", "scan"])
class TestSummaryAndEstimate:
    def test_summary_matches_queries(self, backend):
        warehouse = Warehouse(build_toy_schema(), backend)
        populate(warehouse)
        where = {"Geo": ("Country", ["DE"])}
        summary = warehouse.summary(where=where)
        assert summary.aggregate("sum") == warehouse.query("sum", where=where)
        assert summary.aggregate("count") == warehouse.count(where=where)
        assert summary.aggregate("min") == warehouse.query(
            "min", where=where
        )
        assert summary.aggregate("max") == warehouse.query(
            "max", where=where
        )

    def test_summary_unconstrained(self, backend):
        warehouse = Warehouse(build_toy_schema(), backend)
        populate(warehouse)
        summary = warehouse.summary()
        assert summary.aggregate("count") == len(warehouse)

    def test_estimate_positive_for_matching_range(self, backend):
        warehouse = Warehouse(build_toy_schema(), backend)
        populate(warehouse)
        estimate = warehouse.estimate(where={"Geo": ("Country", ["DE"])})
        assert estimate > 0
        assert estimate <= len(warehouse)
