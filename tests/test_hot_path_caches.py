"""Equivalence suite for the hot-path acceleration layer.

The flattened ancestor tables, the versioned MDS adaptation memo and the
fused classify() test must be semantically invisible: every operation
returns identical results with the layer on (the default) and off
(``repro.hotpath.disabled()`` + ``DCTreeConfig(use_hot_path_caches=False)``,
which together restore the legacy parent-walking/uncached/two-call code
paths).  Property tests drive random hierarchies, MDS pairs and whole
trees through both modes.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro import hotpath
from repro.bench import regression
from repro.config import DCTreeConfig
from repro.core import mds as mds_mod
from repro.core.mds import MDS
from repro.core.tree import DCTree
from repro.cube.schema import CubeSchema, Dimension, Measure
from repro.workload.queries import QueryGenerator

REGIONS = ("EU", "NA", "ASIA")
NATIONS = ("DE", "FR", "US", "CA", "JP")
COLORS = ("red", "green", "blue", "black")


def build_schema():
    return CubeSchema(
        dimensions=[
            Dimension("Geo", ("City", "Nation", "Region")),
            Dimension("Color", ("Color",)),
        ],
        measures=[Measure("Sales")],
    )


def make_records(schema, n, seed, city_pool=40):
    rng = random.Random(seed)
    records = []
    for index in range(n):
        region = rng.choice(REGIONS)
        nation = rng.choice(NATIONS)
        city = "city%d" % rng.randrange(city_pool)
        color = rng.choice(COLORS)
        records.append(
            schema.record(
                ((region, nation, city), (color,)),
                (float(rng.randrange(1, 1000)),),
            )
        )
        del index
    return records


rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(REGIONS),
        st.sampled_from(NATIONS),
        st.integers(min_value=0, max_value=9),
        st.sampled_from(COLORS),
    ),
    min_size=1,
    max_size=25,
)


def populate(rows):
    """Build the schema and insert each row's path into the hierarchies."""
    schema = build_schema()
    records = [
        schema.record(
            ((region, nation, "city%d" % city), (color,)), (1.0,)
        )
        for region, nation, city, color in rows
    ]
    return schema, records


def draw_mds(draw, schema):
    """One random MDS over the populated hierarchies."""
    sets = []
    levels = []
    for dimension in schema.dimensions:
        hierarchy = dimension.hierarchy
        level = draw(st.integers(min_value=0, max_value=hierarchy.top_level))
        if level >= hierarchy.top_level:
            values = {hierarchy.all_id}
        else:
            candidates = sorted(hierarchy.values_at_level(level))
            values = draw(
                st.sets(st.sampled_from(candidates), min_size=1)
            )
        levels.append(level)
        sets.append(values)
    return MDS(sets, levels)


@st.composite
def mds_pairs(draw):
    rows = draw(rows_strategy)
    schema, _ = populate(rows)
    return schema, draw_mds(draw, schema), draw_mds(draw, schema)


class TestAncestorTables:
    @given(rows=rows_strategy)
    def test_ancestor_matches_parent_walk(self, rows):
        schema, _ = populate(rows)
        for dimension in schema.dimensions:
            hierarchy = dimension.hierarchy
            for level in range(hierarchy.top_level + 1):
                for value in hierarchy.values_at_level(level):
                    for target in range(level, hierarchy.top_level + 1):
                        fast = hierarchy.ancestor(value, target)
                        with hotpath.disabled():
                            slow = hierarchy.ancestor(value, target)
                        assert fast == slow

    def test_ancestors_of_spans_to_all(self):
        schema, records = populate([("EU", "DE", 1, "red")])
        hierarchy = schema.dimensions[0].hierarchy
        leaf = records[0].leaf_value(0)
        ancestors = hierarchy.ancestors_of(leaf)
        assert ancestors[0] == leaf
        assert ancestors[-1] == hierarchy.all_id
        assert len(ancestors) == hierarchy.top_level + 1

    def test_table_grows_with_dynamic_insertion(self):
        schema, _ = populate([("EU", "DE", 1, "red")])
        hierarchy = schema.dimensions[0].hierarchy
        path = hierarchy.insert_path(("NA", "CA", "city99"))
        assert hierarchy.ancestor(path[-1], hierarchy.top_level) \
            == hierarchy.all_id
        assert hierarchy.ancestor(path[-1], 2) == path[0]

    def test_restore_rebuilds_tables(self):
        schema, _ = populate(
            [("EU", "DE", 1, "red"), ("NA", "US", 2, "blue")]
        )
        source = schema.dimensions[0].hierarchy
        from repro.cube.hierarchy import ConceptHierarchy

        clone = ConceptHierarchy(source.name, source.level_names)
        clone.restore_nodes(source.dump_nodes())
        for level in range(source.top_level + 1):
            for value in source.values_at_level(level):
                for target in range(level, source.top_level + 1):
                    assert clone.ancestor(value, target) \
                        == source.ancestor(value, target)


class TestAdaptationMemo:
    @given(pair=mds_pairs())
    def test_cached_equals_uncached(self, pair):
        schema, mds, _ = pair
        for dim, dimension in enumerate(schema.dimensions):
            hierarchy = dimension.hierarchy
            for target in range(mds.level(dim), hierarchy.top_level + 1):
                cached = mds.adapted_set(dim, target, hierarchy)
                with hotpath.disabled():
                    uncached = mds.adapted_set(dim, target, hierarchy)
                assert set(cached) == set(uncached)

    def test_memo_hit_returns_same_object(self):
        schema, records = populate([("EU", "DE", 1, "red")])
        hierarchies = tuple(d.hierarchy for d in schema.dimensions)
        hierarchy = hierarchies[0]
        mds = MDS.for_record(records[0], (0, 0), hierarchies)
        first = mds.adapted_set(0, 2, hierarchy)
        second = mds.adapted_set(0, 2, hierarchy)
        assert first is second

    def test_mutators_bump_version_and_invalidate(self):
        schema, records = populate(
            [("EU", "DE", 1, "red"), ("NA", "US", 2, "blue")]
        )
        hierarchies = tuple(d.hierarchy for d in schema.dimensions)
        hierarchy = hierarchies[0]
        mds = MDS.for_record(records[0], (0, 0), hierarchies)
        before = mds.adapted_set(0, 2, hierarchy)
        version = mds.version
        mds.add_record(records[1], hierarchies)
        assert mds.version > version
        after = mds.adapted_set(0, 2, hierarchy)
        assert after != before
        assert records[1].value_at_level(0, 2) in after

        version = mds.version
        other = MDS.for_record(records[0], (0, 0), hierarchies)
        mds.add_mds(other, hierarchies)
        assert mds.version > version

        version = mds.version
        mds.update_values(1, {records[1].leaf_value(1)})
        assert mds.version > version
        assert records[1].leaf_value(1) in mds.value_set(1)

        version = mds.version
        mds.refine_dimension(0, {records[0].leaf_value(0)}, 0)
        assert mds.version > version

        version = mds.version
        mds.clear_dimension(0)
        assert mds.version > version
        assert mds.cardinality(0) == 0


class TestFusedClassifier:
    @given(pair=mds_pairs())
    def test_classify_matches_overlaps_plus_contains(self, pair):
        schema, range_mds, entry_mds = pair
        hierarchies = tuple(d.hierarchy for d in schema.dimensions)
        with hotpath.disabled():
            if not mds_mod.overlaps(range_mds, entry_mds, hierarchies):
                expected = mds_mod.DISJOINT
            elif mds_mod.contains(range_mds, entry_mds, hierarchies):
                expected = mds_mod.CONTAINED
            else:
                expected = mds_mod.PARTIAL
        assert mds_mod.classify(range_mds, entry_mds, hierarchies) \
            == expected

    @given(pair=mds_pairs())
    def test_classify_without_containment(self, pair):
        schema, range_mds, entry_mds = pair
        hierarchies = tuple(d.hierarchy for d in schema.dimensions)
        outcome = mds_mod.classify(
            range_mds, entry_mds, hierarchies, check_containment=False
        )
        assert outcome in (mds_mod.DISJOINT, mds_mod.PARTIAL)
        assert (outcome != mds_mod.DISJOINT) \
            == mds_mod.overlaps(range_mds, entry_mds, hierarchies)


def _build_pair_of_trees(n_records, seed, capacity=8):
    """Two trees over identical record streams: caches on vs. fully off."""
    schema_fast = build_schema()
    schema_slow = build_schema()
    records_fast = make_records(schema_fast, n_records, seed)
    records_slow = make_records(schema_slow, n_records, seed)
    fast = DCTree(
        schema_fast,
        config=DCTreeConfig(dir_capacity=4, leaf_capacity=capacity),
    )
    slow = DCTree(
        schema_slow,
        config=DCTreeConfig(
            dir_capacity=4, leaf_capacity=capacity,
            use_hot_path_caches=False,
        ),
    )
    for record in records_fast:
        fast.insert(record)
    with hotpath.disabled():
        for record in records_slow:
            slow.insert(record)
    return fast, slow, records_fast, records_slow


class TestTreeEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_queries_identical_cached_vs_uncached(self, seed):
        fast, slow, _, _ = _build_pair_of_trees(250, seed)
        queries_fast = QueryGenerator(
            fast.schema, 0.3, seed=seed + 10
        ).queries(15)
        queries_slow = QueryGenerator(
            slow.schema, 0.3, seed=seed + 10
        ).queries(15)
        for query_fast, query_slow in zip(queries_fast, queries_slow):
            assert query_fast.mds == query_slow.mds
            for op in ("sum", "count", "min", "max"):
                got = fast.range_query(query_fast.mds, op=op)
                with hotpath.disabled():
                    want = slow.range_query(query_slow.mds, op=op)
                assert got == want, op
            got_records = sorted(repr(r) for r in
                                 fast.range_records(query_fast.mds))
            got_estimate = fast.estimate_count(query_fast.mds)
            with hotpath.disabled():
                want_records = sorted(repr(r) for r in
                                      slow.range_records(query_slow.mds))
                want_estimate = slow.estimate_count(query_slow.mds)
            assert got_records == want_records
            assert got_estimate == pytest.approx(want_estimate)

    def test_group_by_identical_cached_vs_uncached(self):
        fast, slow, _, _ = _build_pair_of_trees(250, seed=5)
        restriction_fast = QueryGenerator(fast.schema, 0.4, seed=3).query()
        restriction_slow = QueryGenerator(slow.schema, 0.4, seed=3).query()
        for dim in range(fast.schema.n_dimensions):
            top = fast.hierarchies[dim].top_level
            for level in range(top):
                for range_mds_fast, range_mds_slow in (
                    (None, None),
                    (restriction_fast.mds, restriction_slow.mds),
                ):
                    got = fast.group_by(dim, level, range_mds=range_mds_fast)
                    with hotpath.disabled():
                        want = slow.group_by(
                            dim, level, range_mds=range_mds_slow
                        )
                    assert got == want

    def test_deterministic_counters_identical(self):
        """I/O and CPU charges must not depend on the acceleration layer."""
        fast, slow, _, _ = _build_pair_of_trees(200, seed=9)
        fast.tracker.reset(clear_buffer=True)
        slow.tracker.reset(clear_buffer=True)
        query_fast = QueryGenerator(fast.schema, 0.25, seed=4).query()
        query_slow = QueryGenerator(slow.schema, 0.25, seed=4).query()
        fast.range_query(query_fast.mds)
        with hotpath.disabled():
            slow.range_query(query_slow.mds)
        got = fast.tracker.snapshot()
        want = slow.tracker.snapshot()
        assert got.node_accesses == want.node_accesses
        assert got.cpu_units == want.cpu_units
        assert got.page_ios == want.page_ios


class TestDynamicInvalidation:
    def test_invariants_after_interleaved_insert_delete(self):
        """Acceptance: invalidation correctness under hierarchy growth."""
        fast, slow, records_fast, records_slow = _build_pair_of_trees(
            220, seed=11
        )
        # Delete every third record, then insert fresh records that force
        # brand-new hierarchy nodes (dynamic growth after deletions).
        for record in records_fast[::3]:
            fast.delete(record)
        with hotpath.disabled():
            for record in records_slow[::3]:
                slow.delete(record)
        growth_fast = make_records(fast.schema, 60, seed=77, city_pool=500)
        growth_slow = make_records(slow.schema, 60, seed=77, city_pool=500)
        for record in growth_fast:
            fast.insert(record)
        with hotpath.disabled():
            for record in growth_slow:
                slow.insert(record)
        assert fast.check_invariants() == len(fast)
        assert slow.check_invariants() == len(slow)
        query_fast = QueryGenerator(fast.schema, 0.5, seed=8).query()
        query_slow = QueryGenerator(slow.schema, 0.5, seed=8).query()
        got = fast.range_query(query_fast.mds)
        with hotpath.disabled():
            want = slow.range_query(query_slow.mds)
        assert got == want


class TestRegressionHarness:
    def test_both_modes_produce_identical_digests(self):
        cached, digest_cached, _ = regression.run_workload(
            True, n_records=150, n_queries=6, seed=3
        )
        with hotpath.disabled():
            uncached, digest_uncached, _ = regression.run_workload(
                False, n_records=150, n_queries=6, seed=3
            )
        assert digest_cached == digest_uncached
        for phase in ("insert", "query", "groupby"):
            assert cached[phase]["cpu_units"] == uncached[phase]["cpu_units"]
            assert cached[phase]["page_ios"] == uncached[phase]["page_ios"]

    def test_observability_pass_is_invariant(self, monkeypatch):
        monkeypatch.setitem(
            regression.PROFILES, "tiny",
            {"records": 200, "queries": 5, "repeats": 10},
        )
        entry = regression.run_benchmark(profile="tiny", seed=1,
                                         emit_metrics=True)
        observability = entry["observability"]
        assert observability["digest_identical"] is True
        assert observability["counters_identical"] is True
        metrics = observability["metrics"]
        assert "repro_spans_total" in metrics
        assert "dctree_records" in metrics
        spans = sum(
            sample["value"]
            for sample in metrics["repro_spans_total"]["samples"]
        )
        assert spans > 200  # at least one span per insert

    def test_run_workload_observability_snapshot(self):
        report, digest, metrics = regression.run_workload(
            True, n_records=120, n_queries=4, seed=2, observability=True
        )
        plain_report, plain_digest, plain_metrics = regression.run_workload(
            True, n_records=120, n_queries=4, seed=2
        )
        assert plain_metrics is None
        assert digest == plain_digest
        for phase in ("insert", "query", "groupby", "repeat"):
            for counter in ("node_accesses", "page_ios", "cpu_units"):
                assert report[phase][counter] == plain_report[phase][counter]
        assert metrics["dctree_records"]["samples"][0]["value"] == 120

    def test_compare_to_baseline_flags_regressions(self):
        entry = {
            "records": 100, "queries": 5, "seed": 0, "digest": "abc",
            "modes": {"cached": {
                "insert": _fake_phase(100), "query": _fake_phase(50),
                "groupby": _fake_phase(20),
            }},
        }
        same = compare = regression.compare_to_baseline(
            entry, entry, tolerance=0.2
        )
        assert same == []
        worse = {
            "records": 100, "queries": 5, "seed": 0, "digest": "abc",
            "modes": {"cached": {
                "insert": _fake_phase(100), "query": _fake_phase(80),
                "groupby": _fake_phase(20),
            }},
        }
        compare = regression.compare_to_baseline(worse, entry, tolerance=0.2)
        assert any("query" in problem for problem in compare)
        mismatched = dict(entry, records=999)
        compare = regression.compare_to_baseline(
            mismatched, entry, tolerance=0.2
        )
        assert any("workload mismatch" in problem for problem in compare)

    def test_strict_wall_checks_ops_per_second(self):
        baseline = {
            "records": 1, "queries": 1, "seed": 0, "digest": "d",
            "modes": {"cached": {
                "insert": _fake_phase(10, ops_per_second=1000.0),
                "query": _fake_phase(10, ops_per_second=1000.0),
                "groupby": _fake_phase(10, ops_per_second=1000.0),
            }},
        }
        slow_run = {
            "records": 1, "queries": 1, "seed": 0, "digest": "d",
            "modes": {"cached": {
                "insert": _fake_phase(10, ops_per_second=1000.0),
                "query": _fake_phase(10, ops_per_second=100.0),
                "groupby": _fake_phase(10, ops_per_second=1000.0),
            }},
        }
        assert regression.compare_to_baseline(
            slow_run, baseline, tolerance=0.2
        ) == []
        problems = regression.compare_to_baseline(
            slow_run, baseline, tolerance=0.2, strict_wall=True
        )
        assert any("ops/sec" in problem for problem in problems)


def _fake_phase(units, ops_per_second=100.0):
    return {
        "node_accesses": units,
        "page_ios": units,
        "cpu_units": units,
        "ops_per_second": ops_per_second,
        "wall_seconds": 1.0,
        "ops": 1,
    }
