"""Crash matrix and recovery tests for the durability layer.

The core suite enumerates every fault-injection site a scripted
workload touches (WAL appends and fsyncs, checkpoint writes and
replaces, tracker page events) and simulates process death at each one,
then asserts the recovered warehouse holds exactly the acknowledged
mutations — never fewer, and at most the single in-flight one more.
"""

from __future__ import annotations

import json
import os
from collections import Counter

import pytest
from hypothesis import given, strategies as st

from tests.conftest import TOY_ROWS, build_toy_schema, toy_record
from repro import (
    DCTreeConfig,
    DurableWarehouse,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    StorageError,
    Warehouse,
    recover_warehouse,
)
from repro.core.bulkload import bulk_load
from repro.persist.io import load_warehouse, record_to_labels, save_warehouse
from repro.workload.queries import query_from_labels

_CONFIG = dict(leaf_capacity=4, dir_capacity=4)


def _toy_warehouse():
    return Warehouse(build_toy_schema(), "dc-tree",
                     config=DCTreeConfig(**_CONFIG))


def _key(schema, record):
    return json.dumps(record_to_labels(schema, record), sort_keys=True)


def _snapshot(warehouse):
    """Multiset of (labels, measures) keys of every stored record."""
    query = query_from_labels(warehouse.schema, {})
    return Counter(
        _key(warehouse.schema, record)
        for record in warehouse.records_matching(query)
    )


def _attach(session, injector):
    """Arm an injector on a session *after* create() — the matrix covers
    steady-state operation, not construction."""
    session.faults = injector
    session.wal.faults = injector
    session.warehouse.index.tracker.faults = injector


def _drop_dead(session):
    """Simulated process death: release the WAL handle without syncing
    or detaching anything."""
    wal = session.wal
    if wal is not None and wal._handle is not None:
        wal._handle.close()
        wal._handle = None


def _workload_steps(records):
    return [
        ("insert", records[0]), ("insert", records[1]),
        ("insert", records[2]), ("insert", records[3]),
        ("checkpoint", None),
        ("insert", records[4]), ("insert", records[5]),
        ("delete", records[1]),
        ("insert", records[6]),
        ("checkpoint", None),
        ("delete", records[4]),
    ]


#: Rows for the batched workload — TOY_ROWS plus enough extras that the
#: batches split pages and cross a checkpoint boundary.
_BATCH_ROWS = TOY_ROWS + (
    ("IT", "Rome", "red", 9.0),
    ("IT", "Milan", "blue", 4.0),
    ("JP", "Tokyo", "green", 6.0),
)


def _batch_workload_steps(records):
    """Batched inserts interleaved with a delete and a checkpoint.  Each
    ``batch`` step is acknowledged as a unit, so the crash matrix proves
    group-commit atomicity: a batch replays whole or not at all."""
    return [
        ("insert", records[0]),
        ("batch", records[1:4]),
        ("checkpoint", None),
        ("batch", records[4:7]),
        ("delete", records[2]),
        ("batch", records[7:10]),
    ]


def _apply_expected(schema, state, step):
    kind, payload = step
    if kind == "insert":
        state[_key(schema, payload)] += 1
    elif kind == "batch":
        for record in payload:
            state[_key(schema, record)] += 1
    elif kind == "delete":
        state[_key(schema, payload)] -= 1
    return +state  # drop zero entries


def _run_workload(directory, plan, steps_fn=_workload_steps,
                  rows=TOY_ROWS):
    """One scripted run under ``plan``; returns what recovery must honor.

    Returns ``(committed, maybe, fault, injector)`` — the acknowledged
    state, the state if the in-flight step also survives, and the fault
    that fired (None on a clean run).
    """
    warehouse = _toy_warehouse()
    schema = warehouse.schema
    records = [toy_record(schema, *row) for row in rows]
    session = DurableWarehouse.create(directory, warehouse)
    injector = FaultInjector(plan)
    _attach(session, injector)
    state = Counter()
    maybe = Counter()
    fault = None
    try:
        for step in steps_fn(records):
            maybe = _apply_expected(schema, Counter(state), step)
            kind, payload = step
            if kind == "insert":
                session.insert_record(payload)
            elif kind == "batch":
                session.insert_records(payload)
            elif kind == "delete":
                session.delete(payload)
            else:
                session.checkpoint()
            state = Counter(maybe)
        session.close()
    except InjectedFault as exc:
        fault = exc
        _drop_dead(session)
    return state, maybe, fault, injector


def _recovered_snapshot(directory):
    warehouse, report = recover_warehouse(
        DurableWarehouse.checkpoint_path(directory),
        DurableWarehouse.wal_path(directory),
    )
    assert warehouse is not None, report.checkpoint_error
    assert report.ok, (report.validation_error, report.checkpoint_error)
    return _snapshot(warehouse), report


def test_crash_matrix_no_acknowledged_mutation_lost(tmp_path):
    """Kill the workload at every I/O operation it performs; recovery
    must always yield committed ⊆ recovered ⊆ committed + in-flight."""
    probe_dir = os.path.join(str(tmp_path), "probe")
    state, _, fault, tracer = _run_workload(probe_dir, plan=None)
    assert fault is None
    trace = tracer.trace
    assert trace, "fault tracer saw no I/O operations"
    clean_snapshot, _ = _recovered_snapshot(probe_dir)
    assert clean_snapshot == state

    matrix = []
    for index, (site, kind) in enumerate(trace, start=1):
        matrix.append((index, site, "crash"))
        if kind == "write":
            matrix.append((index, site, "torn"))

    for fail_at, site, mode in matrix:
        directory = os.path.join(
            str(tmp_path), "run-%d-%s" % (fail_at, mode)
        )
        committed, maybe, fault, _ = _run_workload(
            directory, FaultPlan(fail_at=fail_at, mode=mode)
        )
        assert fault is not None, (
            "plan (%d, %s) at site %s never fired" % (fail_at, mode, site)
        )
        recovered, report = _recovered_snapshot(directory)
        assert recovered in (committed, maybe), (
            "fault at op %d (%s, %s): recovered %r, acknowledged %r, "
            "with in-flight %r"
            % (fail_at, site, mode, dict(recovered), dict(committed),
               dict(maybe))
        )
        # Reopening the directory must also work and self-compact.
        session = DurableWarehouse.open(directory)
        try:
            assert _snapshot(session.warehouse) == recovered
            assert session.report.ok
        finally:
            session.close()


def test_batch_crash_matrix_is_all_or_nothing(tmp_path):
    """Kill a batched workload at every traced I/O operation.  Because a
    ``maybe`` state only ever differs from ``committed`` by one *whole*
    batch, the membership assertion proves group-commit atomicity: the
    recovered warehouse never holds a strict subset of a batch, and
    never misses a batch that was acknowledged."""
    probe_dir = os.path.join(str(tmp_path), "probe")
    state, _, fault, tracer = _run_workload(
        probe_dir, plan=None,
        steps_fn=_batch_workload_steps, rows=_BATCH_ROWS,
    )
    assert fault is None
    trace = tracer.trace
    assert trace, "fault tracer saw no I/O operations"
    clean_snapshot, clean_report = _recovered_snapshot(probe_dir)
    assert clean_snapshot == state
    # Both post-checkpoint batches replay, each as a single OP_BATCH.
    assert clean_report.applied_batches == 2

    matrix = []
    for index, (site, kind) in enumerate(trace, start=1):
        matrix.append((index, site, "crash"))
        if kind == "write":
            matrix.append((index, site, "torn"))

    for fail_at, site, mode in matrix:
        directory = os.path.join(
            str(tmp_path), "batch-%d-%s" % (fail_at, mode)
        )
        committed, maybe, fault, _ = _run_workload(
            directory, FaultPlan(fail_at=fail_at, mode=mode),
            steps_fn=_batch_workload_steps, rows=_BATCH_ROWS,
        )
        assert fault is not None, (
            "plan (%d, %s) at site %s never fired" % (fail_at, mode, site)
        )
        recovered, report = _recovered_snapshot(directory)
        assert recovered in (committed, maybe), (
            "fault at op %d (%s, %s): recovered %r, acknowledged %r, "
            "with in-flight batch %r"
            % (fail_at, site, mode, dict(recovered), dict(committed),
               dict(maybe))
        )
        session = DurableWarehouse.open(directory)
        try:
            assert _snapshot(session.warehouse) == recovered
            assert session.report.ok
        finally:
            session.close()


def test_batch_replay_counts_batches(tmp_path):
    """An acknowledged batch survives a crash as one OP_BATCH replay."""
    directory = str(tmp_path / "batchcount")
    warehouse = _toy_warehouse()
    schema = warehouse.schema
    records = [toy_record(schema, *row) for row in _BATCH_ROWS]
    session = DurableWarehouse.create(directory, warehouse)
    session.insert_record(records[0])
    session.insert_records(records[1:5])
    session.insert_records(records[5:8])
    _drop_dead(session)
    recovered, report = _recovered_snapshot(directory)
    assert report.applied_batches == 2
    assert report.applied_inserts == 8
    assert sum(recovered.values()) == 8


def test_clean_shutdown_reopens_identically(tmp_path):
    directory = str(tmp_path / "clean")
    state, _, fault, _ = _run_workload(directory, plan=None)
    assert fault is None
    session = DurableWarehouse.open(directory)
    try:
        assert _snapshot(session.warehouse) == state
        assert session.report.ok
        assert not session.report.torn_tail
    finally:
        session.close()


def test_recovered_session_keeps_logging(tmp_path):
    directory = str(tmp_path / "resume")
    _run_workload(directory, plan=None)
    session = DurableWarehouse.open(directory)
    country, city, color, sales = ("IT", "Rome", "red", 9.0)
    session.insert(((country, city), (color,)), (sales,))
    before = _snapshot(session.warehouse)
    _drop_dead(session)  # crash right after the acknowledged insert
    recovered, report = _recovered_snapshot(directory)
    assert recovered == before
    assert report.applied_inserts == 1


def test_unreadable_checkpoint_reports_not_raises(tmp_path):
    directory = str(tmp_path / "corrupt")
    _run_workload(directory, plan=None)
    with open(DurableWarehouse.checkpoint_path(directory), "w") as handle:
        handle.write("{ not json")
    warehouse, report = recover_warehouse(
        DurableWarehouse.checkpoint_path(directory),
        DurableWarehouse.wal_path(directory),
    )
    assert warehouse is None
    assert not report.ok
    assert report.checkpoint_error
    with pytest.raises(StorageError):
        DurableWarehouse.open(directory)


def test_checkpoint_bit_rot_detected(tmp_path):
    directory = str(tmp_path / "bitrot")
    _run_workload(directory, plan=None)
    path = DurableWarehouse.checkpoint_path(directory)
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    data["index"]["n_records"] = 9999  # silent in-place corruption
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle)
    warehouse, report = recover_warehouse(path)
    assert warehouse is None
    assert "checksum" in report.checkpoint_error


def test_replay_stops_at_uncheckpointed_rebase(tmp_path):
    """A rebase marker whose checkpoint never landed ends replay: the
    bulk load was never acknowledged, the pre-load state was."""
    directory = str(tmp_path / "rebase")
    warehouse = _toy_warehouse()
    schema = warehouse.schema
    records = [toy_record(schema, *row) for row in TOY_ROWS]
    session = DurableWarehouse.create(directory, warehouse)
    for record in records[:3]:
        session.insert_record(record)
    committed = _snapshot(session.warehouse)
    # Crash inside the checkpoint the rebase marker triggers.
    injector = FaultInjector(FaultPlan(fail_at=1, site="checkpoint.write"))
    _attach(session, injector)
    loaded = bulk_load(schema, records, config=warehouse.index.config)
    with pytest.raises(InjectedFault):
        warehouse.index.adopt_root(loaded._root, len(records))
    _drop_dead(session)
    recovered, report = _recovered_snapshot(directory)
    assert report.stopped_at_rebase
    assert recovered == committed


def test_checkpointed_rebase_survives(tmp_path):
    directory = str(tmp_path / "rebase-ok")
    warehouse = _toy_warehouse()
    schema = warehouse.schema
    records = [toy_record(schema, *row) for row in TOY_ROWS]
    session = DurableWarehouse.create(directory, warehouse)
    loaded = bulk_load(schema, records, config=warehouse.index.config)
    warehouse.index.adopt_root(loaded._root, len(records))
    _drop_dead(session)
    recovered, report = _recovered_snapshot(directory)
    assert not report.stopped_at_rebase
    assert sum(recovered.values()) == len(TOY_ROWS)


def test_delete_replay(tmp_path):
    directory = str(tmp_path / "deletes")
    warehouse = _toy_warehouse()
    schema = warehouse.schema
    records = [toy_record(schema, *row) for row in TOY_ROWS]
    session = DurableWarehouse.create(directory, warehouse)
    for record in records[:4]:
        session.insert_record(record)
    session.delete(records[0])
    _drop_dead(session)
    recovered, report = _recovered_snapshot(directory)
    assert report.applied_inserts == 4
    assert report.applied_deletes == 1
    assert sum(recovered.values()) == 3


def test_short_read_of_checkpoint_is_graceful(tmp_path):
    directory = str(tmp_path / "shortread")
    _run_workload(directory, plan=None)
    injector = FaultInjector(
        FaultPlan(fail_at=1, mode="short_read", site="checkpoint.read")
    )
    warehouse, report = recover_warehouse(
        DurableWarehouse.checkpoint_path(directory),
        DurableWarehouse.wal_path(directory),
        faults=injector,
    )
    assert warehouse is None
    assert report.checkpoint_error


def test_wal_is_invisible_to_the_cost_model(tmp_path):
    """Identical insert streams with and without a durable session must
    leave bit-identical tracker counters (WAL I/O is real, not simulated)."""
    def run(directory):
        warehouse = _toy_warehouse()
        schema = warehouse.schema
        if directory is not None:
            session = DurableWarehouse.create(directory, warehouse)
        for row in TOY_ROWS:
            warehouse.insert_record(toy_record(schema, *row))
        if directory is not None:
            session.close()
        stats = warehouse.tracker.snapshot()
        return (stats.node_accesses, stats.buffer_hits, stats.buffer_misses,
                stats.page_writes, stats.cpu_units)

    assert run(None) == run(str(tmp_path / "walled"))


# ----------------------------------------------------------------------
# save/load round-trip property over all three backends
# ----------------------------------------------------------------------

_LABELS = st.sampled_from(["DE", "FR", "US", "JP"])
_CITIES = st.sampled_from(["Alpha", "Beta", "Gamma", "Delta"])
_COLORS = st.sampled_from(["red", "green", "blue"])
_SALES = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
_ROWS = st.lists(st.tuples(_LABELS, _CITIES, _COLORS, _SALES),
                 min_size=0, max_size=12)


@given(rows=_ROWS, backend=st.sampled_from(["dc-tree", "x-tree", "scan"]))
def test_save_load_roundtrip_property(rows, backend, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("roundtrip")
    path = str(tmp / "warehouse.json")
    schema = build_toy_schema()
    warehouse = Warehouse(schema, backend)
    for country, city, color, sales in rows:
        warehouse.insert(((country, city), (color,)), (sales,))
    save_warehouse(warehouse, path)
    loaded = load_warehouse(path)

    assert loaded.backend == backend
    assert len(loaded) == len(warehouse)
    assert _snapshot(loaded) == _snapshot(warehouse)
    assert loaded.query("sum") == pytest.approx(warehouse.query("sum"))

    if backend == "dc-tree":
        version = loaded.index.tree_version
        before = loaded.query("sum")
        loaded.insert((("IT", "Rome"), ("red",)), (5.0,))
        # tree_version is monotone across save/load and mutation, and the
        # versioned result cache must not serve the pre-insert answer.
        assert loaded.index.tree_version > version
        assert loaded.query("sum") == pytest.approx(before + 5.0)
