"""Unit tests for the range-query workload generator (§5.2)."""

import pytest

from repro import TPCDGenerator, make_tpcd_schema
from repro.core.mds import MDS
from repro.errors import QueryError
from repro.workload.queries import QueryGenerator, RangeQuery, query_from_labels
from tests.conftest import TOY_ROWS, build_toy_schema, toy_record


@pytest.fixture
def populated_tpcd():
    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=1, scale_records=400)
    records = generator.generate(400)
    return schema, records


class TestQueryGenerator:
    def test_selectivity_bounds_validated(self, populated_tpcd):
        schema, _records = populated_tpcd
        with pytest.raises(QueryError):
            QueryGenerator(schema, 0.0)
        with pytest.raises(QueryError):
            QueryGenerator(schema, 1.5)

    def test_deterministic_given_seed(self, populated_tpcd):
        schema, _records = populated_tpcd
        a = [q.mds for q in QueryGenerator(schema, 0.1, seed=5).queries(10)]
        b = [q.mds for q in QueryGenerator(schema, 0.1, seed=5).queries(10)]
        assert a == b

    def test_levels_are_functional_attributes(self, populated_tpcd):
        schema, _records = populated_tpcd
        for query in QueryGenerator(schema, 0.2, seed=3).queries(20):
            for dim in range(schema.n_dimensions):
                assert (
                    0 <= query.mds.level(dim)
                    < schema.dimensions[dim].hierarchy.top_level
                )

    def test_set_sizes_bounded_by_selectivity(self, populated_tpcd):
        schema, _records = populated_tpcd
        selectivity = 0.25
        for query in QueryGenerator(schema, selectivity, seed=7).queries(30):
            for dim in range(schema.n_dimensions):
                level = query.mds.level(dim)
                hierarchy = schema.dimensions[dim].hierarchy
                total = hierarchy.n_values_at_level(level)
                cap = max(1, int(selectivity * total))
                assert 1 <= query.mds.cardinality(dim) <= cap

    def test_values_exist_at_their_level(self, populated_tpcd):
        schema, _records = populated_tpcd
        for query in QueryGenerator(schema, 0.1, seed=2).queries(10):
            for dim in range(schema.n_dimensions):
                level = query.mds.level(dim)
                known = set(
                    schema.dimensions[dim].hierarchy.values_at_level(level)
                )
                assert query.mds.value_set(dim) <= known

    def test_empty_hierarchy_falls_back_to_all(self):
        schema = build_toy_schema()  # no values inserted yet
        query = QueryGenerator(schema, 0.5, seed=0).query()
        for dim in range(schema.n_dimensions):
            hierarchy = schema.dimensions[dim].hierarchy
            assert query.mds.level(dim) == hierarchy.top_level
            assert query.mds.value_set(dim) == {hierarchy.all_id}


class TestRangeQuery:
    def test_dimension_count_checked(self, populated_tpcd):
        schema, _records = populated_tpcd
        with pytest.raises(QueryError):
            RangeQuery(schema, MDS([{1}], [0]))

    def test_matches_equals_predicate(self, populated_tpcd):
        schema, records = populated_tpcd
        query = QueryGenerator(schema, 0.3, seed=9).query()
        predicate = query.predicate()
        for record in records[:50]:
            assert predicate(record) == query.matches(record)

    def test_mbr_conversion_is_superset(self, populated_tpcd):
        """Every record matching the MDS lies inside the converted MBR."""
        schema, records = populated_tpcd
        for query in QueryGenerator(schema, 0.2, seed=4).queries(10):
            box = query.to_mbr()
            for record in records:
                if query.matches(record):
                    assert box.contains_point(record.flat_point())

    def test_mbr_constrains_only_chosen_levels(self, populated_tpcd):
        schema, _records = populated_tpcd
        query = QueryGenerator(schema, 0.2, seed=4).query()
        box = query.to_mbr()
        constrained = set()
        for dim in range(schema.n_dimensions):
            level = query.mds.level(dim)
            if level < schema.dimensions[dim].hierarchy.top_level:
                constrained.add(schema.flat_position(dim, level))
        for position in range(schema.n_flat_attributes):
            if position not in constrained:
                assert box.lows[position] == 0
                assert box.highs[position] == 0xFFFFFFFF

    def test_describe_mentions_levels(self, populated_tpcd):
        schema, _records = populated_tpcd
        query = query_from_labels(
            schema, {"Customer": ("Region", ["EUROPE"])}
        )
        text = query.describe()
        assert "Customer.Region" in text
        assert "EUROPE" in text
        assert "Time=ALL" in text


class TestQueryFromLabels:
    def test_unconstrained_dimensions_are_all(self):
        schema = build_toy_schema()
        toy_record(schema, "DE", "Munich", "red", 1.0)
        query = query_from_labels(schema, {})
        for dim in range(schema.n_dimensions):
            hierarchy = schema.dimensions[dim].hierarchy
            assert query.mds.value_set(dim) == {hierarchy.all_id}

    def test_selects_all_nodes_with_label(self):
        schema = build_toy_schema()
        for row in TOY_ROWS:
            toy_record(schema, *row)
        # Insert a duplicate city label under another country.
        toy_record(schema, "FR", "Munich", "red", 1.0)
        query = query_from_labels(schema, {"Geo": ("City", ["Munich"])})
        assert query.mds.cardinality(0) == 2

    def test_unknown_level_rejected(self):
        schema = build_toy_schema()
        with pytest.raises(QueryError):
            query_from_labels(schema, {"Geo": ("Continent", ["Europe"])})

    def test_unknown_label_rejected(self):
        schema = build_toy_schema()
        toy_record(schema, "DE", "Munich", "red", 1.0)
        with pytest.raises(QueryError):
            query_from_labels(schema, {"Geo": ("Country", ["Atlantis"])})

    def test_unknown_dimension_rejected(self):
        schema = build_toy_schema()
        toy_record(schema, "DE", "Munich", "red", 1.0)
        with pytest.raises(QueryError):
            query_from_labels(schema, {"Geos": ("Country", ["DE"])})


class TestConstrainDims:
    def test_constrained_count(self, populated_tpcd):
        schema, _records = populated_tpcd
        for query in QueryGenerator(
            schema, 0.2, seed=5, constrain_dims=1
        ).queries(15):
            constrained = sum(
                1 for dim in range(schema.n_dimensions)
                if query.mds.level(dim)
                < schema.dimensions[dim].hierarchy.top_level
            )
            assert constrained == 1

    def test_unconstrained_dims_are_all(self, populated_tpcd):
        schema, _records = populated_tpcd
        query = QueryGenerator(schema, 0.2, seed=6, constrain_dims=2).query()
        for dim in range(schema.n_dimensions):
            hierarchy = schema.dimensions[dim].hierarchy
            if query.mds.level(dim) == hierarchy.top_level:
                assert query.mds.value_set(dim) == {hierarchy.all_id}

    def test_bounds_validated(self, populated_tpcd):
        schema, _records = populated_tpcd
        with pytest.raises(QueryError):
            QueryGenerator(schema, 0.2, constrain_dims=0)
        with pytest.raises(QueryError):
            QueryGenerator(schema, 0.2, constrain_dims=5)


class TestMinLevels:
    def test_levels_respect_floor(self, populated_tpcd):
        schema, _records = populated_tpcd
        floors = (2, 1, 1, 1)
        for query in QueryGenerator(
            schema, 0.3, seed=7, min_levels=floors
        ).queries(15):
            for dim, floor in enumerate(floors):
                assert query.mds.level(dim) >= floor

    def test_wrong_arity_rejected(self, populated_tpcd):
        schema, _records = populated_tpcd
        with pytest.raises(QueryError):
            QueryGenerator(schema, 0.3, min_levels=(1, 1))

    def test_floor_at_top_rejected_on_use(self, populated_tpcd):
        schema, _records = populated_tpcd
        generator = QueryGenerator(
            schema, 0.3, min_levels=(4, 0, 0, 0)
        )
        with pytest.raises(QueryError):
            generator.query()
