"""Unit tests for cube schemata (Definition 2) and record construction."""

import pytest

from repro import CubeSchema, Dimension, Measure
from repro.errors import SchemaError
from tests.conftest import build_toy_schema, toy_record


class TestDimension:
    def test_owns_a_hierarchy(self):
        dim = Dimension("Geo", ("City", "Country"))
        assert dim.hierarchy.name == "Geo"
        assert dim.top_level == 2

    def test_level_names_exposed(self):
        dim = Dimension("Geo", ("City", "Country"))
        assert dim.level_names == ("City", "Country")
        assert dim.n_attributes == 2


class TestCubeSchemaConstruction:
    def test_needs_dimensions(self):
        with pytest.raises(SchemaError):
            CubeSchema([], [Measure("m")])

    def test_needs_measures(self):
        with pytest.raises(SchemaError):
            CubeSchema([Dimension("D", ("a",))], [])

    def test_duplicate_dimension_names_rejected(self):
        with pytest.raises(SchemaError):
            CubeSchema(
                [Dimension("D", ("a",)), Dimension("D", ("b",))],
                [Measure("m")],
            )

    def test_duplicate_measure_names_rejected(self):
        with pytest.raises(SchemaError):
            CubeSchema(
                [Dimension("D", ("a",))], [Measure("m"), Measure("m")]
            )

    def test_counts(self):
        schema = build_toy_schema()
        assert schema.n_dimensions == 2
        assert schema.n_measures == 1
        assert schema.n_flat_attributes == 3

    def test_tpcd_flat_dimensionality_is_13(self, tpcd_schema):
        # Fig. 10 of the paper: the X-tree gets 13 dimensions.
        assert tpcd_schema.n_flat_attributes == 13


class TestLookups:
    def test_dimension_index(self):
        schema = build_toy_schema()
        assert schema.dimension_index("Color") == 1

    def test_dimension_index_unknown(self):
        with pytest.raises(SchemaError):
            build_toy_schema().dimension_index("Nope")

    def test_measure_index(self):
        assert build_toy_schema().measure_index("Sales") == 0

    def test_measure_index_unknown(self):
        with pytest.raises(SchemaError):
            build_toy_schema().measure_index("Nope")

    def test_hierarchy_accessor(self):
        schema = build_toy_schema()
        assert schema.hierarchy(0) is schema.dimensions[0].hierarchy


class TestFlatPositions:
    def test_flat_offsets(self):
        schema = build_toy_schema()
        assert schema.flat_offset(0) == 0
        assert schema.flat_offset(1) == 2

    def test_flat_position_orders_high_level_first(self):
        schema = build_toy_schema()
        # Geo path is (Country, City): Country(level 1) first.
        assert schema.flat_position(0, 1) == 0
        assert schema.flat_position(0, 0) == 1
        assert schema.flat_position(1, 0) == 2

    def test_flat_position_out_of_range(self):
        with pytest.raises(SchemaError):
            build_toy_schema().flat_position(0, 2)

    def test_flat_position_matches_flat_point(self):
        schema = build_toy_schema()
        record = toy_record(schema, "DE", "Munich", "red", 1.0)
        point = record.flat_point()
        for dim in range(schema.n_dimensions):
            for level in range(schema.dimensions[dim].n_attributes):
                assert (
                    point[schema.flat_position(dim, level)]
                    == record.value_at_level(dim, level)
                )


class TestRecordConstruction:
    def test_record_assigns_ids_and_measures(self):
        schema = build_toy_schema()
        record = toy_record(schema, "DE", "Munich", "red", 12.5)
        assert record.measures == (12.5,)
        assert len(record.paths) == 2
        assert len(record.paths[0]) == 2
        assert len(record.paths[1]) == 1

    def test_records_share_hierarchy_ids(self):
        schema = build_toy_schema()
        first = toy_record(schema, "DE", "Munich", "red", 1.0)
        second = toy_record(schema, "DE", "Berlin", "red", 2.0)
        assert first.paths[0][0] == second.paths[0][0]
        assert first.paths[1][0] == second.paths[1][0]

    def test_wrong_dimension_count_rejected(self):
        schema = build_toy_schema()
        with pytest.raises(SchemaError):
            schema.record((("DE", "Munich"),), (1.0,))

    def test_wrong_measure_count_rejected(self):
        schema = build_toy_schema()
        with pytest.raises(SchemaError):
            schema.record((("DE", "Munich"), ("red",)), (1.0, 2.0))

    def test_measures_coerced_to_float(self):
        schema = build_toy_schema()
        record = toy_record(schema, "DE", "Munich", "red", 3)
        assert isinstance(record.measures[0], float)

    def test_record_from_ids_roundtrip(self):
        schema = build_toy_schema()
        original = toy_record(schema, "DE", "Munich", "red", 9.0)
        rebuilt = schema.record_from_ids(original.paths, original.measures)
        assert rebuilt == original

    def test_record_from_ids_wrong_path_length(self):
        schema = build_toy_schema()
        with pytest.raises(SchemaError):
            schema.record_from_ids(((1,), (2,)), (1.0,))

    def test_describe_renders_labels(self):
        schema = build_toy_schema()
        record = toy_record(schema, "DE", "Munich", "red", 10.0)
        text = schema.describe(record)
        assert "DE/Munich" in text
        assert "Sales=10" in text
