"""Unit tests for the hierarchy split (Figures 5 and 6)."""

import pytest

from repro.config import DCTreeConfig
from repro.core import mds as mds_mod
from repro.core import split as split_mod
from repro.core.mds import MDS
from tests.conftest import build_toy_schema, toy_record


def hset(schema):
    return tuple(d.hierarchy for d in schema.dimensions)


@pytest.fixture
def city_mdss():
    """Eight single-record MDSs at city level, 2 countries x 4 cities."""
    schema = build_toy_schema()
    rows = [
        ("DE", "Munich", "red", 1.0),
        ("DE", "Berlin", "red", 1.0),
        ("DE", "Hamburg", "blue", 1.0),
        ("DE", "Cologne", "blue", 1.0),
        ("FR", "Paris", "red", 1.0),
        ("FR", "Lyon", "red", 1.0),
        ("FR", "Nice", "blue", 1.0),
        ("FR", "Lille", "blue", 1.0),
    ]
    records = [toy_record(schema, *row) for row in rows]
    hierarchies = hset(schema)
    mdss = [MDS.for_record(r, (0, 0), hierarchies) for r in records]
    return schema, hierarchies, records, mdss


class TestChooseSeeds:
    def test_seeds_are_distinct(self, city_mdss):
        _schema, hierarchies, _records, mdss = city_mdss
        a, b, _cost = split_mod.choose_seeds(mdss, hierarchies)
        assert a != b

    def test_seeds_maximize_cover_size(self, city_mdss):
        _schema, hierarchies, _records, mdss = city_mdss
        a, b, _cost = split_mod.choose_seeds(mdss, hierarchies)
        best = max(
            sum(
                mds_mod.union_cardinality(mdss[i], mdss[j], d, hierarchies)
                for d in range(2)
            )
            for i in range(len(mdss))
            for j in range(i + 1, len(mdss))
        )
        achieved = sum(
            mds_mod.union_cardinality(mdss[a], mdss[b], d, hierarchies)
            for d in range(2)
        )
        assert achieved == best

    def test_cost_positive(self, city_mdss):
        _schema, hierarchies, _records, mdss = city_mdss
        _a, _b, cost = split_mod.choose_seeds(mdss, hierarchies)
        assert cost > 0


class TestHierarchySplit:
    def test_partitions_all_indices(self, city_mdss):
        _schema, hierarchies, _records, mdss = city_mdss
        (group_a, group_b), _cost = split_mod.hierarchy_split(
            mdss, 0, hierarchies
        )
        assert sorted(group_a + group_b) == list(range(len(mdss)))
        assert not set(group_a) & set(group_b)

    def test_split_by_country_separates_countries(self, city_mdss):
        schema, hierarchies, _records, mdss = city_mdss
        lifted = [m.adapted_to((1, 0), hierarchies) for m in mdss]
        (group_a, group_b), _cost = split_mod.hierarchy_split(
            lifted, 0, hierarchies, min_group=2
        )
        countries_a = set()
        for i in group_a:
            countries_a.update(lifted[i].value_set(0))
        countries_b = set()
        for i in group_b:
            countries_b.update(lifted[i].value_set(0))
        assert not countries_a & countries_b

    def test_min_group_forced_assignment(self, city_mdss):
        _schema, hierarchies, _records, mdss = city_mdss
        (group_a, group_b), _cost = split_mod.hierarchy_split(
            mdss, 0, hierarchies, min_group=4
        )
        assert min(len(group_a), len(group_b)) >= 4

    def test_two_entries_split_into_singletons(self, city_mdss):
        _schema, hierarchies, _records, mdss = city_mdss
        (group_a, group_b), _cost = split_mod.hierarchy_split(
            mdss[:2], 0, hierarchies
        )
        assert len(group_a) == 1 and len(group_b) == 1


class TestLinearSplit:
    def test_partitions_all_indices(self, city_mdss):
        _schema, hierarchies, _records, mdss = city_mdss
        (group_a, group_b), _cost = split_mod.linear_split(
            mdss, 0, hierarchies
        )
        assert sorted(group_a + group_b) == list(range(len(mdss)))

    def test_min_group_respected(self, city_mdss):
        _schema, hierarchies, _records, mdss = city_mdss
        (group_a, group_b), _cost = split_mod.linear_split(
            mdss, 0, hierarchies, min_group=3
        )
        assert min(len(group_a), len(group_b)) >= 3

    def test_cheaper_than_quadratic(self, city_mdss):
        _schema, hierarchies, _records, mdss = city_mdss
        _groups, quadratic_cost = split_mod.hierarchy_split(
            mdss, 0, hierarchies
        )
        _groups, linear_cost = split_mod.linear_split(mdss, 0, hierarchies)
        assert linear_cost < quadratic_cost


class TestDimensionOrder:
    def test_highest_level_first(self):
        mds = MDS([{1}, {2}], [2, 0])
        assert split_mod._dimension_order(mds)[0] == 0

    def test_tie_broken_by_cardinality(self):
        mds = MDS([{1}, {2, 3}], [1, 1])
        assert split_mod._dimension_order(mds)[0] == 1

    def test_full_tie_broken_by_index(self):
        mds = MDS([{1}, {2}], [1, 1])
        assert split_mod._dimension_order(mds) == [0, 1]


class TestAdaptationAttempts:
    def test_multi_value_set_tries_both_levels(self):
        mds = MDS([{1, 2}, {9}], [1, 0])
        attempts = split_mod._adaptation_attempts(mds, 0)
        assert attempts == [[1, 0], [0, 0]]

    def test_singleton_descends_only(self):
        mds = MDS([{1}, {9}], [1, 0])
        assert split_mod._adaptation_attempts(mds, 0) == [[0, 0]]

    def test_singleton_at_leaf_level_unusable(self):
        mds = MDS([{1}, {9}], [0, 0])
        assert split_mod._adaptation_attempts(mds, 0) == []

    def test_multi_value_at_leaf_level_single_attempt(self):
        mds = MDS([{1, 2}, {9}], [0, 0])
        assert split_mod._adaptation_attempts(mds, 0) == [[0, 0]]


class TestPlanNodeSplit:
    def _plan(self, mdss, node_levels, hierarchies, config=None):
        node_mds = split_mod.compute_group_mds(
            [m.adapted_to(node_levels, hierarchies) for m in mdss],
            node_levels,
            hierarchies,
        )

        def adapt(levels):
            return [m.adapted_to(levels, hierarchies) for m in mdss]

        return split_mod.plan_node_split(
            node_mds,
            len(mdss),
            adapt,
            config if config is not None else DCTreeConfig(),
            hierarchies,
        )

    def test_separable_entries_get_a_plan(self, city_mdss):
        _schema, hierarchies, _records, mdss = city_mdss
        plan = self._plan(mdss, (1, 0), hierarchies)
        assert plan is not None
        assert sorted(plan.groups[0] + plan.groups[1]) == list(
            range(len(mdss))
        )

    def test_plan_separates_in_split_dimension(self, city_mdss):
        _schema, hierarchies, _records, mdss = city_mdss
        plan = self._plan(mdss, (1, 0), hierarchies)
        adapted = [m.adapted_to(plan.levels, hierarchies) for m in mdss]
        set_a = set()
        for i in plan.groups[0]:
            set_a.update(adapted[i].value_set(plan.split_dimension))
        set_b = set()
        for i in plan.groups[1]:
            set_b.update(adapted[i].value_set(plan.split_dimension))
        assert not set_a & set_b

    def test_singleton_node_mds_descends_level(self, city_mdss):
        """(ALL, ALL) node splits by descending to country level (§3.2)."""
        _schema, hierarchies, _records, mdss = city_mdss
        plan = self._plan(mdss, (2, 1), hierarchies)
        assert plan is not None
        assert plan.levels[plan.split_dimension] < (2, 1)[
            plan.split_dimension
        ]

    def test_identical_entries_yield_no_plan(self):
        """All records in the same cell: nothing separates -> supernode."""
        schema = build_toy_schema()
        hierarchies = hset(schema)
        records = [
            toy_record(schema, "DE", "Munich", "red", float(i))
            for i in range(8)
        ]
        mdss = [MDS.for_record(r, (0, 0), hierarchies) for r in records]
        plan = self._plan(mdss, (0, 0), hierarchies)
        assert plan is None

    def test_cpu_units_accounted(self, city_mdss):
        _schema, hierarchies, _records, mdss = city_mdss
        plan = self._plan(mdss, (1, 0), hierarchies)
        assert plan.cpu_units > 0


class TestComputeGroupMds:
    def test_union_at_levels(self, city_mdss):
        _schema, hierarchies, _records, mdss = city_mdss
        group = split_mod.compute_group_mds(mdss[:4], (1, 0), hierarchies)
        assert group.levels == (1, 0)
        assert group.cardinality(0) == 1  # all DE
        assert group.cardinality(1) == 2  # red, blue
