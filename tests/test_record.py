"""Unit tests for DataRecord."""

from repro.cube import ids
from tests.conftest import build_toy_schema, toy_record


class TestValueAccess:
    def test_leaf_value_is_last_path_entry(self):
        schema = build_toy_schema()
        record = toy_record(schema, "DE", "Munich", "red", 1.0)
        assert record.leaf_value(0) == record.paths[0][-1]

    def test_value_at_level_zero_is_leaf(self):
        schema = build_toy_schema()
        record = toy_record(schema, "DE", "Munich", "red", 1.0)
        assert record.value_at_level(0, 0) == record.leaf_value(0)

    def test_value_at_level_walks_up(self):
        schema = build_toy_schema()
        record = toy_record(schema, "DE", "Munich", "red", 1.0)
        country = record.value_at_level(0, 1)
        assert ids.level_of(country) == 1
        assert schema.hierarchy(0).label(country) == "DE"

    def test_value_at_level_matches_hierarchy_ancestor(self):
        schema = build_toy_schema()
        record = toy_record(schema, "FR", "Paris", "blue", 1.0)
        hierarchy = schema.hierarchy(0)
        assert record.value_at_level(0, 1) == hierarchy.ancestor(
            record.leaf_value(0), 1
        )


class TestFlatPoint:
    def test_concatenates_paths(self):
        schema = build_toy_schema()
        record = toy_record(schema, "DE", "Munich", "red", 1.0)
        assert record.flat_point() == record.paths[0] + record.paths[1]

    def test_length_matches_schema(self):
        schema = build_toy_schema()
        record = toy_record(schema, "DE", "Munich", "red", 1.0)
        assert len(record.flat_point()) == schema.n_flat_attributes


class TestValueSemantics:
    def test_equal_records(self):
        schema = build_toy_schema()
        a = toy_record(schema, "DE", "Munich", "red", 1.0)
        b = schema.record_from_ids(a.paths, a.measures)
        assert a == b
        assert hash(a) == hash(b)

    def test_different_measures_not_equal(self):
        schema = build_toy_schema()
        a = toy_record(schema, "DE", "Munich", "red", 1.0)
        b = toy_record(schema, "DE", "Munich", "red", 2.0)
        assert a != b

    def test_different_paths_not_equal(self):
        schema = build_toy_schema()
        a = toy_record(schema, "DE", "Munich", "red", 1.0)
        b = toy_record(schema, "DE", "Berlin", "red", 1.0)
        assert a != b

    def test_not_equal_to_other_types(self):
        schema = build_toy_schema()
        a = toy_record(schema, "DE", "Munich", "red", 1.0)
        assert a != "record"

    def test_repr_mentions_levels(self):
        schema = build_toy_schema()
        a = toy_record(schema, "DE", "Munich", "red", 1.0)
        assert "L1#" in repr(a)
