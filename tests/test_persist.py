"""Tests for warehouse persistence (save/load all three backends)."""

import json
import math

import pytest

from repro import TPCDGenerator, Warehouse, make_tpcd_schema
from repro.errors import StorageError
from repro.persist import (
    FORMAT_VERSION,
    load_warehouse,
    save_warehouse,
    warehouse_from_dict,
    warehouse_to_dict,
)
from repro.workload.queries import QueryGenerator, query_from_labels
from tests.conftest import TOY_ROWS, build_toy_schema


def build_warehouse(backend):
    warehouse = Warehouse(build_toy_schema(), backend)
    for country, city, color, sales in TOY_ROWS:
        warehouse.insert(((country, city), (color,)), (sales,))
    return warehouse


@pytest.mark.parametrize("backend", ["dc-tree", "x-tree", "scan"])
class TestRoundtrip:
    def test_dict_roundtrip_preserves_queries(self, backend):
        original = build_warehouse(backend)
        restored = warehouse_from_dict(warehouse_to_dict(original))
        assert len(restored) == len(original)
        for where in (
            {},
            {"Geo": ("Country", ["DE"])},
            {"Geo": ("City", ["Munich"]), "Color": ("Color", ["red"])},
        ):
            assert restored.query("sum", where=where) == original.query(
                "sum", where=where
            )

    def test_file_roundtrip(self, backend, tmp_path):
        original = build_warehouse(backend)
        path = tmp_path / "wh.json"
        save_warehouse(original, path)
        restored = load_warehouse(path)
        assert restored.backend == backend
        assert restored.query("sum") == original.query("sum")

    def test_restored_warehouse_stays_dynamic(self, backend):
        original = build_warehouse(backend)
        restored = warehouse_from_dict(warehouse_to_dict(original))
        record = restored.insert((("IT", "Rome"), ("red",)), (50.0,))
        assert restored.query(
            "sum", where={"Geo": ("Country", ["IT"])}
        ) == 50.0
        restored.delete(record)
        assert len(restored) == len(original)

    def test_hierarchy_ids_preserved(self, backend):
        original = build_warehouse(backend)
        restored = warehouse_from_dict(warehouse_to_dict(original))
        for dim_original, dim_restored in zip(
            original.schema.dimensions, restored.schema.dimensions
        ):
            for level in range(dim_original.hierarchy.top_level + 1):
                assert dim_original.hierarchy.values_at_level(level) == (
                    dim_restored.hierarchy.values_at_level(level)
                )


class TestTreeStructurePreserved:
    def test_dc_tree_structure_identical(self):
        schema = make_tpcd_schema()
        warehouse = Warehouse(schema, "dc-tree")
        generator = TPCDGenerator(schema, seed=8, scale_records=600)
        for record in generator.records(600):
            warehouse.insert_record(record)
        restored = warehouse_from_dict(warehouse_to_dict(warehouse))
        restored.index.check_invariants()

        def shape(node):
            if node.is_leaf:
                return ("leaf", node.n_blocks, len(node.records))
            return ("dir", node.n_blocks,
                    tuple(shape(c) for c in node.children))

        assert shape(restored.index.root) == shape(warehouse.index.root)

    def test_dc_tree_queries_identical_after_load(self):
        schema = make_tpcd_schema()
        warehouse = Warehouse(schema, "dc-tree")
        generator = TPCDGenerator(schema, seed=8, scale_records=600)
        for record in generator.records(600):
            warehouse.insert_record(record)
        restored = warehouse_from_dict(warehouse_to_dict(warehouse))
        for query in QueryGenerator(schema, 0.2, seed=4).queries(10):
            rebuilt_query = query_from_labels(restored.schema, {})
            # Same-schema queries: re-run the original MDS on both (IDs
            # are preserved, so the MDS transfers verbatim).
            assert math.isclose(
                warehouse.index.range_query(query.mds),
                restored.index.range_query(query.mds),
                abs_tol=1e-6,
            )
            assert rebuilt_query.schema is restored.schema

    def test_x_tree_structure_identical(self):
        schema = make_tpcd_schema()
        warehouse = Warehouse(schema, "x-tree")
        generator = TPCDGenerator(schema, seed=8, scale_records=600)
        for record in generator.records(600):
            warehouse.insert_record(record)
        restored = warehouse_from_dict(warehouse_to_dict(warehouse))
        restored.index.check_invariants()
        assert restored.index.root.mbr == warehouse.index.root.mbr
        assert (
            restored.index.root.split_history
            == warehouse.index.root.split_history
        )


class TestFormatValidation:
    def test_version_checked(self):
        data = warehouse_to_dict(build_warehouse("scan"))
        data["meta"]["version"] = FORMAT_VERSION + 1
        with pytest.raises(StorageError):
            warehouse_from_dict(data)

    def test_missing_version_rejected(self):
        data = warehouse_to_dict(build_warehouse("scan"))
        del data["meta"]["version"]
        with pytest.raises(StorageError):
            warehouse_from_dict(data)

    def test_unknown_backend_rejected(self):
        data = warehouse_to_dict(build_warehouse("scan"))
        data["meta"]["backend"] = "b-tree"
        with pytest.raises(StorageError):
            warehouse_from_dict(data)

    def test_record_count_mismatch_rejected(self):
        data = warehouse_to_dict(build_warehouse("scan"))
        data["meta"]["records"] += 1
        with pytest.raises(StorageError):
            warehouse_from_dict(data)

    def test_unknown_node_type_rejected(self):
        data = warehouse_to_dict(build_warehouse("dc-tree"))
        data["index"]["root"]["type"] = "mystery"
        with pytest.raises(StorageError):
            warehouse_from_dict(data)

    def test_file_is_valid_json(self, tmp_path):
        path = tmp_path / "wh.json"
        save_warehouse(build_warehouse("dc-tree"), path)
        with open(path) as handle:
            data = json.load(handle)
        assert data["meta"]["version"] == FORMAT_VERSION

    def test_empty_warehouse_roundtrip(self):
        warehouse = Warehouse(build_toy_schema(), "dc-tree")
        restored = warehouse_from_dict(warehouse_to_dict(warehouse))
        assert len(restored) == 0
        restored.insert((("DE", "Munich"), ("red",)), (1.0,))
        assert restored.query("sum") == 1.0


class TestConfigPersistence:
    def test_custom_capacities_survive_roundtrip(self):
        from repro import DCTreeConfig, TPCDGenerator

        schema = make_tpcd_schema()
        warehouse = Warehouse(
            schema, "dc-tree",
            config=DCTreeConfig(dir_capacity=64, leaf_capacity=256),
        )
        generator = TPCDGenerator(schema, seed=0, scale_records=2000)
        for record in generator.records(2000):
            warehouse.insert_record(record)
        restored = warehouse_from_dict(warehouse_to_dict(warehouse))
        restored.index.check_invariants()
        assert restored.index.config.dir_capacity == 64
        assert restored.index.config.leaf_capacity == 256

    def test_explicit_config_still_overrides(self):
        from repro import DCTreeConfig

        warehouse = build_warehouse("dc-tree")
        restored = warehouse_from_dict(
            warehouse_to_dict(warehouse),
            config=DCTreeConfig(dir_capacity=128, leaf_capacity=128),
        )
        assert restored.index.config.dir_capacity == 128

    def test_x_tree_config_survives(self):
        from repro import TPCDGenerator, XTreeConfig

        schema = make_tpcd_schema()
        warehouse = Warehouse(
            schema, "x-tree",
            config=XTreeConfig(dir_capacity=64, leaf_capacity=128),
        )
        generator = TPCDGenerator(schema, seed=0, scale_records=500)
        for record in generator.records(500):
            warehouse.insert_record(record)
        restored = warehouse_from_dict(warehouse_to_dict(warehouse))
        restored.index.check_invariants()
        assert restored.index.config.leaf_capacity == 128

    def test_old_files_without_config_still_load(self):
        warehouse = build_warehouse("dc-tree")
        data = warehouse_to_dict(warehouse)
        del data["index"]["config"]
        restored = warehouse_from_dict(data)
        assert len(restored) == len(warehouse)


class TestDurableSave:
    def test_checksums_section_written(self, tmp_path):
        path = str(tmp_path / "wh.json")
        save_warehouse(build_warehouse("dc-tree"), path)
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert set(data["checksums"]) == {"meta", "schema", "hierarchies",
                                          "index"}

    def test_atomic_save_keeps_original_on_crash(self, tmp_path):
        from repro.storage.faults import FaultInjector, FaultPlan, InjectedFault

        path = str(tmp_path / "wh.json")
        original = build_warehouse("dc-tree")
        save_warehouse(original, path)
        bigger = build_warehouse("dc-tree")
        bigger.insert((("IT", "Rome"), ("red",)), (1.0,))
        for mode, site in (("crash", "checkpoint.write"),
                           ("torn", "checkpoint.write"),
                           ("crash", "checkpoint.fsync"),
                           ("crash", "checkpoint.replace")):
            injector = FaultInjector(FaultPlan(fail_at=1, mode=mode, site=site))
            with pytest.raises(InjectedFault):
                save_warehouse(bigger, path, faults=injector)
            # The visible file is still the complete original save.
            assert len(load_warehouse(path)) == len(original)

    def test_truncated_file_reports_path_and_offset(self, tmp_path):
        path = str(tmp_path / "wh.json")
        save_warehouse(build_warehouse("dc-tree"), path)
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[:len(raw) // 2])
        with pytest.raises(StorageError) as excinfo:
            load_warehouse(path)
        message = str(excinfo.value)
        assert path in message and "byte" in message

    def test_missing_file_is_storage_error(self, tmp_path):
        with pytest.raises(StorageError):
            load_warehouse(str(tmp_path / "nope.json"))

    def test_bit_rot_detected_by_section_checksum(self, tmp_path):
        path = str(tmp_path / "wh.json")
        save_warehouse(build_warehouse("dc-tree"), path)
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        data["index"]["n_records"] = 424242
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        with pytest.raises(StorageError, match="checksum"):
            load_warehouse(path)

    def test_malformed_document_wrapped(self, tmp_path):
        path = str(tmp_path / "wh.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("[1, 2, 3]")
        with pytest.raises(StorageError):
            load_warehouse(path)
