"""Unit tests for the sequential-scan baseline."""

import math

import pytest

from repro import FlatTable
from repro.errors import QueryError, RecordNotFoundError
from repro.workload.queries import query_from_labels
from tests.conftest import TOY_ROWS, build_toy_schema, toy_record


def build_table():
    schema = build_toy_schema()
    table = FlatTable(schema)
    records = [toy_record(schema, *row) for row in TOY_ROWS]
    for record in records:
        table.insert(record)
    return schema, table, records


class TestBasics:
    def test_len(self):
        _schema, table, records = build_table()
        assert len(table) == len(records)

    def test_records_iteration(self):
        _schema, table, records = build_table()
        assert list(table.records()) == records

    def test_byte_size_and_pages(self):
        _schema, table, _records = build_table()
        assert table.byte_size() > 0
        assert table.page_count() >= 1

    def test_insert_charges_write(self):
        schema = build_toy_schema()
        table = FlatTable(schema)
        table.insert(toy_record(schema, "DE", "Munich", "red", 1.0))
        assert table.tracker.snapshot().page_writes >= 1


class TestQueries:
    def test_unconstrained_sum(self):
        schema, table, records = build_table()
        query = query_from_labels(schema, {})
        assert table.range_query(query.mds) == sum(
            r.measures[0] for r in records
        )

    def test_filter_by_country(self):
        schema, table, _records = build_table()
        query = query_from_labels(schema, {"Geo": ("Country", ["DE"])})
        assert table.range_query(query.mds) == 35.0

    def test_count_and_records(self):
        schema, table, _records = build_table()
        query = query_from_labels(schema, {"Color": ("Color", ["green"])})
        assert table.range_count(query.mds) == 2
        assert len(table.range_records(query.mds)) == 2

    def test_avg(self):
        schema, table, _records = build_table()
        query = query_from_labels(schema, {"Geo": ("Country", ["FR"])})
        assert math.isclose(table.range_query(query.mds, op="avg"), 5.0)

    def test_measure_by_name(self):
        schema, table, _records = build_table()
        query = query_from_labels(schema, {})
        assert table.range_query(query.mds, measure="Sales") == 96.0

    def test_bad_measure_rejected(self):
        schema, table, _records = build_table()
        query = query_from_labels(schema, {})
        with pytest.raises(QueryError):
            table.range_query(query.mds, measure=5)

    def test_dimension_mismatch_rejected(self):
        from repro.core.mds import MDS

        _schema, table, _records = build_table()
        with pytest.raises(QueryError):
            table.range_query(MDS([{1}], [0]))

    def test_scan_touches_every_page(self):
        schema, table, _records = build_table()
        table.tracker.reset(clear_buffer=True)
        query = query_from_labels(schema, {})
        table.range_query(query.mds)
        assert table.tracker.snapshot().node_accesses >= table.page_count()


class TestDelete:
    def test_delete(self):
        schema, table, records = build_table()
        table.delete(records[2])
        assert len(table) == len(records) - 1
        query = query_from_labels(schema, {})
        assert table.range_query(query.mds) == 91.0

    def test_delete_missing_raises(self):
        schema, table, _records = build_table()
        with pytest.raises(RecordNotFoundError):
            table.delete(toy_record(schema, "XX", "Nowhere", "pink", 1.0))
