"""Tests for the exception hierarchy and error ergonomics."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in (
            "SchemaError",
            "HierarchyError",
            "IdSpaceExhaustedError",
            "MdsError",
            "QueryError",
            "StorageError",
            "TreeError",
            "RecordNotFoundError",
        ):
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError), name

    def test_id_space_is_a_hierarchy_error(self):
        assert issubclass(errors.IdSpaceExhaustedError, errors.HierarchyError)

    def test_record_not_found_is_a_tree_error(self):
        assert issubclass(errors.RecordNotFoundError, errors.TreeError)

    def test_view_errors_fit_the_hierarchy(self):
        from repro.aggview import StaleViewError, UnanswerableQueryError

        assert issubclass(StaleViewError, errors.StorageError)
        assert issubclass(UnanswerableQueryError, errors.QueryError)

    def test_offline_error_fits_the_hierarchy(self):
        from repro.maintenance import WarehouseOfflineError

        assert issubclass(WarehouseOfflineError, errors.ReproError)

    def test_one_except_catches_all(self):
        from repro import Warehouse
        from tests.conftest import build_toy_schema

        warehouse = Warehouse(build_toy_schema())
        with pytest.raises(errors.ReproError):
            warehouse.query("median")
