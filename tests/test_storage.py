"""Unit tests for the paged-storage substrate."""

import pytest

from repro.config import CostModel, StorageConfig
from repro.core.mds import MDS
from repro.errors import SchemaError, StorageError
from repro.storage import page as page_mod
from repro.storage.buffer import BufferPool
from repro.storage.tracker import AccessStats, StorageTracker


class TestBufferPool:
    def test_first_access_misses(self):
        pool = BufferPool(4)
        assert not pool.access("p1")
        assert pool.misses == 1

    def test_second_access_hits(self):
        pool = BufferPool(4)
        pool.access("p1")
        assert pool.access("p1")
        assert pool.hits == 1

    def test_lru_eviction(self):
        pool = BufferPool(2)
        pool.access("a")
        pool.access("b")
        pool.access("c")  # evicts a
        assert not pool.access("a")
        assert pool.misses == 4

    def test_lru_recency_updated_on_hit(self):
        pool = BufferPool(2)
        pool.access("a")
        pool.access("b")
        pool.access("a")  # a most recent
        pool.access("c")  # evicts b
        assert pool.access("a")
        assert not pool.access("b")

    def test_unbounded_pool_never_evicts(self):
        pool = BufferPool(0)
        for i in range(1000):
            pool.access(i)
        assert pool.resident_pages == 1000
        assert pool.access(0)

    def test_access_run_counts_all_blocks(self):
        pool = BufferPool(16)
        assert pool.access_run("node", 3) == 3
        assert pool.access_run("node", 3) == 0

    def test_access_run_rejects_zero_blocks(self):
        with pytest.raises(StorageError):
            BufferPool(4).access_run("node", 0)

    def test_evict_removes_pages(self):
        pool = BufferPool(8)
        pool.access_run("node", 2)
        pool.evict("node", 2)
        assert pool.access_run("node", 2) == 2

    def test_clear_keeps_counters(self):
        pool = BufferPool(8)
        pool.access("a")
        pool.clear()
        assert pool.misses == 1
        assert pool.resident_pages == 0

    def test_reset_counters(self):
        pool = BufferPool(8)
        pool.access("a")
        pool.reset_counters()
        assert pool.misses == 0
        assert pool.access("a")  # still resident


class TestStorageTracker:
    def test_page_ids_unique(self):
        tracker = StorageTracker()
        assert tracker.new_page_id() != tracker.new_page_id()

    def test_access_node_counts(self):
        tracker = StorageTracker()
        tracker.access_node(1, 2)
        stats = tracker.snapshot()
        assert stats.node_accesses == 1
        assert stats.buffer_misses == 2

    def test_write_node_counts(self):
        tracker = StorageTracker()
        tracker.write_node(1)
        tracker.write_node(2, 3)
        assert tracker.snapshot().page_writes == 4

    def test_cpu_counts(self):
        tracker = StorageTracker()
        tracker.cpu(10)
        tracker.cpu(5)
        assert tracker.snapshot().cpu_units == 15

    def test_reset(self):
        tracker = StorageTracker()
        tracker.access_node(1)
        tracker.write_node(1)
        tracker.cpu(5)
        tracker.reset()
        stats = tracker.snapshot()
        assert stats.node_accesses == 0
        assert stats.buffer_misses == 0
        assert stats.page_writes == 0
        assert stats.cpu_units == 0

    def test_reset_keeps_buffer_contents_by_default(self):
        tracker = StorageTracker()
        tracker.access_node(1)
        tracker.reset()
        tracker.access_node(1)
        assert tracker.snapshot().buffer_misses == 0

    def test_reset_clear_buffer(self):
        tracker = StorageTracker()
        tracker.access_node(1)
        tracker.reset(clear_buffer=True)
        tracker.access_node(1)
        assert tracker.snapshot().buffer_misses == 1

    def test_free_node_evicts(self):
        tracker = StorageTracker()
        tracker.access_node(1, 2)
        tracker.free_node(1, 2)
        tracker.reset()
        tracker.access_node(1, 2)
        assert tracker.snapshot().buffer_misses == 2


class TestAccessStats:
    def test_subtraction(self):
        a = AccessStats(10, 8, 2, 3, 100)
        b = AccessStats(4, 3, 1, 1, 40)
        diff = a - b
        assert diff.node_accesses == 6
        assert diff.buffer_hits == 5
        assert diff.buffer_misses == 1
        assert diff.page_writes == 2
        assert diff.cpu_units == 60

    def test_page_ios(self):
        assert AccessStats(0, 0, 3, 2, 0).page_ios == 5

    def test_simulated_seconds_uses_cost_model(self):
        stats = AccessStats(0, 0, 10, 0, 1000)
        model = CostModel(t_io=1e-2, t_cpu=1e-6)
        assert stats.simulated_seconds(model) == pytest.approx(0.101)

    def test_simulated_seconds_default_model(self):
        stats = AccessStats(0, 0, 1, 1, 0)
        assert stats.simulated_seconds() == pytest.approx(0.02)


class TestPageSizes:
    def test_mds_bytes_varies_with_cardinality(self):
        small = MDS([{1}, {2}], [1, 0])
        large = MDS([{1, 2, 3}, {4, 5}], [1, 0])
        assert page_mod.mds_bytes(large) > page_mod.mds_bytes(small)

    def test_dc_directory_entry_includes_summaries(self):
        mds = MDS([{1}], [0])
        one = page_mod.dc_directory_entry_bytes(mds, 1)
        two = page_mod.dc_directory_entry_bytes(mds, 2)
        assert two - one == page_mod.SUMMARY_BYTES

    def test_record_bytes(self):
        assert page_mod.dc_record_bytes(13, 1) == 13 * 4 + 8
        assert page_mod.x_record_bytes(13, 1) == 13 * 4 + 8

    def test_mbr_bytes(self):
        assert page_mod.mbr_bytes(13) == 2 * 13 * 4

    def test_x_directory_entry_has_history_bits(self):
        assert page_mod.x_directory_entry_bytes(13) == 104 + 8 + 2

    def test_pages_for(self):
        assert page_mod.pages_for(0, 4096) == 1
        assert page_mod.pages_for(1, 4096) == 1
        assert page_mod.pages_for(4096, 4096) == 1
        assert page_mod.pages_for(4097, 4096) == 2


class TestConfigs:
    def test_storage_config_validates_page_size(self):
        with pytest.raises(SchemaError):
            StorageConfig(page_size=16)

    def test_cost_model_validates(self):
        with pytest.raises(SchemaError):
            CostModel(t_io=0)
        with pytest.raises(SchemaError):
            CostModel(t_cpu=-1)

    def test_cost_model_weighting(self):
        model = CostModel(t_io=1.0, t_cpu=0.5)
        assert model.simulated_seconds(2, 4) == 4.0
