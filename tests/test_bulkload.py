"""Tests for DC-tree bulk loading."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DCTree, DCTreeConfig, TPCDGenerator, make_tpcd_schema
from repro.core.bulkload import bulk_load
from repro.workload.queries import QueryGenerator, query_from_labels
from tests.conftest import TOY_ROWS, build_toy_schema, toy_record


class TestBasics:
    def test_empty_load(self, toy_schema):
        tree = bulk_load(toy_schema, [])
        assert len(tree) == 0
        tree.check_invariants()

    def test_single_record(self, toy_schema):
        record = toy_record(toy_schema, "DE", "Munich", "red", 5.0)
        tree = bulk_load(toy_schema, [record])
        assert len(tree) == 1
        tree.check_invariants()
        assert tree.range_query(
            query_from_labels(toy_schema, {}).mds
        ) == 5.0

    def test_toy_rows(self, toy_schema):
        records = [toy_record(toy_schema, *row) for row in TOY_ROWS]
        tree = bulk_load(toy_schema, records)
        tree.check_invariants()
        assert len(tree) == len(records)
        query = query_from_labels(toy_schema, {"Geo": ("Country", ["DE"])})
        assert tree.range_query(query.mds) == 35.0

    def test_invariants_at_scale(self, tpcd_schema):
        generator = TPCDGenerator(tpcd_schema, seed=1, scale_records=2000)
        tree = bulk_load(tpcd_schema, generator.records(2000))
        tree.check_invariants()
        assert len(tree) == 2000

    def test_identical_records_become_supernode_leaf(self, toy_schema):
        config = DCTreeConfig(dir_capacity=4, leaf_capacity=4)
        records = [
            toy_record(toy_schema, "DE", "Munich", "red", float(i))
            for i in range(12)
        ]
        tree = bulk_load(toy_schema, records, config=config)
        tree.check_invariants()
        assert tree.root.is_leaf
        assert tree.root.is_supernode

    def test_respects_capacities(self, tpcd_schema):
        config = DCTreeConfig(dir_capacity=4, leaf_capacity=8)
        generator = TPCDGenerator(tpcd_schema, seed=2, scale_records=600)
        tree = bulk_load(tpcd_schema, generator.records(600), config=config)
        tree.check_invariants()  # includes the capacity audit

    def test_io_accounted(self, tpcd_schema):
        generator = TPCDGenerator(tpcd_schema, seed=3, scale_records=300)
        tree = bulk_load(tpcd_schema, generator.records(300))
        stats = tree.tracker.snapshot()
        assert stats.page_writes > 0
        assert stats.cpu_units > 0


class TestEquivalenceWithDynamicBuild:
    @pytest.fixture(scope="class")
    def pair(self):
        schema = make_tpcd_schema()
        generator = TPCDGenerator(schema, seed=5, scale_records=4000)
        records = generator.generate(4000)
        bulk = bulk_load(schema, records)
        dynamic = DCTree(schema)
        for record in records:
            dynamic.insert(record)
        return schema, bulk, dynamic

    def test_same_answers(self, pair):
        schema, bulk, dynamic = pair
        for query in QueryGenerator(schema, 0.15, seed=7).queries(20):
            assert math.isclose(
                bulk.range_query(query.mds),
                dynamic.range_query(query.mds),
                abs_tol=1e-6,
            )

    def test_same_group_bys(self, pair):
        schema, bulk, dynamic = pair
        sums_bulk = bulk.group_by(0, 3)
        sums_dynamic = dynamic.group_by(0, 3)
        assert set(sums_bulk) == set(sums_dynamic)
        for key in sums_bulk:
            assert math.isclose(sums_bulk[key], sums_dynamic[key],
                                abs_tol=1e-6)
        assert bulk.group_by(3, 2, op="count") == dynamic.group_by(
            3, 2, op="count"
        )

    def test_bulk_tree_not_worse_on_io(self, pair):
        """With a realistic buffer the bulk-built tree misses no more
        pages than the dynamic one (its upper levels are better
        clustered, even though it is deeper)."""
        from repro.storage.buffer import BufferPool

        schema, bulk, dynamic = pair
        queries = list(QueryGenerator(schema, 0.05, seed=9).queries(20))
        costs = {}
        for name, tree in (("bulk", bulk), ("dynamic", dynamic)):
            tree.tracker.buffer = BufferPool(
                max(16, tree.page_count() // 4)
            )
            tree.tracker.reset()
            for query in queries:
                tree.range_query(query.mds)
            costs[name] = tree.tracker.snapshot().buffer_misses
        assert costs["bulk"] <= costs["dynamic"] * 1.2


class TestDynamicAfterBulk:
    def test_inserts_and_deletes_keep_working(self, tpcd_schema):
        generator = TPCDGenerator(tpcd_schema, seed=6, scale_records=800)
        records = generator.generate(800)
        tree = bulk_load(tpcd_schema, records)
        extra = generator.generate(200)
        for record in extra:
            tree.insert(record)
        for record in records[:100]:
            tree.delete(record)
        tree.check_invariants()
        assert len(tree) == 900


row_strategy = st.tuples(
    st.sampled_from(["DE", "FR", "US"]),
    st.sampled_from(["A", "B", "C", "D", "E", "F"]),
    st.sampled_from(["red", "blue", "green"]),
    st.floats(min_value=0, max_value=100, allow_nan=False),
)


@settings(deadline=None, max_examples=30,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=st.lists(row_strategy, min_size=1, max_size=80))
def test_property_bulk_load_is_query_equivalent(rows):
    schema = build_toy_schema()
    records = [toy_record(schema, *row) for row in rows]
    tree = bulk_load(
        schema, records,
        config=DCTreeConfig(dir_capacity=4, leaf_capacity=4),
    )
    tree.check_invariants()
    for query in QueryGenerator(schema, 0.5, seed=1).queries(4):
        expected = sum(r.measures[0] for r in records if query.matches(r))
        assert math.isclose(tree.range_query(query.mds), expected,
                            abs_tol=1e-6)


class TestAssembleOverflow:
    def test_assemble_stacks_intermediate_directories(self, toy_schema):
        """White-box: more children than dir_capacity get stacked under
        intermediate directory nodes (defensive path of ``_assemble``)."""
        from repro.core.bulkload import _BulkLoader
        from repro import DCTree, DCTreeConfig

        config = DCTreeConfig(dir_capacity=4, leaf_capacity=4)
        tree = DCTree(toy_schema, config=config)
        loader = _BulkLoader(tree)
        top_levels = [h.top_level for h in tree.hierarchies]
        leaves = []
        for i in range(13):  # > capacity, forces two stacking rounds
            record = toy_record(
                toy_schema, "C%d" % i, "City%d" % i, "red", float(i)
            )
            leaves.append(loader._make_leaf([record], list(top_levels)))
        root = loader._assemble(leaves, list(top_levels))
        assert not root.is_leaf
        assert root.entry_count <= config.dir_capacity

        def count_records(node):
            if node.is_leaf:
                return len(node.records)
            return sum(count_records(c) for c in node.children)

        assert count_records(root) == 13
