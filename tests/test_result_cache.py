"""Tests for the versioned query-result cache (``core/result_cache.py``).

The cache must be *fully* invisible except for wall-clock time: answers,
tracker counters and buffer-pool evolution are bit-identical with the
cache on or off, and no mutation path may ever leave a stale answer
servable.  These tests drive both properties, plus the LRU bound, the
counter bookkeeping, and the canonical-digest guarantees the cache key
relies on.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import hotpath
from repro.config import DCTreeConfig
from repro.core.bulkload import bulk_load
from repro.core.mds import MDS
from repro.core.result_cache import ResultCache
from repro.core.stats import collect_cache_stats
from repro.core.tree import DCTree
from repro.errors import SchemaError
from repro.maintenance.batch import BatchWarehouse
from repro.workload.queries import query_from_labels
from tests.conftest import TOY_ROWS, build_toy_schema, toy_record

COUNTRIES = ("DE", "FR", "US")
COLORS = ("red", "blue", "green")

EXTRA_ROWS = (
    ("DE", "Hamburg", "blue", 13.0),
    ("FR", "Nice", "red", 9.0),
    ("US", "Austin", "blue", 21.0),
    ("DE", "Munich", "green", 2.0),
)


def build_tree(use_cache, capacity=128):
    """Toy tree with the result cache on or off (hot-path caches fixed on)."""
    schema = build_toy_schema()
    config = DCTreeConfig(
        use_result_cache=use_cache, result_cache_capacity=capacity
    )
    tree = DCTree(schema, config=config)
    records = [toy_record(schema, *row) for row in TOY_ROWS]
    for record in records:
        tree.insert(record)
    return schema, tree, records


def counter_tuple(tree):
    snap = tree.tracker.snapshot()
    return (
        snap.node_accesses,
        snap.buffer_hits,
        snap.buffer_misses,
        snap.page_writes,
        snap.cpu_units,
    )


def country_mds(schema, countries):
    query = query_from_labels(schema, {"Geo": ("Country", list(countries))})
    return query.mds


class TestResultCacheUnit:
    def test_capacity_must_be_positive(self):
        with pytest.raises(SchemaError):
            ResultCache(capacity=0)

    def test_config_validates_capacity(self):
        with pytest.raises(SchemaError):
            DCTreeConfig(result_cache_capacity=0)

    def test_config_gate_disables_cache(self, toy_schema):
        tree = DCTree(toy_schema, config=DCTreeConfig(use_result_cache=False))
        assert tree.result_cache is None
        assert collect_cache_stats(tree) is None

    def test_hit_and_miss_counters(self):
        schema, tree, _records = build_tree(use_cache=True)
        mds = country_mds(schema, ["DE"])
        first = tree.range_query(mds)
        second = tree.range_query(mds)
        assert first == second == 35.0
        stats = collect_cache_stats(tree)
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.lookups == 2
        assert stats.hit_rate == 0.5

    def test_cached_none_answer_is_a_hit(self):
        schema, tree, _records = build_tree(use_cache=True)
        query = query_from_labels(
            schema,
            {"Geo": ("Country", ["DE"]), "Color": ("Color", ["green"])},
        )
        assert tree.range_query(query.mds, op="avg") is None
        assert tree.range_query(query.mds, op="avg") is None
        stats = collect_cache_stats(tree)
        assert (stats.hits, stats.misses) == (1, 1)

    def test_hotpath_switch_bypasses_cache(self):
        schema, tree, _records = build_tree(use_cache=True)
        mds = country_mds(schema, ["FR"])
        with hotpath.disabled():
            assert tree.range_query(mds) == 10.0
            assert tree.range_query(mds) == 10.0
        stats = collect_cache_stats(tree)
        assert stats.lookups == 0


class TestLRUEviction:
    def test_capacity_is_enforced(self):
        schema, tree, _records = build_tree(use_cache=True, capacity=2)
        for country in COUNTRIES:
            tree.range_query(country_mds(schema, [country]))
        stats = collect_cache_stats(tree)
        assert stats.size == 2
        assert stats.evictions == 1
        assert len(tree.result_cache) == 2

    def test_least_recently_used_goes_first(self):
        schema, tree, _records = build_tree(use_cache=True, capacity=2)
        tree.range_query(country_mds(schema, ["DE"]))  # miss
        tree.range_query(country_mds(schema, ["FR"]))  # miss
        tree.range_query(country_mds(schema, ["DE"]))  # hit: DE now MRU
        tree.range_query(country_mds(schema, ["US"]))  # miss: evicts FR
        tree.range_query(country_mds(schema, ["DE"]))  # still cached
        tree.range_query(country_mds(schema, ["FR"]))  # evicted: miss again
        stats = collect_cache_stats(tree)
        assert (stats.hits, stats.misses) == (2, 4)
        assert stats.evictions == 2


class TestInvalidation:
    """Every mutator entry point must make cached answers unservable."""

    def test_insert_invalidates(self):
        schema, tree, _records = build_tree(use_cache=True)
        mds = country_mds(schema, ["DE"])
        assert tree.range_query(mds) == 35.0
        tree.insert(toy_record(schema, "DE", "Bonn", "red", 7.0))
        assert tree.range_query(mds) == 42.0
        assert collect_cache_stats(tree).invalidations == 1

    def test_delete_invalidates(self):
        schema, tree, records = build_tree(use_cache=True)
        mds = country_mds(schema, ["DE"])
        assert tree.range_query(mds) == 35.0
        tree.delete(records[0])  # Munich red, 10.0
        assert tree.range_query(mds) == 25.0
        assert collect_cache_stats(tree).invalidations == 1

    def test_group_by_never_stale(self):
        schema, tree, _records = build_tree(use_cache=True)
        before = tree.group_by(0, 1)  # per country
        tree.insert(toy_record(schema, "FR", "Paris", "red", 100.0))
        after = tree.group_by(0, 1)
        assert before != after
        fresh = DCTree(schema)
        for record in tree.records():
            fresh.insert(record)
        assert after == fresh.group_by(0, 1)

    def test_bulk_load_bumps_version(self, toy_schema):
        records = [toy_record(toy_schema, *row) for row in TOY_ROWS]
        tree = bulk_load(toy_schema, records)
        assert tree.tree_version > 0
        mds = country_mds(toy_schema, ["DE"])
        assert tree.range_query(mds) == 35.0
        tree.insert(toy_record(toy_schema, "DE", "Bonn", "red", 5.0))
        assert tree.range_query(mds) == 40.0

    def test_maintenance_window_invalidates(self):
        warehouse = BatchWarehouse(build_toy_schema())
        for row in TOY_ROWS:
            warehouse.submit_insert(
                ((row[0], row[1]), (row[2],)), (row[3],)
            )
        warehouse.run_maintenance_window()
        where = {"Geo": ("Country", ["DE"])}
        assert warehouse.query(where=where) == 35.0
        warehouse.submit_insert((("DE", "Bonn"), ("red",)), (8.0,))
        warehouse.run_maintenance_window()
        assert warehouse.query(where=where) == 43.0

    def test_version_is_monotone_across_mutators(self):
        schema, tree, records = build_tree(use_cache=True)
        seen = [tree.tree_version]
        tree.insert(toy_record(schema, "FR", "Nice", "red", 1.0))
        seen.append(tree.tree_version)
        tree.delete(records[0])
        seen.append(tree.tree_version)
        assert seen == sorted(set(seen))


def populated_schema():
    """Toy schema with the TOY_ROWS label paths registered."""
    schema = build_toy_schema()
    for row in TOY_ROWS:
        toy_record(schema, *row)
    return schema


class TestDigest:
    def test_key_and_digest_ignore_construction_order(self):
        toy_schema = populated_schema()
        hierarchies = tuple(d.hierarchy for d in toy_schema.dimensions)
        geo = hierarchies[0]
        countries = sorted(geo.values_at_level(1))[:2]
        color_all = {hierarchies[1].all_id}
        forward = MDS([set(countries), set(color_all)], [1, 1])
        backward = MDS([set(reversed(countries)), set(color_all)], [1, 1])
        assert forward.cache_key() == backward.cache_key()
        assert forward.digest() == backward.digest()

    def test_different_mds_has_different_key(self):
        toy_schema = populated_schema()
        hierarchies = tuple(d.hierarchy for d in toy_schema.dimensions)
        geo = hierarchies[0]
        countries = sorted(geo.values_at_level(1))
        color_all = {hierarchies[1].all_id}
        one = MDS([{countries[0]}, set(color_all)], [1, 1])
        two = MDS([{countries[1]}, set(color_all)], [1, 1])
        assert one.cache_key() != two.cache_key()
        assert one.digest() != two.digest()

    def test_digest_is_stable_across_calls(self):
        toy_schema = populated_schema()
        mds = MDS.all_mds(tuple(d.hierarchy for d in toy_schema.dimensions))
        assert mds.digest() == mds.digest()
        assert len(mds.digest()) == 64


class TestGroupByCopies:
    def test_cached_aggregators_cannot_be_poisoned(self):
        schema, tree, _records = build_tree(use_cache=True)
        first = tree.group_by_aggregators(0, 1)
        baseline = {value: agg.result() for value, agg in first.items()}
        victim = next(iter(first.values()))
        victim.add_summary(victim._summary.copy())  # double it in place
        second = tree.group_by_aggregators(0, 1)
        assert {v: a.result() for v, a in second.items()} == baseline


ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.sampled_from(COUNTRIES),
            st.integers(min_value=0, max_value=5),
            st.sampled_from(COLORS),
            st.integers(min_value=1, max_value=50),
        ),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=30)),
        st.tuples(
            st.just("range"),
            st.sets(st.sampled_from(COUNTRIES), min_size=1),
            st.sampled_from(["sum", "count", "avg", "min", "max"]),
        ),
        st.tuples(st.just("groupby"), st.integers(min_value=0, max_value=1)),
    ),
    min_size=1,
    max_size=30,
)


def run_sequence(tree, schema, operations):
    """Apply an op sequence; returns the answers it produced."""
    live = [toy_record(schema, *row) for row in TOY_ROWS]
    answers = []
    for operation in operations:
        kind = operation[0]
        if kind == "insert":
            _, country, city_n, color, sales = operation
            record = toy_record(
                schema, country, "city%d" % city_n, color, float(sales)
            )
            tree.insert(record)
            live.append(record)
        elif kind == "delete":
            if live:
                record = live.pop(operation[1] % len(live))
                tree.delete(record)
        elif kind == "range":
            _, countries, op = operation
            mds = country_mds(schema, sorted(countries))
            answers.append(tree.range_query(mds, op=op))
        else:
            answers.append(tree.group_by(0, operation[1]))
    return answers


class TestEquivalence:
    @given(operations=ops_strategy)
    def test_cache_on_off_bit_identical(self, operations):
        """Same answers AND same tracker counters, cache on vs off."""
        schema_on, tree_on, _ = build_tree(use_cache=True)
        schema_off, tree_off, _ = build_tree(use_cache=False)
        tree_on.tracker.reset(clear_buffer=True)
        tree_off.tracker.reset(clear_buffer=True)
        answers_on = run_sequence(tree_on, schema_on, operations)
        answers_off = run_sequence(tree_off, schema_off, operations)
        assert answers_on == answers_off
        assert counter_tuple(tree_on) == counter_tuple(tree_off)

    @given(operations=ops_strategy)
    def test_repeated_queries_hit_without_mutation(self, operations):
        """Re-asking the same queries with no mutation in between is all
        hits, and the repeated pass charges the same counters again."""
        schema, tree, _ = build_tree(use_cache=True)
        queries = [op for op in operations if op[0] in ("range", "groupby")]
        if not queries:
            return
        tree.tracker.reset(clear_buffer=True)
        first = run_sequence(tree, schema, queries)
        first_cost = counter_tuple(tree)
        before = collect_cache_stats(tree)
        second = run_sequence(tree, schema, queries)
        after = collect_cache_stats(tree)
        assert first == second
        assert after.hits - before.hits == len(first)
        second_cost = tuple(
            now - then for now, then in zip(counter_tuple(tree), first_cost)
        )
        # Node accesses and CPU replay exactly; the buffer hit/miss split
        # may shift because the pool is warmer on the second pass (exactly
        # as it would be when recomputing without the cache).
        assert second_cost[0] == first_cost[0]
        assert second_cost[4] == first_cost[4]
