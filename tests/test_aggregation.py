"""Unit tests for measure summaries and aggregate vectors."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cube.aggregation import (
    AggregateVector,
    MeasureSummary,
    StreamingAggregator,
)
from repro.errors import QueryError
from tests.conftest import build_toy_schema, toy_record

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestMeasureSummary:
    def test_empty(self):
        summary = MeasureSummary()
        assert summary.is_empty()
        assert summary.aggregate("sum") == 0.0
        assert summary.aggregate("count") == 0

    def test_empty_avg_min_max_are_none(self):
        summary = MeasureSummary()
        assert summary.aggregate("avg") is None
        assert summary.aggregate("min") is None
        assert summary.aggregate("max") is None

    def test_single_value(self):
        summary = MeasureSummary.of_value(5.0)
        assert summary.aggregate("sum") == 5.0
        assert summary.aggregate("count") == 1
        assert summary.aggregate("avg") == 5.0
        assert summary.aggregate("min") == 5.0
        assert summary.aggregate("max") == 5.0

    def test_add_values(self):
        summary = MeasureSummary()
        for value in (3.0, -1.0, 7.0):
            summary.add_value(value)
        assert summary.aggregate("sum") == 9.0
        assert summary.aggregate("min") == -1.0
        assert summary.aggregate("max") == 7.0
        assert summary.aggregate("avg") == 3.0

    def test_add_summary_merges(self):
        a = MeasureSummary.of_value(2.0)
        b = MeasureSummary.of_value(10.0)
        a.add_summary(b)
        assert a.aggregate("count") == 2
        assert a.aggregate("max") == 10.0

    def test_subtract_interior_value_keeps_extrema(self):
        summary = MeasureSummary()
        for value in (1.0, 5.0, 9.0):
            summary.add_value(value)
        stale = summary.subtract_value(5.0)
        assert not stale
        assert summary.aggregate("sum") == 10.0
        assert summary.aggregate("min") == 1.0

    def test_subtract_extremum_reports_stale(self):
        summary = MeasureSummary()
        for value in (1.0, 5.0, 9.0):
            summary.add_value(value)
        assert summary.subtract_value(9.0)

    def test_subtract_to_empty_resets(self):
        summary = MeasureSummary.of_value(4.0)
        stale = summary.subtract_value(4.0)
        assert not stale
        assert summary.is_empty()
        assert summary.min == math.inf

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(QueryError):
            MeasureSummary().aggregate("median")

    def test_copy_is_independent(self):
        a = MeasureSummary.of_value(1.0)
        b = a.copy()
        b.add_value(100.0)
        assert a.aggregate("count") == 1

    def test_equality(self):
        a = MeasureSummary.of_value(2.0)
        b = MeasureSummary.of_value(2.0)
        assert a == b
        b.add_value(1.0)
        assert a != b

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_matches_builtin_aggregates(self, values):
        summary = MeasureSummary()
        for value in values:
            summary.add_value(value)
        assert math.isclose(summary.aggregate("sum"), sum(values),
                            abs_tol=1e-6)
        assert summary.aggregate("count") == len(values)
        assert summary.aggregate("min") == min(values)
        assert summary.aggregate("max") == max(values)
        assert math.isclose(
            summary.aggregate("avg"), sum(values) / len(values), abs_tol=1e-6
        )

    @given(
        st.lists(finite_floats, min_size=2, max_size=30),
        st.integers(min_value=1, max_value=10),
    )
    def test_merge_equals_concatenation(self, values, cut_at):
        cut = min(cut_at, len(values) - 1)
        left = MeasureSummary()
        for value in values[:cut]:
            left.add_value(value)
        right = MeasureSummary()
        for value in values[cut:]:
            right.add_value(value)
        left.add_summary(right)
        whole = MeasureSummary()
        for value in values:
            whole.add_value(value)
        assert left == whole


class TestAggregateVector:
    def test_of_record(self):
        schema = build_toy_schema()
        record = toy_record(schema, "DE", "Munich", "red", 12.0)
        vector = AggregateVector.of_record(record)
        assert vector.count == 1
        assert vector.aggregate("sum") == 12.0

    def test_add_vector(self):
        schema = build_toy_schema()
        a = AggregateVector.of_record(
            toy_record(schema, "DE", "Munich", "red", 3.0)
        )
        b = AggregateVector.of_record(
            toy_record(schema, "DE", "Berlin", "red", 4.0)
        )
        a.add_vector(b)
        assert a.aggregate("sum") == 7.0
        assert a.count == 2

    def test_subtract_record(self):
        schema = build_toy_schema()
        vector = AggregateVector(1)
        low = toy_record(schema, "DE", "Munich", "red", 3.0)
        high = toy_record(schema, "DE", "Berlin", "red", 9.0)
        vector.add_record(low)
        vector.add_record(high)
        stale = vector.subtract_record(high)
        assert stale  # removed the maximum
        assert vector.aggregate("sum") == 3.0

    def test_clear(self):
        schema = build_toy_schema()
        vector = AggregateVector.of_record(
            toy_record(schema, "DE", "Munich", "red", 3.0)
        )
        vector.clear()
        assert vector.count == 0
        assert vector.aggregate("sum") == 0.0

    def test_copy_independent(self):
        schema = build_toy_schema()
        vector = AggregateVector.of_record(
            toy_record(schema, "DE", "Munich", "red", 3.0)
        )
        clone = vector.copy()
        clone.add_record(toy_record(schema, "FR", "Paris", "red", 5.0))
        assert vector.count == 1
        assert clone.count == 2

    def test_equality(self):
        schema = build_toy_schema()
        record = toy_record(schema, "DE", "Munich", "red", 3.0)
        assert AggregateVector.of_record(record) == AggregateVector.of_record(
            record
        )


class TestStreamingAggregator:
    def test_rejects_unknown_op(self):
        with pytest.raises(QueryError):
            StreamingAggregator("median")

    def test_accumulates_records(self):
        schema = build_toy_schema()
        aggregator = StreamingAggregator("sum")
        aggregator.add_record(toy_record(schema, "DE", "Munich", "red", 3.0))
        aggregator.add_record(toy_record(schema, "FR", "Paris", "red", 4.0))
        assert aggregator.result() == 7.0
        assert aggregator.count == 2

    def test_accumulates_vectors(self):
        schema = build_toy_schema()
        aggregator = StreamingAggregator("max")
        aggregator.add_vector(
            AggregateVector.of_record(
                toy_record(schema, "DE", "Munich", "red", 3.0)
            )
        )
        aggregator.add_vector(
            AggregateVector.of_record(
                toy_record(schema, "FR", "Paris", "red", 11.0)
            )
        )
        assert aggregator.result() == 11.0

    def test_mixed_records_and_vectors(self):
        schema = build_toy_schema()
        aggregator = StreamingAggregator("count")
        aggregator.add_record(toy_record(schema, "DE", "Munich", "red", 3.0))
        aggregator.add_vector(
            AggregateVector.of_record(
                toy_record(schema, "FR", "Paris", "red", 4.0)
            )
        )
        assert aggregator.result() == 2

    def test_empty_sum_is_zero(self):
        assert StreamingAggregator("sum").result() == 0.0

    def test_empty_avg_is_none(self):
        assert StreamingAggregator("avg").result() is None

    def test_second_measure_index(self):
        aggregator = StreamingAggregator("sum", measure_index=1)
        vector = AggregateVector(2)
        vector.summaries[1].add_value(42.0)
        aggregator.add_vector(vector)
        assert aggregator.result() == 42.0
