"""Unit and property tests for the MDS algebra (Definitions 3 and 4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import mds as mds_mod
from repro.core.mds import MDS
from repro.errors import MdsError
from tests.conftest import build_toy_schema, toy_record

COUNTRIES = ("DE", "FR", "US", "JP")
CITIES = {
    "DE": ("Munich", "Berlin"),
    "FR": ("Paris", "Lyon"),
    "US": ("NYC", "Boston"),
    "JP": ("Tokyo",),
}
COLORS = ("red", "blue", "green")


@pytest.fixture
def populated():
    """Toy schema with every (country, city, color) combination inserted."""
    schema = build_toy_schema()
    records = []
    value = 1.0
    for country in COUNTRIES:
        for city in CITIES[country]:
            for color in COLORS:
                records.append(
                    toy_record(schema, country, city, color, value)
                )
                value += 1.0
    return schema, records


def hset(schema):
    return tuple(d.hierarchy for d in schema.dimensions)


class TestConstruction:
    def test_all_mds(self, populated):
        schema, _records = populated
        mds = MDS.all_mds(hset(schema))
        assert mds.levels == (2, 1)
        assert mds.volume() == 1
        assert mds.size() == 2

    def test_mismatched_sets_levels(self):
        with pytest.raises(MdsError):
            MDS([{1}, {2}], [0])

    def test_for_record_at_leaf_levels(self, populated):
        schema, records = populated
        record = records[0]
        mds = MDS.for_record(record, (0, 0), hset(schema))
        assert mds.value_set(0) == {record.leaf_value(0)}
        assert mds.value_set(1) == {record.leaf_value(1)}

    def test_for_record_at_top_levels_uses_all(self, populated):
        schema, records = populated
        mds = MDS.for_record(records[0], (2, 1), hset(schema))
        assert mds.value_set(0) == {schema.hierarchy(0).all_id}
        assert mds.value_set(1) == {schema.hierarchy(1).all_id}

    def test_empty(self):
        mds = MDS.empty((1, 0))
        assert mds.is_empty()
        assert mds.volume() == 0

    def test_copy_independent(self, populated):
        schema, records = populated
        mds = MDS.for_record(records[0], (0, 0), hset(schema))
        clone = mds.copy()
        clone.value_set(0).add(999)
        assert mds.cardinality(0) == 1


class TestPaperExample:
    """The (Germany, France | North America | 1996, 1997) example of §3.2."""

    @pytest.fixture
    def cube(self):
        from repro import CubeSchema, Dimension, Measure

        schema = CubeSchema(
            dimensions=[
                Dimension("Customer", ("Nation", "Region")),
                Dimension("Supplier", ("Region",)),
                Dimension("Time", ("Year",)),
            ],
            measures=[Measure("Dollars")],
        )
        r1 = schema.record(
            (("Europe", "Germany"), ("North America",), ("1996",)), (100.0,)
        )
        r2 = schema.record(
            (("Europe", "France"), ("North America",), ("1997",)), (200.0,)
        )
        return schema, r1, r2

    def test_cover_at_nation_level(self, cube):
        schema, r1, r2 = cube
        hierarchies = hset(schema)
        m1 = MDS.for_record(r1, (0, 0, 0), hierarchies)
        m2 = MDS.for_record(r2, (0, 0, 0), hierarchies)
        cover = MDS.cover_of([m1, m2], hierarchies)
        # ({Germany, France}, {North America}, {1996, 1997})
        assert cover.cardinality(0) == 2
        assert cover.cardinality(1) == 1
        assert cover.cardinality(2) == 2
        assert cover.size() == 5
        assert cover.volume() == 4

    def test_cover_at_region_level(self, cube):
        schema, r1, r2 = cube
        hierarchies = hset(schema)
        m1 = MDS.for_record(r1, (1, 0, 0), hierarchies)
        m2 = MDS.for_record(r2, (1, 0, 0), hierarchies)
        cover = MDS.cover_of([m1, m2], hierarchies)
        # ({Europe}, {North America}, {1996, 1997})
        assert cover.cardinality(0) == 1
        europe = next(iter(cover.value_set(0)))
        assert schema.hierarchy(0).label(europe) == "Europe"


class TestAdaptation:
    def test_adapt_up_maps_to_ancestors(self, populated):
        schema, records = populated
        hierarchies = hset(schema)
        mds = MDS.for_record(records[0], (0, 0), hierarchies)
        lifted = mds.adapted_set(0, 1, hierarchies[0])
        assert lifted == {records[0].value_at_level(0, 1)}

    def test_adapt_same_level_returns_copy(self, populated):
        schema, records = populated
        hierarchies = hset(schema)
        mds = MDS.for_record(records[0], (0, 0), hierarchies)
        same = mds.adapted_set(0, 0, hierarchies[0])
        same.add(123)
        assert mds.cardinality(0) == 1

    def test_adapt_down_raises(self, populated):
        schema, records = populated
        hierarchies = hset(schema)
        mds = MDS.for_record(records[0], (1, 0), hierarchies)
        with pytest.raises(MdsError):
            mds.adapted_set(0, 0, hierarchies[0])

    def test_adapted_to_produces_new_levels(self, populated):
        schema, records = populated
        hierarchies = hset(schema)
        mds = MDS.for_record(records[0], (0, 0), hierarchies)
        lifted = mds.adapted_to((2, 1), hierarchies)
        assert lifted.levels == (2, 1)
        assert lifted.value_set(0) == {hierarchies[0].all_id}

    def test_adaptation_merges_values(self, populated):
        schema, records = populated
        hierarchies = hset(schema)
        mds = MDS.empty((0, 0))
        for record in records[:6]:  # all DE records
            mds.add_record(record, hierarchies)
        lifted = mds.adapted_set(0, 1, hierarchies[0])
        assert len(lifted) == 1  # Munich+Berlin -> DE


class TestDefinition4Operations:
    @pytest.fixture
    def pair(self, populated):
        schema, records = populated
        hierarchies = hset(schema)
        de = MDS.empty((0, 0))
        for record in records:
            if schema.hierarchy(0).label(record.value_at_level(0, 1)) == "DE":
                de.add_record(record, hierarchies)
        fr = MDS.empty((0, 0))
        for record in records:
            if schema.hierarchy(0).label(record.value_at_level(0, 1)) == "FR":
                fr.add_record(record, hierarchies)
        return schema, hierarchies, de, fr

    def test_size_is_sum_of_cardinalities(self, pair):
        _schema, _h, de, _fr = pair
        assert de.size() == 2 + 3  # 2 cities, 3 colors

    def test_volume_is_product(self, pair):
        _schema, _h, de, _fr = pair
        assert de.volume() == 2 * 3

    def test_overlap_disjoint_cities_shared_colors(self, pair):
        _schema, hierarchies, de, fr = pair
        # Cities disjoint => overlap product = 0.
        assert mds_mod.overlap(de, fr, hierarchies) == 0
        assert not mds_mod.overlaps(de, fr, hierarchies)

    def test_overlap_with_itself_is_volume(self, pair):
        _schema, hierarchies, de, _fr = pair
        assert mds_mod.overlap(de, de, hierarchies) == de.volume()

    def test_extension(self, pair):
        _schema, hierarchies, de, fr = pair
        # 4 cities union, 3 colors union.
        assert mds_mod.extension(de, fr, hierarchies) == 4 * 3

    def test_union_cardinality_per_dimension(self, pair):
        _schema, hierarchies, de, fr = pair
        assert mds_mod.union_cardinality(de, fr, 0, hierarchies) == 4
        assert mds_mod.union_cardinality(de, fr, 1, hierarchies) == 3

    def test_overlap_adapts_levels(self, pair):
        schema, hierarchies, de, fr = pair
        country_level = de.adapted_to((1, 0), hierarchies)
        # At country level DE vs FR city-level MDS: adaptation lifts FR to
        # country level; countries differ => no overlap.
        assert mds_mod.overlap(country_level, fr, hierarchies) == 0

    def test_overlap_level_adaptation_can_overestimate(self, populated):
        schema, records = populated
        hierarchies = hset(schema)
        munich = MDS.empty((0, 0))
        munich.add_record(records[0], hierarchies)
        berlin = MDS.empty((0, 0))
        berlin.add_record(records[3], hierarchies)
        de_level = munich.adapted_to((1, 0), hierarchies)
        # Munich-at-country-level vs Berlin overlaps (both DE) even though
        # the city sets are disjoint - the documented may-overlap effect.
        assert mds_mod.overlaps(de_level, berlin, hierarchies)


class TestContains:
    def test_contains_same_level(self, populated):
        schema, records = populated
        hierarchies = hset(schema)
        small = MDS.empty((0, 0))
        small.add_record(records[0], hierarchies)
        big = MDS.empty((0, 0))
        for record in records[:6]:
            big.add_record(record, hierarchies)
        assert mds_mod.contains(big, small, hierarchies)
        assert not mds_mod.contains(small, big, hierarchies)

    def test_contains_higher_container_level(self, populated):
        schema, records = populated
        hierarchies = hset(schema)
        de_country = MDS.empty((1, 0))
        for record in records[:6]:
            de_country.add_record(record, hierarchies)
        munich_red = MDS.empty((0, 0))
        munich_red.add_record(records[0], hierarchies)
        assert mds_mod.contains(de_country, munich_red, hierarchies)

    def test_contains_lower_container_level_needs_all_descendants(
        self, populated
    ):
        schema, records = populated
        hierarchies = hset(schema)
        # Container: city-level MDS with only Munich.
        munich_only = MDS.empty((0, 0))
        for record in records[:3]:
            munich_only.add_record(record, hierarchies)
        # Contained: country-level {DE} - NOT contained, Berlin missing.
        de = MDS.empty((1, 0))
        for record in records[:6]:
            de.add_record(record, hierarchies)
        assert not mds_mod.contains(munich_only, de, hierarchies)

    def test_contains_lower_container_level_with_all_descendants(
        self, populated
    ):
        schema, records = populated
        hierarchies = hset(schema)
        all_de_cities = MDS.empty((0, 0))
        for record in records[:6]:
            all_de_cities.add_record(record, hierarchies)
        de = MDS.empty((1, 0))
        for record in records[:6]:
            de.add_record(record, hierarchies)
        assert mds_mod.contains(all_de_cities, de, hierarchies)

    def test_all_mds_contains_everything(self, populated):
        schema, records = populated
        hierarchies = hset(schema)
        everything = MDS.all_mds(hierarchies)
        any_mds = MDS.for_record(records[5], (0, 0), hierarchies)
        assert mds_mod.contains(everything, any_mds, hierarchies)


class TestCoversRecord:
    def test_covers_after_add(self, populated):
        schema, records = populated
        hierarchies = hset(schema)
        mds = MDS.empty((1, 0))
        mds.add_record(records[0], hierarchies)
        assert mds_mod.covers_record(mds, records[0], hierarchies)

    def test_covers_sibling_city_at_country_level(self, populated):
        schema, records = populated
        hierarchies = hset(schema)
        mds = MDS.empty((1, 0))
        mds.add_record(records[0], hierarchies)  # Munich red -> DE, red
        assert mds_mod.covers_record(mds, records[3], hierarchies)  # Berlin red

    def test_does_not_cover_other_country(self, populated):
        schema, records = populated
        hierarchies = hset(schema)
        mds = MDS.empty((1, 0))
        mds.add_record(records[0], hierarchies)
        # records[6] is FR (after 2 cities x 3 colors of DE).
        assert not mds_mod.covers_record(mds, records[6], hierarchies)

    def test_all_mds_covers_everything(self, populated):
        schema, records = populated
        hierarchies = hset(schema)
        everything = MDS.all_mds(hierarchies)
        for record in records:
            assert mds_mod.covers_record(everything, record, hierarchies)


class TestOperationCost:
    def test_positive_and_bounded(self, populated):
        schema, records = populated
        hierarchies = hset(schema)
        a = MDS.empty((0, 0))
        b = MDS.empty((0, 0))
        for record in records[:6]:
            a.add_record(record, hierarchies)
        for record in records:
            b.add_record(record, hierarchies)
        cost = mds_mod.operation_cost(a, b)
        assert cost >= a.n_dimensions
        assert cost <= a.n_dimensions + a.size()


class TestValueSemantics:
    def test_equality(self, populated):
        schema, records = populated
        hierarchies = hset(schema)
        a = MDS.for_record(records[0], (0, 0), hierarchies)
        b = MDS.for_record(records[0], (0, 0), hierarchies)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_by_level(self, populated):
        schema, records = populated
        hierarchies = hset(schema)
        a = MDS.for_record(records[0], (0, 0), hierarchies)
        b = MDS.for_record(records[0], (1, 0), hierarchies)
        assert a != b

    def test_not_equal_to_other_type(self, populated):
        schema, records = populated
        a = MDS.for_record(records[0], (0, 0), hset(schema))
        assert a != "mds"

    def test_entries_view_is_frozen(self, populated):
        schema, records = populated
        a = MDS.for_record(records[0], (0, 0), hset(schema))
        values, level = a.entries[0]
        assert isinstance(values, frozenset)
        assert level == 0


# ----------------------------------------------------------------------
# property-based invariants
# ----------------------------------------------------------------------

record_indices = st.lists(
    st.integers(min_value=0, max_value=20), min_size=1, max_size=12
)
level_pairs = st.tuples(
    st.integers(min_value=0, max_value=2), st.integers(min_value=0, max_value=1)
)


@given(indices=record_indices, levels=level_pairs)
def test_cover_covers_all_inputs(indices, levels):
    schema, records = _shared_populated()
    hierarchies = hset(schema)
    mdss = [
        MDS.for_record(records[i % len(records)], levels, hierarchies)
        for i in indices
    ]
    cover = MDS.cover_of(mdss, hierarchies)
    for mds in mdss:
        assert mds_mod.contains(cover, mds, hierarchies)


@given(indices=record_indices, levels=level_pairs)
def test_cover_is_minimal(indices, levels):
    """Dropping any value from the cover breaks coverage (Definition 3)."""
    schema, records = _shared_populated()
    hierarchies = hset(schema)
    chosen = [records[i % len(records)] for i in indices]
    cover = MDS.empty(levels)
    for record in chosen:
        cover.add_record(record, hierarchies)
    for dim in range(cover.n_dimensions):
        for value in list(cover.value_set(dim)):
            cover.value_set(dim).discard(value)
            assert not all(
                mds_mod.covers_record(cover, record, hierarchies)
                for record in chosen
            )
            cover.value_set(dim).add(value)


@given(indices_a=record_indices, indices_b=record_indices, levels=level_pairs)
def test_overlap_symmetry(indices_a, indices_b, levels):
    schema, records = _shared_populated()
    hierarchies = hset(schema)
    a = MDS.empty(levels)
    for i in indices_a:
        a.add_record(records[i % len(records)], hierarchies)
    b = MDS.empty(levels)
    for i in indices_b:
        b.add_record(records[i % len(records)], hierarchies)
    assert mds_mod.overlap(a, b, hierarchies) == mds_mod.overlap(
        b, a, hierarchies
    )
    assert mds_mod.extension(a, b, hierarchies) == mds_mod.extension(
        b, a, hierarchies
    )


@given(indices_a=record_indices, indices_b=record_indices, levels=level_pairs)
def test_overlap_bounded_by_volumes(indices_a, indices_b, levels):
    schema, records = _shared_populated()
    hierarchies = hset(schema)
    a = MDS.empty(levels)
    for i in indices_a:
        a.add_record(records[i % len(records)], hierarchies)
    b = MDS.empty(levels)
    for i in indices_b:
        b.add_record(records[i % len(records)], hierarchies)
    shared = mds_mod.overlap(a, b, hierarchies)
    assert shared <= min(a.volume(), b.volume())
    assert mds_mod.extension(a, b, hierarchies) >= max(
        a.volume(), b.volume()
    )


@given(indices_a=record_indices, indices_b=record_indices)
def test_contains_implies_covers_same_records(indices_a, indices_b):
    """If A contains B then every record covered by B is covered by A."""
    schema, records = _shared_populated()
    hierarchies = hset(schema)
    a = MDS.empty((1, 0))
    for i in indices_a:
        a.add_record(records[i % len(records)], hierarchies)
    b = MDS.empty((0, 0))
    for i in indices_b:
        b.add_record(records[i % len(records)], hierarchies)
    if mds_mod.contains(a, b, hierarchies):
        for record in records:
            if mds_mod.covers_record(b, record, hierarchies):
                assert mds_mod.covers_record(a, record, hierarchies)


_POPULATED_CACHE = None


def _shared_populated():
    """Build the fully populated toy cube once (hypothesis calls are many)."""
    global _POPULATED_CACHE
    if _POPULATED_CACHE is None:
        schema = build_toy_schema()
        records = []
        value = 1.0
        for country in COUNTRIES:
            for city in CITIES[country]:
                for color in COLORS:
                    records.append(
                        toy_record(schema, country, city, color, value)
                    )
                    value += 1.0
        _POPULATED_CACHE = (schema, records)
    return _POPULATED_CACHE


class TestRefineDimension:
    def test_refine_lowers_level_and_replaces_set(self, populated):
        schema, records = populated
        hierarchies = hset(schema)
        mds = MDS.for_record(records[0], (2, 1), hierarchies)
        country = records[0].value_at_level(0, 1)
        mds.refine_dimension(0, {country}, 1)
        assert mds.level(0) == 1
        assert mds.value_set(0) == {country}

    def test_refine_same_level_allowed(self, populated):
        schema, records = populated
        mds = MDS.for_record(records[0], (1, 0), hset(schema))
        mds.refine_dimension(0, {42}, 1)
        assert mds.value_set(0) == {42}

    def test_refine_upwards_rejected(self, populated):
        schema, records = populated
        mds = MDS.for_record(records[0], (0, 0), hset(schema))
        with pytest.raises(MdsError):
            mds.refine_dimension(0, {1}, 1)


class TestAddMds:
    def test_add_mds_merges_adapted_values(self, populated):
        schema, records = populated
        hierarchies = hset(schema)
        country_level = MDS.empty((1, 0))
        country_level.add_record(records[0], hierarchies)
        city_level = MDS.for_record(records[6], (0, 0), hierarchies)
        country_level.add_mds(city_level, hierarchies)
        assert country_level.cardinality(0) == 2  # DE + FR

    def test_add_mds_rejects_coarser_source(self, populated):
        schema, records = populated
        hierarchies = hset(schema)
        fine = MDS.for_record(records[0], (0, 0), hierarchies)
        coarse = MDS.for_record(records[0], (1, 0), hierarchies)
        with pytest.raises(MdsError):
            fine.add_mds(coarse, hierarchies)
