"""Tests for group-by (roll-up) queries."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DCTree, DCTreeConfig, TPCDGenerator, Warehouse, make_tpcd_schema
from repro.errors import QueryError, SchemaError
from repro.workload.queries import query_from_labels
from tests.conftest import TOY_ROWS, build_toy_schema, toy_record


def build_tree_and_records():
    schema = build_toy_schema()
    tree = DCTree(schema)
    records = [toy_record(schema, *row) for row in TOY_ROWS]
    for record in records:
        tree.insert(record)
    return schema, tree, records


class TestTreeGroupBy:
    def test_group_by_country(self):
        schema, tree, _records = build_tree_and_records()
        groups = tree.group_by(0, 1)
        hierarchy = schema.hierarchy(0)
        by_label = {hierarchy.label(k): v for k, v in groups.items()}
        assert by_label == {"DE": 35.0, "FR": 10.0, "US": 51.0}

    def test_group_by_city(self):
        schema, tree, _records = build_tree_and_records()
        groups = tree.group_by(0, 0)
        assert len(groups) == 6  # Munich occurs in two rows
        assert math.isclose(sum(groups.values()), 96.0)

    def test_group_by_color_count(self):
        schema, tree, _records = build_tree_and_records()
        groups = tree.group_by(1, 0, op="count")
        hierarchy = schema.hierarchy(1)
        by_label = {hierarchy.label(k): v for k, v in groups.items()}
        assert by_label == {"red": 3, "blue": 2, "green": 2}

    def test_group_by_with_range(self):
        schema, tree, _records = build_tree_and_records()
        query = query_from_labels(schema, {"Color": ("Color", ["red"])})
        groups = tree.group_by(0, 1, range_mds=query.mds)
        hierarchy = schema.hierarchy(0)
        by_label = {hierarchy.label(k): v for k, v in groups.items()}
        assert by_label == {"DE": 15.0, "US": 40.0}

    def test_group_sums_match_range_queries(self):
        schema, tree, _records = build_tree_and_records()
        groups = tree.group_by(0, 1)
        hierarchy = schema.hierarchy(0)
        for value, total in groups.items():
            query = query_from_labels(
                schema, {"Geo": ("Country", [hierarchy.label(value)])}
            )
            assert math.isclose(total, tree.range_query(query.mds))

    def test_invalid_dimension(self):
        _schema, tree, _records = build_tree_and_records()
        with pytest.raises(QueryError):
            tree.group_by(5, 0)

    def test_invalid_level(self):
        _schema, tree, _records = build_tree_and_records()
        with pytest.raises(QueryError):
            tree.group_by(0, 2)  # ALL is not a group-by level

    def test_empty_tree_groups_empty(self, toy_schema):
        tree = DCTree(toy_schema)
        assert tree.group_by(0, 0) == {}

    def test_aggregates_disabled_same_result(self):
        schema, tree, _records = build_tree_and_records()
        with_aggregates = tree.group_by(0, 1)
        tree.config.use_materialized_aggregates = False
        without = tree.group_by(0, 1)
        tree.config.use_materialized_aggregates = True
        assert with_aggregates == without


class TestWarehouseGroupBy:
    @pytest.mark.parametrize("backend", ["dc-tree", "x-tree", "scan"])
    def test_labels_merged_across_backends(self, backend):
        warehouse = Warehouse(build_toy_schema(), backend)
        for country, city, color, sales in TOY_ROWS:
            warehouse.insert(((country, city), (color,)), (sales,))
        groups = warehouse.group_by("Geo", "Country")
        assert groups == {"DE": 35.0, "FR": 10.0, "US": 51.0}

    def test_duplicate_labels_merge(self):
        warehouse = Warehouse(build_toy_schema())
        warehouse.insert((("DE", "Springfield"), ("red",)), (1.0,))
        warehouse.insert((("US", "Springfield"), ("red",)), (2.0,))
        groups = warehouse.group_by("Geo", "City")
        assert groups == {"Springfield": 3.0}

    def test_avg_merges_correctly(self):
        warehouse = Warehouse(build_toy_schema())
        warehouse.insert((("DE", "Springfield"), ("red",)), (1.0,))
        warehouse.insert((("US", "Springfield"), ("red",)), (3.0,))
        groups = warehouse.group_by("Geo", "City", op="avg")
        assert groups == {"Springfield": 2.0}

    def test_with_where(self):
        warehouse = Warehouse(build_toy_schema())
        for country, city, color, sales in TOY_ROWS:
            warehouse.insert(((country, city), (color,)), (sales,))
        groups = warehouse.group_by(
            "Color", "Color", where={"Geo": ("Country", ["DE"])}
        )
        assert groups == {"red": 15.0, "blue": 20.0}

    def test_unknown_level_rejected(self):
        warehouse = Warehouse(build_toy_schema())
        with pytest.raises(SchemaError):
            warehouse.group_by("Geo", "Continent")

    def test_tpcd_segments_merge_to_five(self):
        schema = make_tpcd_schema()
        warehouse = Warehouse(schema)
        generator = TPCDGenerator(schema, seed=2, scale_records=400)
        for record in generator.records(400):
            warehouse.insert_record(record)
        groups = warehouse.group_by("Customer", "MktSegment")
        assert len(groups) <= 5
        assert math.isclose(sum(groups.values()), warehouse.query("sum"))


row_strategy = st.tuples(
    st.sampled_from(["DE", "FR", "US"]),
    st.sampled_from(["A", "B", "C", "D"]),
    st.sampled_from(["red", "blue", "green"]),
    st.floats(min_value=0, max_value=100, allow_nan=False),
)


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rows=st.lists(row_strategy, min_size=1, max_size=50))
def test_groups_partition_the_total(rows):
    schema = build_toy_schema()
    tree = DCTree(
        schema, config=DCTreeConfig(dir_capacity=4, leaf_capacity=4)
    )
    records = [toy_record(schema, *row) for row in rows]
    for record in records:
        tree.insert(record)
    for dim, level in ((0, 0), (0, 1), (1, 0)):
        groups = tree.group_by(dim, level)
        assert math.isclose(
            sum(groups.values()),
            sum(r.measures[0] for r in records),
            abs_tol=1e-6,
        )
        counts = tree.group_by(dim, level, op="count")
        assert sum(counts.values()) == len(records)
