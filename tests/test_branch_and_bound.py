"""Tests for branch-and-bound range-MAX/MIN (reference [6] style)."""


import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DCTree, DCTreeConfig, TPCDGenerator, make_tpcd_schema
from repro.workload.queries import QueryGenerator, query_from_labels
from tests.conftest import build_toy_schema, toy_record


@pytest.fixture(scope="module")
def tpcd_tree():
    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=21, scale_records=2000)
    tree = DCTree(schema)
    for record in generator.records(2000):
        tree.insert(record)
    return schema, tree


class TestCorrectness:
    @pytest.mark.parametrize("op", ["min", "max"])
    def test_agrees_with_generic_path(self, tpcd_tree, op):
        schema, tree = tpcd_tree
        for query in QueryGenerator(schema, 0.2, seed=1).queries(20):
            fast = tree.range_query(query.mds, op=op)
            tree.config.use_materialized_aggregates = False
            slow = tree.range_query(query.mds, op=op)
            tree.config.use_materialized_aggregates = True
            assert fast == slow

    @pytest.mark.parametrize("op", ["min", "max"])
    def test_agrees_with_naive_scan(self, tpcd_tree, op):
        schema, tree = tpcd_tree
        records = list(tree.records())
        for query in QueryGenerator(schema, 0.3, seed=2).queries(10):
            matching = [
                r.measures[0] for r in records if query.matches(r)
            ]
            expected = (
                None if not matching
                else (max(matching) if op == "max" else min(matching))
            )
            assert tree.range_query(query.mds, op=op) == expected

    def test_empty_range_returns_none(self):
        schema = build_toy_schema()
        tree = DCTree(schema)
        tree.insert(toy_record(schema, "DE", "Munich", "red", 5.0))
        query = query_from_labels(schema, {"Color": ("Color", ["red"])})
        narrow = query_from_labels(
            schema,
            {"Geo": ("City", ["Munich"]), "Color": ("Color", ["red"])},
        )
        assert tree.range_query(query.mds, op="max") == 5.0
        toy_record(schema, "FR", "Paris", "blue", 0.0)  # labels only
        missing = query_from_labels(schema, {"Geo": ("Country", ["FR"])})
        assert tree.range_query(missing.mds, op="max") is None
        assert tree.range_query(narrow.mds, op="min") == 5.0


class TestPruning:
    def test_bb_reads_fewer_nodes_than_generic(self, tpcd_tree):
        """The whole point: bounds prune partially overlapping subtrees."""
        schema, tree = tpcd_tree
        queries = list(QueryGenerator(schema, 0.25, seed=5).queries(20))

        tree.tracker.reset(clear_buffer=True)
        for query in queries:
            tree.range_query(query.mds, op="max")
        with_bb = tree.tracker.snapshot().node_accesses

        tree.config.use_materialized_aggregates = False
        tree.tracker.reset(clear_buffer=True)
        for query in queries:
            tree.range_query(query.mds, op="max")
        tree.config.use_materialized_aggregates = True
        without_bb = tree.tracker.snapshot().node_accesses

        assert with_bb < without_bb

    def test_unconstrained_max_needs_one_node(self, tpcd_tree):
        """ALL-range max is answered from the root's entries alone."""
        schema, tree = tpcd_tree
        query = query_from_labels(schema, {})
        tree.tracker.reset(clear_buffer=True)
        result = tree.range_query(query.mds, op="max")
        assert result is not None
        assert tree.tracker.snapshot().node_accesses == 1


row_strategy = st.tuples(
    st.sampled_from(["DE", "FR", "US"]),
    st.sampled_from(["A", "B", "C", "D"]),
    st.sampled_from(["red", "blue"]),
    st.floats(min_value=-1000, max_value=1000, allow_nan=False),
)


@settings(deadline=None, max_examples=40,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=st.lists(row_strategy, min_size=1, max_size=60),
    seed=st.integers(min_value=0, max_value=5),
    op=st.sampled_from(["min", "max"]),
)
def test_property_bb_equals_naive(rows, seed, op):
    schema = build_toy_schema()
    tree = DCTree(
        schema, config=DCTreeConfig(dir_capacity=4, leaf_capacity=4)
    )
    records = [toy_record(schema, *row) for row in rows]
    for record in records:
        tree.insert(record)
    for query in QueryGenerator(schema, 0.5, seed=seed).queries(4):
        matching = [r.measures[0] for r in records if query.matches(r)]
        expected = (
            None if not matching
            else (max(matching) if op == "max" else min(matching))
        )
        assert tree.range_query(query.mds, op=op) == expected
