"""Tests for per-level tree statistics (Fig. 13 support)."""


from repro import DCTree, DCTreeConfig, TPCDGenerator, XTree, make_tpcd_schema
from repro.core.stats import LevelStats, TreeStats, collect_stats
from tests.conftest import TOY_ROWS, build_toy_schema, toy_record


class TestLevelStats:
    def test_empty_averages(self):
        stats = LevelStats(0)
        assert stats.avg_entries == 0.0
        assert stats.avg_blocks == 0.0

    def test_averages(self):
        stats = LevelStats(1)
        stats.n_nodes = 4
        stats.n_entries = 40
        stats.n_blocks = 6
        assert stats.avg_entries == 10.0
        assert stats.avg_blocks == 1.5

    def test_repr(self):
        assert "depth=2" in repr(LevelStats(2))


class TestTreeStats:
    def test_level_accessors(self):
        levels = [LevelStats(0), LevelStats(1), LevelStats(2)]
        stats = TreeStats(levels, n_records=10, height=3)
        assert stats.level(1) is levels[1]
        assert stats.highest_below_root() is levels[1]
        assert stats.second_highest_below_root() is levels[2]

    def test_shallow_tree_has_no_lower_levels(self):
        stats = TreeStats([LevelStats(0)], n_records=3, height=1)
        assert stats.highest_below_root() is None
        assert stats.second_highest_below_root() is None

    def test_totals(self):
        a, b = LevelStats(0), LevelStats(1)
        a.n_nodes, b.n_nodes = 1, 4
        a.n_supernodes = 1
        stats = TreeStats([a, b], n_records=9, height=2)
        assert stats.n_nodes == 5
        assert stats.n_supernodes == 1


class TestCollectStats:
    def test_counts_toy_tree(self):
        schema = build_toy_schema()
        tree = DCTree(schema)
        for row in TOY_ROWS:
            tree.insert(toy_record(schema, *row))
        stats = collect_stats(tree)
        assert stats.n_records == len(TOY_ROWS)
        assert stats.height == tree.height()
        assert stats.level(0).n_nodes == 1

    def test_entry_totals_are_consistent(self):
        schema = make_tpcd_schema()
        generator = TPCDGenerator(schema, seed=4, scale_records=800)
        tree = DCTree(
            schema, config=DCTreeConfig(dir_capacity=8, leaf_capacity=16)
        )
        for record in generator.records(800):
            tree.insert(record)
        stats = collect_stats(tree)
        # Leaf entries sum to the record count.
        assert stats.levels[-1].n_entries == 800
        # Each directory level's entry count equals the node count of the
        # level below it.
        for depth in range(stats.height - 1):
            assert (
                stats.level(depth).n_entries
                == stats.level(depth + 1).n_nodes
            )

    def test_works_on_x_tree(self):
        schema = build_toy_schema()
        tree = XTree(schema)
        for row in TOY_ROWS:
            tree.insert(toy_record(schema, *row))
        stats = collect_stats(tree)
        assert stats.n_records == len(TOY_ROWS)

    def test_supernode_blocks_reported(self):
        schema = build_toy_schema()
        from repro import DCTreeConfig

        tree = DCTree(
            schema, config=DCTreeConfig(dir_capacity=4, leaf_capacity=4)
        )
        for i in range(12):
            tree.insert(toy_record(schema, "DE", "Munich", "red", float(i)))
        stats = collect_stats(tree)
        assert stats.level(0).avg_blocks >= 2
