"""Tests for static materialized aggregate views."""

import math

import pytest

from repro import DCTree, TPCDGenerator, make_tpcd_schema
from repro.aggview import (
    MaterializedAggregateView,
    StaleViewError,
    UnanswerableQueryError,
)
from repro.core.mds import MDS
from repro.errors import QueryError
from repro.workload.queries import QueryGenerator, query_from_labels
from tests.conftest import TOY_ROWS, build_toy_schema, toy_record


@pytest.fixture
def toy_view():
    """View at (Country, Color) granularity over the toy rows."""
    schema = build_toy_schema()
    records = [toy_record(schema, *row) for row in TOY_ROWS]
    view = MaterializedAggregateView(schema, (1, 0))
    view.build(records)
    return schema, records, view


class TestConstruction:
    def test_level_count_checked(self):
        with pytest.raises(QueryError):
            MaterializedAggregateView(build_toy_schema(), (1,))

    def test_level_range_checked(self):
        with pytest.raises(QueryError):
            MaterializedAggregateView(build_toy_schema(), (5, 0))

    def test_unbuilt_view_refuses_queries(self):
        schema = build_toy_schema()
        view = MaterializedAggregateView(schema, (1, 0))
        query = query_from_labels(schema, {})
        with pytest.raises(StaleViewError):
            view.range_query(query.mds)

    def test_cells_grouped_at_granularity(self, toy_view):
        _schema, _records, view = toy_view
        # Countries x colors actually occurring: DE(red, blue), FR(blue,
        # green), US(red, green) = 6 cells.
        assert view.n_cells == 6
        assert view.n_source_records == len(TOY_ROWS)


class TestQueries:
    def test_exact_at_granularity(self, toy_view):
        schema, _records, view = toy_view
        query = query_from_labels(schema, {"Geo": ("Country", ["DE"])})
        assert view.range_query(query.mds) == 35.0

    def test_above_granularity(self, toy_view):
        schema, _records, view = toy_view
        query = query_from_labels(schema, {})
        assert view.range_query(query.mds) == 96.0

    def test_all_aggregates(self, toy_view):
        schema, _records, view = toy_view
        query = query_from_labels(schema, {"Color": ("Color", ["red"])})
        assert view.range_query(query.mds, op="count") == 3
        assert view.range_query(query.mds, op="min") == 5.0
        assert view.range_query(query.mds, op="max") == 40.0
        assert math.isclose(
            view.range_query(query.mds, op="avg"), 55.0 / 3
        )

    def test_below_granularity_refused(self, toy_view):
        schema, _records, view = toy_view
        query = query_from_labels(schema, {"Geo": ("City", ["Munich"])})
        assert not view.can_answer(query.mds)
        with pytest.raises(UnanswerableQueryError):
            view.range_query(query.mds)

    def test_dimension_mismatch_rejected(self, toy_view):
        _schema, _records, view = toy_view
        with pytest.raises(QueryError):
            view.range_query(MDS([{1}], [1]))

    def test_bad_measure_rejected(self, toy_view):
        schema, _records, view = toy_view
        query = query_from_labels(schema, {})
        with pytest.raises(QueryError):
            view.range_query(query.mds, measure=7)


class TestStaleness:
    def test_mark_stale_blocks_queries(self, toy_view):
        schema, _records, view = toy_view
        view.mark_stale()
        query = query_from_labels(schema, {})
        with pytest.raises(StaleViewError):
            view.range_query(query.mds)

    def test_rebuild_clears_staleness(self, toy_view):
        schema, records, view = toy_view
        view.mark_stale()
        extra = toy_record(schema, "DE", "Munich", "red", 4.0)
        view.build(records + [extra])
        query = query_from_labels(schema, {"Geo": ("Country", ["DE"])})
        assert view.range_query(query.mds) == 39.0


class TestAgainstDCTree:
    def test_agrees_with_tree_on_answerable_queries(self):
        schema = make_tpcd_schema()
        generator = TPCDGenerator(schema, seed=6, scale_records=800)
        records = generator.generate(800)
        tree = DCTree(schema)
        for record in records:
            tree.insert(record)
        levels = (2, 1, 2, 1)
        view = MaterializedAggregateView(schema, levels)
        view.build(records)
        query_gen = QueryGenerator(schema, 0.3, seed=1, min_levels=levels)
        for query in query_gen.queries(15):
            assert view.can_answer(query.mds)
            assert math.isclose(
                view.range_query(query.mds),
                tree.range_query(query.mds),
                abs_tol=1e-6,
            )

    def test_footprint_reported(self, toy_view):
        _schema, _records, view = toy_view
        assert view.byte_size() > 0
        assert view.page_count() >= 1


class TestAggviewExperiment:
    def test_rows_capture_the_tradeoff(self):
        from repro.bench.aggview_bench import run_aggview

        rows = run_aggview(n_records=500, n_queries=20)
        tree_row, view_row = rows
        assert tree_row[1] == "100%"
        # The static view covers only part of the mix ...
        assert view_row[1] != "100%"
        # ... and one update costs it far more than the dynamic tree.
        assert view_row[3] > tree_row[3]


class TestIncrementalMaintenance:
    def test_apply_insert_updates_cell(self, toy_view):
        schema, records, view = toy_view
        extra = toy_record(schema, "DE", "Munich", "red", 7.0)
        view.apply_insert(extra)
        query = query_from_labels(schema, {"Geo": ("Country", ["DE"])})
        assert view.range_query(query.mds) == 42.0
        assert view.n_source_records == len(records) + 1

    def test_apply_insert_creates_new_cell(self, toy_view):
        schema, _records, view = toy_view
        extra = toy_record(schema, "JP", "Tokyo", "red", 3.0)
        cells_before = view.n_cells
        view.apply_insert(extra)
        assert view.n_cells == cells_before + 1
        query = query_from_labels(schema, {"Geo": ("Country", ["JP"])})
        assert view.range_query(query.mds) == 3.0

    def test_apply_delete_interior_value_stays_fresh(self, toy_view):
        schema, records, view = toy_view
        # Add a second value to the (DE, red) cell so removing the first
        # original (10.0) keeps... 10 is the max of {10, 5}? The DE/red
        # cell holds Munich-red 10.0 and Berlin-red 5.0; removing an
        # interior value is impossible with two, so insert a third first.
        view.apply_insert(toy_record(schema, "DE", "Munich", "red", 7.0))
        fresh = view.apply_delete(
            toy_record(schema, "DE", "Munich", "red", 7.0)
        )
        assert fresh
        assert not view.is_stale
        query = query_from_labels(schema, {"Geo": ("Country", ["DE"])})
        assert view.range_query(query.mds) == 35.0

    def test_apply_delete_extremum_marks_stale(self, toy_view):
        schema, records, view = toy_view
        # records[0] (Munich red 10.0) is the max of its (DE, red) cell.
        fresh = view.apply_delete(records[0])
        assert not fresh
        assert view.is_stale
        with pytest.raises(StaleViewError):
            query = query_from_labels(schema, {})
            view.range_query(query.mds)

    def test_apply_delete_last_record_drops_cell(self, toy_view):
        schema, records, view = toy_view
        # records[4] (FR, Lyon, green, 3.0) is alone in its (FR, green)
        # cell: removing it empties and drops the cell, and the view
        # stays exact (no surviving extremum to invalidate).
        cells_before = view.n_cells
        fresh = view.apply_delete(records[4])
        assert fresh
        assert view.n_cells == cells_before - 1
        assert not view.is_stale

    def test_apply_delete_unknown_cell_rejected(self, toy_view):
        schema, _records, view = toy_view
        ghost = toy_record(schema, "BR", "Rio", "red", 1.0)
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            view.apply_delete(ghost)

    def test_deltas_on_stale_view_rejected(self, toy_view):
        schema, _records, view = toy_view
        view.mark_stale()
        with pytest.raises(StaleViewError):
            view.apply_insert(toy_record(schema, "DE", "Munich", "red", 1.0))
