"""The example scripts must run end-to-end (small scales)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_quickstart():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "revenue in Germany" in result.stdout
    assert "1500.00" in result.stdout  # Munich TV + Berlin Radio


def test_tpcd_olap():
    result = run_example("tpcd_olap.py", "600")
    assert result.returncode == 0, result.stderr
    assert "cross-checked against the sequential scan - OK" in result.stdout


def test_streaming_updates():
    result = run_example("streaming_updates.py", "800")
    assert result.returncode == 0, result.stderr
    assert "insert latency" in result.stdout
    assert "tech volume" in result.stdout


@pytest.mark.slow
def test_index_comparison():
    result = run_example("index_comparison.py", "800")
    assert result.returncode == 0, result.stderr
    assert "selectivity 25%" in result.stdout
    assert "dc-tree" in result.stdout


def test_warehouse_lifecycle():
    result = run_example("warehouse_lifecycle.py", "500")
    assert result.returncode == 0, result.stderr
    assert "bulk-loaded 500 records" in result.stdout
    assert "the loaded tree is live" in result.stdout


def test_view_advisor():
    result = run_example("view_advisor.py", "600")
    assert result.returncode == 0, result.stderr
    assert "advisor picks" in result.stdout
    assert "via views" in result.stdout
