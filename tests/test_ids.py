"""Unit tests for the 32-bit level-tagged attribute-ID encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cube import ids
from repro.errors import HierarchyError, IdSpaceExhaustedError


class TestMakeId:
    def test_level_zero_counter_zero(self):
        assert ids.make_id(0, 0) == 0

    def test_level_occupies_high_four_bits(self):
        assert ids.make_id(2, 5) == (2 << 28) | 5

    def test_max_level_max_counter_is_32_bit(self):
        assert ids.make_id(ids.MAX_LEVEL, ids.MAX_COUNTER) == 0xFFFFFFFF

    def test_negative_level_rejected(self):
        with pytest.raises(HierarchyError):
            ids.make_id(-1, 0)

    def test_level_above_15_rejected(self):
        with pytest.raises(HierarchyError):
            ids.make_id(16, 0)

    def test_counter_overflow_rejected(self):
        with pytest.raises(IdSpaceExhaustedError):
            ids.make_id(0, ids.MAX_COUNTER + 1)

    def test_negative_counter_rejected(self):
        with pytest.raises(IdSpaceExhaustedError):
            ids.make_id(0, -1)


class TestDecoding:
    def test_level_of_roundtrip(self):
        assert ids.level_of(ids.make_id(7, 123)) == 7

    def test_counter_of_roundtrip(self):
        assert ids.counter_of(ids.make_id(7, 123)) == 123

    def test_split_id(self):
        assert ids.split_id(ids.make_id(3, 9)) == (3, 9)

    @given(
        level=st.integers(min_value=0, max_value=ids.MAX_LEVEL),
        counter=st.integers(min_value=0, max_value=ids.MAX_COUNTER),
    )
    def test_roundtrip_property(self, level, counter):
        attr_id = ids.make_id(level, counter)
        assert ids.split_id(attr_id) == (level, counter)
        assert 0 <= attr_id <= 0xFFFFFFFF

    @given(
        a=st.integers(min_value=0, max_value=ids.MAX_COUNTER),
        b=st.integers(min_value=0, max_value=ids.MAX_COUNTER),
        level=st.integers(min_value=0, max_value=ids.MAX_LEVEL),
    )
    def test_counter_order_preserved_within_level(self, a, b, level):
        # The X-tree's artificial total order relies on counter monotonicity.
        assert (a < b) == (ids.make_id(level, a) < ids.make_id(level, b))

    def test_higher_level_always_sorts_after_lower_level(self):
        assert ids.make_id(1, 0) > ids.make_id(0, ids.MAX_COUNTER)


class TestIsValidId:
    def test_valid(self):
        assert ids.is_valid_id(0)
        assert ids.is_valid_id(0xFFFFFFFF)

    def test_out_of_range(self):
        assert not ids.is_valid_id(-1)
        assert not ids.is_valid_id(0x1_0000_0000)

    def test_non_int(self):
        assert not ids.is_valid_id("3")


class TestIdAllocator:
    def test_sequential_counters(self):
        allocator = ids.IdAllocator()
        first = allocator.allocate(2)
        second = allocator.allocate(2)
        assert ids.counter_of(first) == 0
        assert ids.counter_of(second) == 1

    def test_levels_are_independent(self):
        allocator = ids.IdAllocator()
        allocator.allocate(1)
        allocator.allocate(1)
        other = allocator.allocate(3)
        assert ids.counter_of(other) == 0

    def test_allocated_count(self):
        allocator = ids.IdAllocator()
        assert allocator.allocated_count(0) == 0
        allocator.allocate(0)
        allocator.allocate(0)
        assert allocator.allocated_count(0) == 2

    def test_level_encoded_in_allocation(self):
        allocator = ids.IdAllocator()
        assert ids.level_of(allocator.allocate(5)) == 5

    def test_exhaustion_raises(self):
        allocator = ids.IdAllocator()
        allocator._next[4] = ids.MAX_COUNTER + 1
        with pytest.raises(IdSpaceExhaustedError):
            allocator.allocate(4)
