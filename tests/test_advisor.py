"""Tests for view selection and the hybrid router."""

import math

import pytest

from repro import TPCDGenerator, Warehouse, make_tpcd_schema
from repro.aggview.advisor import (
    ViewRecommendation,
    candidate_levels,
    covers,
    estimate_cells,
    recommend_view,
    recommend_views,
)
from repro.aggview.hybrid import HybridWarehouse
from repro.errors import QueryError, SchemaError
from repro.workload.queries import QueryGenerator
from repro.workload.queries import query_from_labels
from tests.conftest import build_toy_schema


def _all_query(schema):
    return query_from_labels(schema, {})


@pytest.fixture(scope="module")
def tpcd_setup():
    schema = make_tpcd_schema()
    warehouse = Warehouse(schema, "dc-tree")
    generator = TPCDGenerator(schema, seed=31, scale_records=800)
    for record in generator.records(800):
        warehouse.insert_record(record)
    workload = list(QueryGenerator(schema, 0.2, seed=5).queries(60))
    records = list(warehouse.index.records())
    return schema, warehouse, workload, records


class TestCandidates:
    def test_lattice_size(self):
        schema = build_toy_schema()  # levels 0..2 x 0..1
        assert len(list(candidate_levels(schema))) == 3 * 2

    def test_covers(self, tpcd_setup):
        schema, _warehouse, workload, records = tpcd_setup
        query = workload[0]
        assert covers(tuple(query.mds.levels), query.mds)
        finer = tuple(max(0, lvl - 1) for lvl in query.mds.levels)
        if finer != tuple(query.mds.levels):
            assert covers(finer, query.mds)

    def test_estimate_cells_caps_at_records(self, tpcd_setup):
        schema, _warehouse, _workload, records = tpcd_setup
        leafiest = (0, 0, 0, 0)
        assert estimate_cells(schema, leafiest, n_records=800) == 800
        assert estimate_cells(schema, leafiest) > 800
        exact = estimate_cells(schema, leafiest, records=records)
        assert 0 < exact <= 800

    def test_all_levels_view_has_one_cell(self, tpcd_setup):
        schema, _warehouse, _workload, _records = tpcd_setup
        tops = tuple(d.hierarchy.top_level for d in schema.dimensions)
        assert estimate_cells(schema, tops) == 1


class TestRecommendView:
    def test_respects_budget(self, tpcd_setup):
        schema, _warehouse, workload, records = tpcd_setup
        pick = recommend_view(schema, workload, cell_budget=500,
                              records=records)
        assert isinstance(pick, ViewRecommendation)
        assert pick.estimated_cells <= 500

    def test_bigger_budget_never_hurts_benefit(self, tpcd_setup):
        schema, _warehouse, workload, records = tpcd_setup
        small = recommend_view(schema, workload, cell_budget=100,
                               records=records)
        large = recommend_view(schema, workload, cell_budget=100000,
                               records=records)
        assert large.benefit >= small.benefit

    def test_never_recommends_the_raw_cube(self, tpcd_setup):
        """The leaf-level view is just a table copy; benefit scoring must
        refuse it even when it fits the budget."""
        schema, _warehouse, workload, records = tpcd_setup
        pick = recommend_view(schema, workload, cell_budget=10**9,
                              records=records)
        assert pick.levels != (0, 0, 0, 0)
        assert pick.benefit > 0

    def test_coverage_is_real(self, tpcd_setup):
        schema, _warehouse, workload, records = tpcd_setup
        pick = recommend_view(schema, workload, cell_budget=10000,
                              records=records)
        covered = sum(
            1 for q in workload if covers(pick.levels, q.mds)
        )
        assert math.isclose(pick.coverage, covered / len(workload))

    def test_empty_workload_rejected(self, tpcd_setup):
        schema, _warehouse, _workload, _records = tpcd_setup
        with pytest.raises(QueryError):
            recommend_view(schema, [], cell_budget=100)

    def test_impossible_budget_rejected(self, tpcd_setup):
        schema, _warehouse, workload, records = tpcd_setup
        with pytest.raises(QueryError):
            recommend_view(schema, workload, cell_budget=0)


class TestRecommendViews:
    def test_greedy_extends_coverage(self, tpcd_setup):
        schema, _warehouse, workload, records = tpcd_setup
        picks = recommend_views(schema, workload, cell_budget=2000, k=3,
                                records=records)
        assert 1 <= len(picks) <= 3
        # Combined coverage of k views >= best single view's coverage.
        single = recommend_view(schema, workload, cell_budget=2000,
                                records=records)
        combined = sum(p.coverage for p in picks)
        assert combined >= single.coverage - 1e-9
        # Marginal benefits are non-increasing (greedy property).
        benefits = [p.benefit for p in picks]
        assert benefits == sorted(benefits, reverse=True)

    def test_stops_when_nothing_left(self, tpcd_setup):
        schema, _warehouse, workload, records = tpcd_setup
        picks = recommend_views(schema, workload, cell_budget=10**9, k=50,
                                records=records)
        # The all-ALL..finest lattice covers everything answerable; greedy
        # must stop well before 50 views.
        assert len(picks) < 50


class TestHybridWarehouse:
    def test_requires_dc_tree_base(self):
        warehouse = Warehouse(build_toy_schema(), "scan")
        with pytest.raises(SchemaError):
            HybridWarehouse(warehouse)

    def test_routes_and_agrees(self, tpcd_setup):
        schema, warehouse, workload, records = tpcd_setup
        picks = recommend_views(schema, workload, cell_budget=5000, k=2,
                                records=records)
        hybrid = HybridWarehouse(
            warehouse, [p.levels for p in picks]
        )
        for query in workload:
            assert math.isclose(
                hybrid.execute(query),
                warehouse.execute(query),
                abs_tol=1e-6,
            )
        uncoverable = sum(
            1 for q in workload
            if not any(covers(p.levels, q.mds) for p in picks)
        )
        assert hybrid.stats.via_view == len(workload) - uncoverable
        assert hybrid.stats.via_tree == uncoverable
        assert hybrid.stats.via_view > 0

    def test_incremental_insert_keeps_views_fresh(self, tpcd_setup):
        schema, warehouse, workload, records = tpcd_setup
        covered = [
            q for q in workload
            if covers((3, 2, 2, 2), q.mds)
        ]
        if not covered:
            pytest.skip("workload sample has no coarse query")
        hybrid = HybridWarehouse(warehouse, [(3, 2, 2, 2)])
        generator = TPCDGenerator(schema, seed=77, scale_records=100)
        record = generator.record()
        hybrid.insert_record(record)
        # Incremental maintenance (default): the view absorbed the delta.
        assert not hybrid.views[0].is_stale
        before = hybrid.stats.refreshes
        result = hybrid.execute(covered[0])
        assert hybrid.stats.refreshes == before  # no rebuild needed
        assert math.isclose(
            result, warehouse.execute(covered[0]), abs_tol=1e-6
        )
        hybrid.delete(record)

    def test_static_mode_invalidates_then_lazy_refresh(self, tpcd_setup):
        schema, warehouse, workload, records = tpcd_setup
        covered = [q for q in workload if covers((3, 2, 2, 2), q.mds)]
        if not covered:
            pytest.skip("workload sample has no coarse query")
        hybrid = HybridWarehouse(
            warehouse, [(3, 2, 2, 2)], incremental=False
        )
        generator = TPCDGenerator(schema, seed=79, scale_records=100)
        record = generator.record()
        hybrid.insert_record(record)
        assert hybrid.views[0].is_stale
        before = hybrid.stats.refreshes
        result = hybrid.execute(covered[0])
        assert hybrid.stats.refreshes == before + 1
        assert not hybrid.views[0].is_stale
        assert math.isclose(
            result, warehouse.execute(covered[0]), abs_tol=1e-6
        )
        hybrid.delete(record)

    def test_eager_refresh_mode(self, tpcd_setup):
        schema, warehouse, workload, records = tpcd_setup
        hybrid = HybridWarehouse(
            warehouse, [(3, 2, 2, 2)], lazy_refresh=False,
            incremental=False,
        )
        generator = TPCDGenerator(schema, seed=78, scale_records=100)
        record = generator.record()
        hybrid.insert_record(record)
        covered = [q for q in workload if covers((3, 2, 2, 2), q.mds)]
        if covered:
            before_tree = hybrid.stats.via_tree
            hybrid.execute(covered[0])  # stale view bypassed
            assert hybrid.stats.via_tree == before_tree + 1
        assert hybrid.refresh() == 1
        assert not hybrid.views[0].is_stale
        hybrid.delete(record)

    def test_delete_of_cell_extremum_marks_stale(self, tpcd_setup):
        schema, warehouse, _workload, _records = tpcd_setup
        hybrid = HybridWarehouse(warehouse, [(3, 2, 2, 2)])
        generator = TPCDGenerator(schema, seed=80, scale_records=100)
        record = generator.record()
        hybrid.insert_record(record)
        assert not hybrid.views[0].is_stale
        # Deleting the record removes a cell extremum (it was the newest
        # member of its cell, possibly its min AND max) - the view either
        # stays exact or flags itself stale; never silently wrong.
        hybrid.delete(record)
        if not hybrid.views[0].is_stale:
            total = hybrid.views[0].range_query(
                _all_query(schema).mds, op="count"
            )
            assert total == len(warehouse)

    def test_label_query_interface(self, tpcd_setup):
        schema, warehouse, _workload, _records = tpcd_setup
        hybrid = HybridWarehouse(warehouse, [(3, 2, 2, 2)])
        hybrid.refresh()
        where = {"Customer": ("Region", ["EUROPE"])}
        assert math.isclose(
            hybrid.query("sum", where=where),
            warehouse.query("sum", where=where),
            abs_tol=1e-6,
        )
