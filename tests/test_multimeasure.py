"""End-to-end tests for cubes with several measures.

The data-cube definition (Definition 2) allows m measures; the TPC-D
evaluation uses one, so the multi-measure paths deserve their own
coverage: per-measure aggregate vectors, measure selection by name and
index on every backend, persistence, group-by and bulk load.
"""

import math

import pytest

from repro import (
    CubeSchema,
    Dimension,
    Measure,
    Warehouse,
)
from repro.core.bulkload import bulk_load
from repro.errors import QueryError
from repro.persist import warehouse_from_dict, warehouse_to_dict
from repro.workload.queries import query_from_labels


def build_sales_schema():
    """Two dimensions, three measures (revenue, units, discount)."""
    return CubeSchema(
        dimensions=[
            Dimension("Store", ("City", "Country")),
            Dimension("Product", ("Item", "Category")),
        ],
        measures=[Measure("Revenue"), Measure("Units"), Measure("Discount")],
    )


ROWS = (
    (("DE", "Munich"), ("Food", "Bread"), (120.0, 40.0, 0.05)),
    (("DE", "Munich"), ("Food", "Milk"), (80.0, 60.0, 0.00)),
    (("DE", "Berlin"), ("Tools", "Drill"), (400.0, 4.0, 0.10)),
    (("FR", "Paris"), ("Food", "Bread"), (90.0, 30.0, 0.02)),
    (("FR", "Paris"), ("Tools", "Saw"), (150.0, 5.0, 0.15)),
)


def populate(warehouse):
    for store, product, measures in ROWS:
        warehouse.insert((store, product), measures)


@pytest.mark.parametrize("backend", ["dc-tree", "x-tree", "scan"])
class TestPerMeasureQueries:
    def test_sum_by_index(self, backend):
        warehouse = Warehouse(build_sales_schema(), backend)
        populate(warehouse)
        assert warehouse.query("sum", measure=0) == 840.0
        assert warehouse.query("sum", measure=1) == 139.0

    def test_by_name(self, backend):
        warehouse = Warehouse(build_sales_schema(), backend)
        populate(warehouse)
        assert warehouse.query("sum", measure="Units") == 139.0
        assert math.isclose(
            warehouse.query("max", measure="Discount"), 0.15
        )

    def test_with_where(self, backend):
        warehouse = Warehouse(build_sales_schema(), backend)
        populate(warehouse)
        where = {"Product": ("Category", ["Food"])}
        assert warehouse.query("sum", measure="Revenue",
                               where=where) == 290.0
        assert warehouse.query("sum", measure="Units", where=where) == 130.0

    def test_min_max_per_measure(self, backend):
        warehouse = Warehouse(build_sales_schema(), backend)
        populate(warehouse)
        where = {"Store": ("Country", ["DE"])}
        assert warehouse.query("min", measure="Revenue", where=where) == 80.0
        assert warehouse.query("max", measure="Units", where=where) == 60.0

    def test_unknown_measure_rejected(self, backend):
        warehouse = Warehouse(build_sales_schema(), backend)
        populate(warehouse)
        with pytest.raises(QueryError):
            warehouse.query("sum", measure=3)

    def test_summary_per_measure(self, backend):
        warehouse = Warehouse(build_sales_schema(), backend)
        populate(warehouse)
        units = warehouse.summary(measure="Units")
        assert units.aggregate("sum") == 139.0
        assert units.aggregate("count") == len(ROWS)
        assert units.aggregate("max") == 60.0


class TestGroupByPerMeasure:
    def test_group_by_second_measure(self):
        warehouse = Warehouse(build_sales_schema())
        populate(warehouse)
        units = warehouse.group_by("Store", "Country", measure="Units")
        assert units == {"DE": 104.0, "FR": 35.0}

    def test_group_by_avg_third_measure(self):
        warehouse = Warehouse(build_sales_schema())
        populate(warehouse)
        discount = warehouse.group_by(
            "Product", "Category", op="avg", measure="Discount"
        )
        assert math.isclose(discount["Food"], (0.05 + 0.0 + 0.02) / 3)
        assert math.isclose(discount["Tools"], (0.10 + 0.15) / 2)


class TestStructuresCarryAllMeasures:
    def test_tree_aggregate_vector_width(self):
        warehouse = Warehouse(build_sales_schema())
        populate(warehouse)
        assert len(warehouse.index.root.aggregate.summaries) == 3
        warehouse.index.check_invariants()

    def test_persist_roundtrip_all_measures(self):
        warehouse = Warehouse(build_sales_schema())
        populate(warehouse)
        restored = warehouse_from_dict(warehouse_to_dict(warehouse))
        for measure in ("Revenue", "Units", "Discount"):
            assert restored.query("sum", measure=measure) == warehouse.query(
                "sum", measure=measure
            )

    def test_bulk_load_all_measures(self):
        schema = build_sales_schema()
        records = [
            schema.record((store, product), measures)
            for store, product, measures in ROWS
        ]
        tree = bulk_load(schema, records)
        tree.check_invariants()
        query = query_from_labels(schema, {})
        assert tree.range_query(query.mds, measure=2) == pytest.approx(0.32)

    def test_delete_updates_every_measure(self):
        warehouse = Warehouse(build_sales_schema())
        populate(warehouse)
        record = warehouse.insert(
            (("IT", "Rome"), ("Food", "Pasta")), (999.0, 1.0, 0.5)
        )
        warehouse.delete(record)
        assert warehouse.query("sum", measure="Revenue") == 840.0
        assert warehouse.query("max", measure="Discount") == 0.15
        warehouse.index.check_invariants()

    def test_wrong_measure_arity_rejected(self):
        schema = build_sales_schema()
        warehouse = Warehouse(schema)
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            warehouse.insert((("DE", "Munich"), ("Food", "Bread")), (1.0,))
