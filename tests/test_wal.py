"""Write-ahead log unit tests: format, torn tails, fsync batching."""

from __future__ import annotations

import os
import zlib

import pytest

from repro import StorageError
from repro.persist.wal import (
    OP_BATCH,
    OP_DELETE,
    OP_INSERT,
    WAL_HEADER,
    WriteAheadLog,
    encode_record,
    read_wal,
)
from repro.storage.faults import FaultInjector, FaultPlan, InjectedFault


def _wal_path(tmp_path):
    return os.path.join(str(tmp_path), "wal.log")


def test_new_wal_writes_header(tmp_path):
    path = _wal_path(tmp_path)
    with WriteAheadLog(path):
        pass
    with open(path, "rb") as handle:
        assert handle.read() == WAL_HEADER


def test_append_and_replay_roundtrip(tmp_path):
    path = _wal_path(tmp_path)
    with WriteAheadLog(path) as wal:
        assert wal.append(OP_INSERT, [["a"], [1.0]]) == 1
        assert wal.append(OP_DELETE, [["b"], [2.0]]) == 2
        assert wal.last_lsn == 2
    scan = read_wal(path)
    assert not scan.torn_tail
    assert scan.records == [
        [1, OP_INSERT, [["a"], [1.0]]],
        [2, OP_DELETE, [["b"], [2.0]]],
    ] or scan.records == [
        (1, OP_INSERT, [["a"], [1.0]]),
        (2, OP_DELETE, [["b"], [2.0]]),
    ]


def test_missing_file_scans_empty(tmp_path):
    scan = read_wal(_wal_path(tmp_path))
    assert scan.records == [] and not scan.torn_tail


def test_bad_header_rejected(tmp_path):
    path = _wal_path(tmp_path)
    with open(path, "wb") as handle:
        handle.write(b"NOTAWAL!" + encode_record(1, OP_INSERT, {}))
    with pytest.raises(StorageError, match="not a WAL file"):
        read_wal(path)


def test_torn_tail_detected_and_prefix_kept(tmp_path):
    path = _wal_path(tmp_path)
    with WriteAheadLog(path) as wal:
        wal.append(OP_INSERT, 1)
        wal.append(OP_INSERT, 2)
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size - 3)
    scan = read_wal(path)
    assert scan.torn_tail
    assert [record[2] for record in scan.records] == [1]
    assert "byte" in scan.error


def test_crc_corruption_stops_replay(tmp_path):
    path = _wal_path(tmp_path)
    with WriteAheadLog(path) as wal:
        wal.append(OP_INSERT, 1)
        wal.append(OP_INSERT, 2)
    with open(path, "r+b") as handle:
        raw = handle.read()
        # Flip one payload byte of the first record (prefix is 8 bytes).
        pos = len(WAL_HEADER) + 8 + 2
        handle.seek(pos)
        handle.write(bytes([raw[pos] ^ 0xFF]))
    scan = read_wal(path)
    assert scan.torn_tail
    assert scan.records == []
    assert "checksum mismatch" in scan.error


def test_encode_record_is_length_prefixed_and_checksummed():
    record = encode_record(7, OP_INSERT, {"k": [1, 2]})
    length = int.from_bytes(record[:4], "big")
    crc = int.from_bytes(record[4:8], "big")
    payload = record[8:]
    assert len(payload) == length
    assert zlib.crc32(payload) == crc


def test_fsync_batching_counts_syncs(tmp_path):
    faults = FaultInjector()
    with WriteAheadLog(_wal_path(tmp_path), fsync_interval=3,
                       faults=faults) as wal:
        for value in range(7):
            wal.append(OP_INSERT, value)
    # 7 appends at interval 3 → syncs after #3 and #6, plus the
    # close-time sync for the final unsynced append.
    syncs = [site for site, _ in faults.trace if site == "wal.fsync"]
    assert len(syncs) == 3


def test_fsync_interval_zero_never_syncs(tmp_path):
    faults = FaultInjector()
    with WriteAheadLog(_wal_path(tmp_path), fsync_interval=0,
                       faults=faults) as wal:
        for value in range(5):
            wal.append(OP_INSERT, value)
    assert all(site != "wal.fsync" for site, _ in faults.trace)


def test_start_lsn_continues_numbering(tmp_path):
    path = _wal_path(tmp_path)
    with WriteAheadLog(path) as wal:
        wal.append(OP_INSERT, "a")
    with WriteAheadLog(path, start_lsn=1) as wal:
        assert wal.append(OP_INSERT, "b") == 2
    lsns = [record[0] for record in read_wal(path).records]
    assert lsns == [1, 2]


def test_truncate_keeps_header_drops_records(tmp_path):
    path = _wal_path(tmp_path)
    with WriteAheadLog(path) as wal:
        wal.append(OP_INSERT, "a")
        wal.truncate()
        wal.append(OP_INSERT, "b")
    assert os.path.getsize(path) > len(WAL_HEADER)
    records = read_wal(path).records
    assert [record[2] for record in records] == ["b"]


def test_torn_write_injection_leaves_replayable_prefix(tmp_path):
    path = _wal_path(tmp_path)
    # fail_at is 1-based: the 3rd wal.append tears (the header write is
    # site "wal.header" and does not match).
    faults = FaultInjector(FaultPlan(fail_at=3, mode="torn",
                                     site="wal.append"))
    with WriteAheadLog(path, fsync_interval=0, faults=faults) as wal:
        wal.append(OP_INSERT, "first")
        wal.append(OP_INSERT, "second")
        with pytest.raises(InjectedFault):
            wal.append(OP_INSERT, "third")
    scan = read_wal(path)
    assert scan.torn_tail
    assert [record[2] for record in scan.records] == ["first", "second"]


def test_crash_injection_writes_nothing(tmp_path):
    path = _wal_path(tmp_path)
    faults = FaultInjector(FaultPlan(fail_at=2, mode="crash",
                                     site="wal.append"))
    with WriteAheadLog(path, fsync_interval=0, faults=faults) as wal:
        wal.append(OP_INSERT, "first")
        with pytest.raises(InjectedFault):
            wal.append(OP_INSERT, "second")
    scan = read_wal(path)
    assert not scan.torn_tail
    assert [record[2] for record in scan.records] == ["first"]


def test_torn_batch_append_drops_the_whole_batch(tmp_path):
    """A group commit is one length-prefixed, checksummed record, so a
    tear mid-append can never expose a prefix of the batch: replay keeps
    everything before the OP_BATCH record and none of the batch."""
    path = _wal_path(tmp_path)
    faults = FaultInjector(FaultPlan(fail_at=2, mode="torn",
                                     site="wal.append"))
    with WriteAheadLog(path, fsync_interval=1, faults=faults) as wal:
        wal.append(OP_INSERT, ["solo"])
        with pytest.raises(InjectedFault):
            wal.append(OP_BATCH, [["a"], ["b"], ["c"], ["d"]])
    scan = read_wal(path)
    assert scan.torn_tail
    assert [(record[1], record[2]) for record in scan.records] == [
        (OP_INSERT, ["solo"])
    ]
    assert not any(record[1] == OP_BATCH for record in scan.records)


def test_batch_group_commit_is_one_append_one_fsync(tmp_path):
    """The acknowledged-batch durability cost: a single WAL append and,
    at fsync_interval=1, a single fsync for the whole batch."""
    faults = FaultInjector()
    with WriteAheadLog(_wal_path(tmp_path), fsync_interval=1,
                       faults=faults) as wal:
        wal.append(OP_BATCH, [["a"], ["b"], ["c"], ["d"]])
        appends = [site for site, _ in faults.trace
                   if site == "wal.append"]
        syncs = [site for site, _ in faults.trace if site == "wal.fsync"]
        assert len(appends) == 1
        assert len(syncs) == 1


def test_negative_fsync_interval_rejected(tmp_path):
    with pytest.raises(StorageError):
        WriteAheadLog(_wal_path(tmp_path), fsync_interval=-1)


def test_seeded_fault_plans_are_deterministic():
    plans = [FaultPlan.seeded(seed=7, n_ops=50) for _ in range(3)]
    assert len({(p.fail_at, p.mode, p.site) for p in plans}) == 1
    spread = {
        (FaultPlan.seeded(seed=s, n_ops=50).fail_at,
         FaultPlan.seeded(seed=s, n_ops=50).mode)
        for s in range(20)
    }
    assert len(spread) > 1


def test_fault_plan_validates_mode():
    with pytest.raises(ValueError):
        FaultPlan(fail_at=0, mode="explode")
