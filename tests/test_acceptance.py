"""One end-to-end acceptance flow across every major feature.

Simulates a realistic deployment day: export operational data, bulk-load
the warehouse, run analyst queries (label-based, SQL, group-by), stream
live updates, take a snapshot, replay a frozen workload against the
snapshot, and verify everything against the sequential-scan oracle.
"""

import math

import pytest

from repro import (
    FlatTable,
    TPCDGenerator,
    Warehouse,
    make_tpcd_schema,
)
from repro.core.bulkload import bulk_load
from repro.persist import load_warehouse, save_warehouse
from repro.query import execute as sql
from repro.tpcd.flatfile import read_flatfile, write_flatfile
from repro.workload.queries import QueryGenerator
from repro.workload.trace import read_trace, replay, write_trace


@pytest.fixture(scope="module")
def deployment(tmp_path_factory):
    root = tmp_path_factory.mktemp("deployment")
    flat_path = root / "lineitems.tbl"
    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=2026, scale_records=1200)
    write_flatfile(flat_path, schema, generator.records(1200))

    loaded_schema, records = read_flatfile(flat_path)
    warehouse = Warehouse.wrap(bulk_load(loaded_schema, records))
    oracle = FlatTable(loaded_schema)
    for record in records:
        oracle.insert(record)
    return root, loaded_schema, warehouse, oracle, records


def test_bulk_load_from_flatfile(deployment):
    _root, _schema, warehouse, oracle, records = deployment
    assert len(warehouse) == len(records) == len(oracle)
    warehouse.index.check_invariants()


def test_analyst_session_matches_oracle(deployment):
    _root, schema, warehouse, oracle, _records = deployment
    for query in QueryGenerator(schema, 0.2, seed=1).queries(15):
        assert math.isclose(
            warehouse.execute(query),
            oracle.range_query(query.mds),
            abs_tol=1e-4,
        )


def test_sql_and_groupby_agree(deployment):
    _root, schema, warehouse, _oracle, _records = deployment
    region = sorted(warehouse.group_by("Customer", "Region"))[0]
    via_sql = sql(
        warehouse,
        "SELECT SUM(ExtendedPrice) WHERE Customer.Region = '%s'" % region,
    )
    via_api = warehouse.query(
        "sum", where={"Customer": ("Region", [region])}
    )
    assert math.isclose(via_sql, via_api, abs_tol=1e-9)
    groups = sql(
        warehouse, "SELECT SUM(ExtendedPrice) GROUP BY Customer.Region"
    )
    assert math.isclose(
        sum(groups.values()), warehouse.query("sum"), abs_tol=1e-4
    )


def test_live_updates_stay_consistent(deployment):
    _root, schema, warehouse, oracle, _records = deployment
    generator = TPCDGenerator(schema, seed=9, scale_records=200)
    fresh = generator.generate(60)
    for record in fresh:
        warehouse.insert_record(record)
        oracle.insert(record)
    for record in fresh[:20]:
        warehouse.delete(record)
        oracle.delete(record)
    warehouse.index.check_invariants()
    for query in QueryGenerator(schema, 0.3, seed=2).queries(10):
        assert math.isclose(
            warehouse.execute(query),
            oracle.range_query(query.mds),
            abs_tol=1e-4,
        )


def test_snapshot_and_trace_replay(deployment):
    root, schema, warehouse, _oracle, _records = deployment
    snapshot_path = root / "snapshot.json"
    trace_path = root / "workload.json"
    workload = list(QueryGenerator(schema, 0.15, seed=3).queries(12))

    save_warehouse(warehouse, snapshot_path)
    write_trace(trace_path, workload)

    resumed = load_warehouse(snapshot_path)
    resumed.index.check_invariants()
    restored = read_trace(trace_path, resumed.schema)
    live = replay(warehouse, workload)
    replayed = replay(resumed, restored)
    for a, b in zip(live, replayed):
        assert math.isclose(a, b, abs_tol=1e-6)

    # The snapshot is itself live: it absorbs an update independently.
    generator = TPCDGenerator(resumed.schema, seed=4, scale_records=10)
    resumed.insert_record(generator.record())
    assert len(resumed) == len(warehouse) + 1
