"""Tests for workload traces (save/replay)."""

import math

import pytest

from repro import TPCDGenerator, Warehouse, make_tpcd_schema
from repro.errors import StorageError
from repro.persist import load_warehouse, save_warehouse
from repro.workload.queries import QueryGenerator
from repro.workload.trace import (
    TRACE_VERSION,
    queries_from_dict,
    queries_to_dict,
    read_trace,
    replay,
    write_trace,
)


@pytest.fixture(scope="module")
def setup():
    schema = make_tpcd_schema()
    warehouse = Warehouse(schema, "dc-tree")
    generator = TPCDGenerator(schema, seed=41, scale_records=500)
    for record in generator.records(500):
        warehouse.insert_record(record)
    queries = list(QueryGenerator(schema, 0.2, seed=9).queries(15))
    return schema, warehouse, queries


class TestRoundtrip:
    def test_dict_roundtrip_preserves_mds(self, setup):
        schema, _warehouse, queries = setup
        rebuilt = queries_from_dict(queries_to_dict(queries), schema)
        assert len(rebuilt) == len(queries)
        for original, restored in zip(queries, rebuilt):
            assert original.mds == restored.mds

    def test_file_roundtrip_replays_identically(self, setup, tmp_path):
        schema, warehouse, queries = setup
        path = tmp_path / "workload.json"
        assert write_trace(path, queries) == len(queries)
        restored = read_trace(path, schema)
        before = replay(warehouse, queries)
        after = replay(warehouse, restored)
        for a, b in zip(before, after):
            assert math.isclose(a, b, abs_tol=1e-9)

    def test_trace_survives_warehouse_persistence(self, setup, tmp_path):
        """The canonical flow: persist warehouse + trace, reload both."""
        schema, warehouse, queries = setup
        trace_path = tmp_path / "workload.json"
        warehouse_path = tmp_path / "warehouse.json"
        write_trace(trace_path, queries)
        save_warehouse(warehouse, warehouse_path)

        resumed = load_warehouse(warehouse_path)
        restored = read_trace(trace_path, resumed.schema)
        before = replay(warehouse, queries)
        after = replay(resumed, restored)
        for a, b in zip(before, after):
            assert math.isclose(a, b, abs_tol=1e-6)


class TestValidation:
    def test_version_checked(self, setup):
        schema, _warehouse, queries = setup
        data = queries_to_dict(queries)
        data["version"] = 99
        with pytest.raises(StorageError):
            queries_from_dict(data, schema)

    def test_dimension_count_checked(self, setup):
        schema, _warehouse, queries = setup
        data = queries_to_dict(queries)
        data["queries"][0] = data["queries"][0][:2]
        with pytest.raises(StorageError):
            queries_from_dict(data, schema)

    def test_unknown_id_rejected(self, setup):
        schema, _warehouse, queries = setup
        data = queries_to_dict(queries)
        data["queries"][0][0][1] = [0xDEADBEE]
        with pytest.raises(StorageError):
            queries_from_dict(data, schema)

    def test_foreign_schema_rejected(self, setup):
        _schema, _warehouse, queries = setup
        fresh = make_tpcd_schema()  # empty hierarchies: IDs unknown
        data = queries_to_dict(queries)
        with pytest.raises(StorageError):
            queries_from_dict(data, fresh)

    def test_level_mismatch_rejected(self, setup):
        schema, _warehouse, queries = setup
        data = queries_to_dict(queries)
        level, values = data["queries"][0][0]
        data["queries"][0][0] = [level + 1 if level == 0 else level - 1,
                                 values]
        with pytest.raises(StorageError):
            queries_from_dict(data, schema)

    def test_trace_version_constant(self):
        assert TRACE_VERSION == 1


def test_non_query_rejected_on_write(setup):
    _schema, _warehouse, _queries = setup
    from repro.errors import QueryError

    with pytest.raises(QueryError):
        queries_to_dict(["not a query"])
