"""Cross-backend integration tests: the three backends are one oracle.

Every query must return the identical answer on the DC-tree, the X-tree
and the sequential scan — the paper's comparison is only meaningful under
that equivalence, and it is the strongest end-to-end correctness check
available (the scan is trivially correct; the trees must agree with it).
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    DCTree,
    DCTreeConfig,
    FlatTable,
    TPCDGenerator,
    XTree,
    XTreeConfig,
    make_tpcd_schema,
)
from repro.bench.harness import execute_query
from repro.workload.queries import QueryGenerator
from tests.conftest import build_toy_schema, toy_record


def build_all_backends(schema, records, dc_config=None, x_config=None):
    dc = DCTree(schema, config=dc_config)
    xt = XTree(schema, config=x_config)
    scan = FlatTable(schema)
    for record in records:
        dc.insert(record)
        xt.insert(record)
        scan.insert(record)
    return {"dc-tree": dc, "x-tree": xt, "scan": scan}


@pytest.fixture(scope="module")
def tpcd_backends():
    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=99, scale_records=1000)
    records = generator.generate(1000)
    return schema, records, build_all_backends(schema, records)


class TestTPCDAgreement:
    @pytest.mark.parametrize("selectivity", [0.01, 0.05, 0.25, 0.6])
    def test_sum_agreement(self, tpcd_backends, selectivity):
        schema, _records, backends = tpcd_backends
        for query in QueryGenerator(
            schema, selectivity, seed=int(selectivity * 100)
        ).queries(10):
            results = [
                execute_query(name, index, query)
                for name, index in backends.items()
            ]
            assert math.isclose(results[0], results[1], abs_tol=1e-4)
            assert math.isclose(results[1], results[2], abs_tol=1e-4)

    @pytest.mark.parametrize("op", ["count", "min", "max", "avg"])
    def test_other_aggregates_agree(self, tpcd_backends, op):
        schema, _records, backends = tpcd_backends
        for query in QueryGenerator(schema, 0.25, seed=77).queries(5):
            results = [
                execute_query(name, index, query, op=op)
                for name, index in backends.items()
            ]
            if results[0] is None:
                assert results[1] is None and results[2] is None
            else:
                assert math.isclose(results[0], results[1], abs_tol=1e-6)
                assert math.isclose(results[1], results[2], abs_tol=1e-6)

    def test_trees_match_naive_ground_truth(self, tpcd_backends):
        schema, records, backends = tpcd_backends
        for query in QueryGenerator(schema, 0.1, seed=13).queries(10):
            expected = sum(
                r.measures[0] for r in records if query.matches(r)
            )
            for name, index in backends.items():
                assert math.isclose(
                    execute_query(name, index, query), expected, abs_tol=1e-4
                ), name

    def test_structural_invariants(self, tpcd_backends):
        _schema, _records, backends = tpcd_backends
        backends["dc-tree"].check_invariants()
        backends["x-tree"].check_invariants()

    def test_dc_tree_reads_fewer_pages_than_scan(self, tpcd_backends):
        """The headline claim at moderate selectivity."""
        schema, _records, backends = tpcd_backends
        queries = list(QueryGenerator(schema, 0.05, seed=5).queries(10))
        costs = {}
        for name in ("dc-tree", "scan"):
            index = backends[name]
            index.tracker.reset(clear_buffer=True)
            for query in queries:
                execute_query(name, index, query)
            costs[name] = index.tracker.snapshot().node_accesses
        assert costs["dc-tree"] < costs["scan"]


class TestDynamicUpdates:
    def test_backends_agree_under_interleaved_updates(self):
        schema = make_tpcd_schema()
        generator = TPCDGenerator(schema, seed=5, scale_records=400)
        backends = build_all_backends(schema, [])
        live = []
        query_gen = QueryGenerator(schema, 0.3, seed=1)
        for i, record in enumerate(generator.records(400)):
            for index in backends.values():
                index.insert(record)
            live.append(record)
            if i % 7 == 3:
                victim = live.pop(i % len(live))
                for index in backends.values():
                    index.delete(victim)
            if i % 50 == 49:
                query = query_gen.query()
                results = [
                    execute_query(name, index, query)
                    for name, index in backends.items()
                ]
                assert math.isclose(results[0], results[1], abs_tol=1e-4)
                assert math.isclose(results[1], results[2], abs_tol=1e-4)
        backends["dc-tree"].check_invariants()
        backends["x-tree"].check_invariants()
        assert len(backends["dc-tree"]) == len(live)


row_strategy = st.tuples(
    st.sampled_from(["DE", "FR", "US", "JP"]),
    st.sampled_from(["A", "B", "C", "D", "E"]),
    st.sampled_from(["red", "blue"]),
    st.floats(min_value=0, max_value=100, allow_nan=False),
)


@settings(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    rows=st.lists(row_strategy, min_size=1, max_size=80),
    seed=st.integers(min_value=0, max_value=9),
)
def test_property_three_backends_one_answer(rows, seed):
    schema = build_toy_schema()
    records = [toy_record(schema, *row) for row in rows]
    backends = build_all_backends(
        schema,
        records,
        dc_config=DCTreeConfig(dir_capacity=4, leaf_capacity=4),
        x_config=XTreeConfig(dir_capacity=4, leaf_capacity=4),
    )
    for query in QueryGenerator(schema, 0.5, seed=seed).queries(4):
        results = [
            execute_query(name, index, query)
            for name, index in backends.items()
        ]
        assert math.isclose(results[0], results[1], abs_tol=1e-6)
        assert math.isclose(results[1], results[2], abs_tol=1e-6)
