"""Tests for the partitioned warehouse (time partitioning + retention)."""

import math

import pytest

from repro import TPCDGenerator, Warehouse, make_tpcd_schema
from repro.errors import QueryError, RecordNotFoundError, SchemaError
from repro.maintenance.partitioned import PartitionedWarehouse
from repro.workload.queries import QueryGenerator, query_from_labels


@pytest.fixture(scope="module")
def setup():
    schema = make_tpcd_schema()
    partitioned = PartitionedWarehouse(schema, "Time", "Year")
    flat = Warehouse(schema, "dc-tree")
    generator = TPCDGenerator(schema, seed=17, scale_records=1000)
    records = generator.generate(1000)
    for record in records:
        partitioned.insert_record(record)
        flat.insert_record(record)
    return schema, partitioned, flat, records


class TestConstruction:
    def test_unknown_level_rejected(self):
        with pytest.raises(SchemaError):
            PartitionedWarehouse(make_tpcd_schema(), "Time", "Quarter")

    def test_unknown_dimension_rejected(self):
        with pytest.raises(SchemaError):
            PartitionedWarehouse(make_tpcd_schema(), "Clock", "Year")


class TestRouting:
    def test_one_partition_per_year(self, setup):
        _schema, partitioned, _flat, records = setup
        labels = partitioned.partition_labels()
        years = {
            record.paths[3][0] for record in records
        }
        assert len(labels) == len(years)
        assert sum(labels.values()) == len(records)

    def test_len(self, setup):
        _schema, partitioned, _flat, records = setup
        assert len(partitioned) == len(records)

    def test_partition_invariants(self, setup):
        _schema, partitioned, _flat, _records = setup
        for key in partitioned.partition_keys:
            partitioned._partitions[key].check_invariants()


class TestQueries:
    def test_agrees_with_flat_warehouse(self, setup):
        schema, partitioned, flat, _records = setup
        for query in QueryGenerator(schema, 0.25, seed=2).queries(20):
            assert math.isclose(
                partitioned.execute(query),
                flat.execute(query),
                abs_tol=1e-6,
            )

    @pytest.mark.parametrize("op", ["count", "avg", "min", "max"])
    def test_all_aggregates_agree(self, setup, op):
        schema, partitioned, flat, _records = setup
        for query in QueryGenerator(schema, 0.25, seed=3).queries(8):
            mine = partitioned.execute(query, op=op)
            theirs = flat.execute(query, op=op)
            if mine is None:
                assert theirs is None
            else:
                assert math.isclose(mine, theirs, abs_tol=1e-6)

    def test_label_query(self, setup):
        schema, partitioned, flat, _records = setup
        where = {"Customer": ("Region", ["EUROPE"])}
        assert math.isclose(
            partitioned.query("sum", where=where),
            flat.query("sum", where=where),
            abs_tol=1e-6,
        )

    def test_year_query_touches_one_partition(self, setup):
        schema, partitioned, _flat, _records = setup
        year = sorted(partitioned.partition_labels())[0]
        query = query_from_labels(schema, {"Time": ("Year", [year])})
        assert partitioned.partitions_touched(query) == 1

    def test_month_query_touches_one_partition(self, setup):
        schema, partitioned, _flat, _records = setup
        hierarchy = schema.hierarchy(3)
        month = hierarchy.label(hierarchy.values_at_level(1)[0])
        query = query_from_labels(schema, {"Time": ("Month", [month])})
        assert partitioned.partitions_touched(query) == 1

    def test_unconstrained_query_touches_all(self, setup):
        schema, partitioned, _flat, _records = setup
        query = query_from_labels(schema, {})
        assert partitioned.partitions_touched(query) == len(
            partitioned.partition_keys
        )

    def test_execute_type_checked(self, setup):
        _schema, partitioned, _flat, _records = setup
        with pytest.raises(SchemaError):
            partitioned.execute("not a query")


class TestRetentionAndUpdates:
    def test_drop_partition(self):
        schema = make_tpcd_schema()
        partitioned = PartitionedWarehouse(schema, "Time", "Year")
        flat_total = 0
        generator = TPCDGenerator(schema, seed=23, scale_records=400)
        for record in generator.records(400):
            partitioned.insert_record(record)
            flat_total += 1
        oldest = sorted(partitioned.partition_labels())[0]
        freed = partitioned.drop_partition(oldest)
        assert freed > 0
        assert len(partitioned) == flat_total - freed
        assert oldest not in partitioned.partition_labels()
        query = query_from_labels(schema, {"Time": ("Year", [oldest])})
        assert partitioned.execute(query, op="count") == 0

    def test_drop_unknown_partition_rejected(self, setup):
        _schema, partitioned, _flat, _records = setup
        with pytest.raises(QueryError):
            partitioned.drop_partition("1901")

    def test_delete_record(self):
        schema = make_tpcd_schema()
        partitioned = PartitionedWarehouse(schema, "Time", "Year")
        generator = TPCDGenerator(schema, seed=29, scale_records=100)
        records = generator.generate(50)
        for record in records:
            partitioned.insert_record(record)
        partitioned.delete(records[0])
        assert len(partitioned) == 49

    def test_delete_from_missing_partition(self):
        schema = make_tpcd_schema()
        partitioned = PartitionedWarehouse(schema, "Time", "Year")
        generator = TPCDGenerator(schema, seed=31, scale_records=100)
        record = generator.record()
        with pytest.raises(RecordNotFoundError):
            partitioned.delete(record)

    def test_empty_partition_unlinked_after_delete(self):
        schema = make_tpcd_schema()
        partitioned = PartitionedWarehouse(schema, "Time", "Year")
        generator = TPCDGenerator(schema, seed=37, scale_records=100)
        record = generator.record()
        partitioned.insert_record(record)
        assert len(partitioned.partition_keys) == 1
        partitioned.delete(record)
        assert len(partitioned.partition_keys) == 0
