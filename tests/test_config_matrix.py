"""Cross-backend equivalence under a matrix of configurations.

The invariant "all backends return identical answers" must hold for any
capacities, split algorithm, and aggregate setting — not just the
defaults the other suites use.
"""

import math

import pytest

from repro import (
    DCTree,
    DCTreeConfig,
    FlatTable,
    TPCDGenerator,
    XTree,
    XTreeConfig,
    make_tpcd_schema,
)
from repro.bench.harness import execute_query
from repro.workload.queries import QueryGenerator

DC_CONFIGS = [
    pytest.param(DCTreeConfig(), id="dc-defaults"),
    pytest.param(
        DCTreeConfig(dir_capacity=4, leaf_capacity=4), id="dc-tiny-nodes"
    ),
    pytest.param(
        DCTreeConfig(dir_capacity=64, leaf_capacity=256), id="dc-fat-nodes"
    ),
    pytest.param(
        DCTreeConfig(split_algorithm="linear"), id="dc-linear-split"
    ),
    pytest.param(
        DCTreeConfig(use_materialized_aggregates=False),
        id="dc-no-aggregates",
    ),
    pytest.param(
        DCTreeConfig(max_overlap_fraction=0.0), id="dc-zero-overlap"
    ),
    pytest.param(
        DCTreeConfig(max_overlap_fraction=1.0, min_fanout_fraction=0.1),
        id="dc-loose-splits",
    ),
    pytest.param(
        DCTreeConfig(capacity_mode="bytes"), id="dc-byte-capacity"
    ),
]


@pytest.fixture(scope="module")
def dataset():
    schema = make_tpcd_schema()
    generator = TPCDGenerator(schema, seed=55, scale_records=700)
    records = generator.generate(700)
    oracle = FlatTable(schema)
    for record in records:
        oracle.insert(record)
    queries = list(QueryGenerator(schema, 0.2, seed=6).queries(12))
    return schema, records, oracle, queries


@pytest.mark.parametrize("config", DC_CONFIGS)
def test_dc_tree_correct_under_config(dataset, config):
    schema, records, oracle, queries = dataset
    tree = DCTree(schema, config=config)
    for record in records:
        tree.insert(record)
    tree.check_invariants()
    for query in queries:
        assert math.isclose(
            tree.range_query(query.mds),
            oracle.range_query(query.mds),
            abs_tol=1e-4,
        )
        assert tree.range_query(query.mds, op="max") == oracle.range_query(
            query.mds, op="max"
        )


@pytest.mark.parametrize("config", DC_CONFIGS[:3])
def test_dc_tree_delete_mix_under_config(dataset, config):
    schema, records, _oracle, queries = dataset
    tree = DCTree(schema, config=config)
    live = []
    for i, record in enumerate(records[:300]):
        tree.insert(record)
        live.append(record)
        if i % 5 == 4:
            tree.delete(live.pop(0))
    tree.check_invariants()
    for query in queries[:5]:
        expected = sum(r.measures[0] for r in live if query.matches(r))
        assert math.isclose(tree.range_query(query.mds), expected,
                            abs_tol=1e-6)


X_CONFIGS = [
    pytest.param(XTreeConfig(), id="x-defaults"),
    pytest.param(
        XTreeConfig(dir_capacity=4, leaf_capacity=4), id="x-tiny-nodes"
    ),
    pytest.param(
        XTreeConfig(max_overlap_fraction=0.0), id="x-always-minimal-split"
    ),
    pytest.param(
        XTreeConfig(max_overlap_fraction=10.0), id="x-never-minimal-split"
    ),
]


@pytest.mark.parametrize("config", X_CONFIGS)
def test_x_tree_correct_under_config(dataset, config):
    schema, records, oracle, queries = dataset
    tree = XTree(schema, config=config)
    for record in records:
        tree.insert(record)
    tree.check_invariants()
    for query in queries:
        assert math.isclose(
            execute_query("x-tree", tree, query),
            oracle.range_query(query.mds),
            abs_tol=1e-4,
        )
